//! Offline shim for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   multiple `#[test] fn name(pat in strategy, ...) { body }` items;
//! * [`Strategy`] with range strategies over primitive numeric types,
//!   tuple strategies, [`Strategy::prop_map`],
//!   [`Strategy::prop_flat_map`], [`Just`], and [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports the case number and the
//!   `Debug` rendering of every generated input, then panics;
//! * **deterministic, name-derived seeding** — each test's RNG stream is
//!   derived from the test function's name, so failures reproduce across
//!   runs and machines without a `proptest-regressions` persistence file
//!   (any committed persistence files are ignored). Setting
//!   `PMM_PROPTEST_SEED=<u64>` (decimal or `0x`-hex) overrides the
//!   name-derived seed for every test in the process — failure reports
//!   print the effective seed together with that exact repro command;
//! * `prop_assume!` skips the remainder of the case without counting it
//!   separately — the configured case count is an upper bound on work,
//!   not a guarantee of satisfied-assumption cases.

use std::fmt::Debug;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::ops::Range;

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Lower than upstream's 256: the shim does not shrink, so large
        // case counts only buy runtime, not better counterexamples.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG driving generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

/// Environment variable overriding the name-derived seed (decimal or
/// `0x`-prefixed hex). Failure reports name it so any failing stream
/// replays with one env var.
pub const SEED_ENV: &str = "PMM_PROPTEST_SEED";

impl TestRng {
    /// RNG stream for a named test; the name (not wall-clock or a global
    /// seed file) determines the stream, unless [`SEED_ENV`] overrides
    /// it.
    pub fn for_test(test_name: &str) -> TestRng {
        if let Ok(raw) = std::env::var(SEED_ENV) {
            let parsed = match raw.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => raw.parse(),
            };
            let state = parsed
                .unwrap_or_else(|_| panic!("{SEED_ENV}={raw:?} is not a u64 (decimal or 0x-hex)"));
            return TestRng { state };
        }
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        // Avoid the all-zeros fixed point of a raw hash of "".
        TestRng { state: h.finish() ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// The current stream state. Read immediately after [`TestRng::for_test`]
    /// this is the effective seed: `PMM_PROPTEST_SEED=<it>` replays the
    /// stream exactly.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `span` (rejection sampling, no modulo bias).
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % span;
            }
        }
    }
}

/// A generator of test inputs.
///
/// Unlike real proptest there is no value tree: a strategy simply draws
/// a value from the RNG. `prop_map`/`prop_flat_map` compose by function
/// application.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

trait StrategyObject {
    type Value: Debug;
    fn generate_obj(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: either exact or a half-open
    /// range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "vec length range is empty");
            SizeRange { min: r.start, max: r.end }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.min..self.size.max).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Explicit case failure/rejection, mirroring upstream's
/// `test_runner::TestCaseError`. Property bodies may `return
/// Ok(())`/`Err(...)`; the [`proptest!`] expansion wraps plain `()` bodies
/// so both styles compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is violated for these inputs.
    Fail(String),
    /// The inputs don't satisfy the property's assumptions (the shim does
    /// not resample; the case is simply skipped).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
        }
    }
}

/// Outcome bookkeeping for one generated case; used by the [`proptest!`]
/// expansion, not meant to be called directly.
#[doc(hidden)]
pub fn run_case(
    test_name: &str,
    seed: u64,
    case: u32,
    inputs: &str,
    body: impl FnOnce() -> Result<(), TestCaseError> + std::panic::UnwindSafe,
) {
    let diagnose = || {
        eprintln!(
            "proptest shim: test `{test_name}` failed at case {case} (seed {seed}) with \
             inputs:\n{inputs}\
             re-run with {SEED_ENV}={seed} to replay this stream \
             (deterministic; no shrinking is attempted)"
        );
    };
    match std::panic::catch_unwind(body) {
        Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
        Ok(Err(e @ TestCaseError::Fail(_))) => {
            diagnose();
            panic!("proptest shim: {e}");
        }
        Err(payload) => {
            diagnose();
            std::panic::resume_unwind(payload);
        }
    }
}

/// Property-test entry macro; see the crate docs for the supported
/// grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                let seed = rng.seed();
                for case in 0..config.cases {
                    let mut inputs = String::new();
                    $(
                        let value = $crate::Strategy::generate(&($strat), &mut rng);
                        inputs.push_str(&format!("    {} = {:?}\n", stringify!($pat), value));
                        let $pat = value;
                    )+
                    $crate::run_case(
                        stringify!($name),
                        seed,
                        case,
                        &inputs,
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body;
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` inside a property body (no early-return semantics needed in
/// the shim — a failure panics and is reported with the case inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the remainder of this case when `cond` is false.
///
/// Expands to an early return from the case closure (a `Reject`, which
/// the runner skips), so it must be used at the statement level of the
/// property body (as upstream recommends anyway).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..200 {
            let v = Strategy::generate(&(1u64..200), &mut rng);
            assert!((1..200).contains(&v));
            let f = Strategy::generate(&(0.0f64..1e6), &mut rng);
            assert!((0.0..1e6).contains(&f));
            let i = Strategy::generate(&(-5i64..6), &mut rng);
            assert!((-5..6).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::for_test("vec_strategy_lengths");
        let s = crate::collection::vec(0usize..10, 3..7);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let exact = crate::collection::vec(0usize..10, 4usize);
        assert_eq!(Strategy::generate(&exact, &mut rng).len(), 4);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_test("map_and_flat_map_compose");
        let s = (2usize..7)
            .prop_flat_map(|p| crate::collection::vec(0usize..p, p).prop_map(move |v| (p, v)));
        for _ in 0..50 {
            let (p, v) = Strategy::generate(&s, &mut rng);
            assert_eq!(v.len(), p);
            assert!(v.iter().all(|&x| x < p));
        }
    }

    #[test]
    fn seed_is_the_initial_state_and_replays_the_stream() {
        let mut a = TestRng::for_test("seeded");
        let seed = a.seed();
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        // PMM_PROPTEST_SEED=<seed> constructs exactly this state; emulate
        // the override without mutating the process environment.
        let mut b = TestRng { state: seed };
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let mut c = TestRng::for_test("different");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    // The macro itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_destructures((a, b) in (0u64..50, 0u64..50), c in 1usize..4) {
            prop_assert!(a < 50 && b < 50);
            prop_assert!((1..4).contains(&c));
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_skips_cases(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_block_works(x in 0i64..5) {
            prop_assert!((0..5).contains(&x));
        }
    }
}
