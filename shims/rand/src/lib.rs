//! Offline shim for the `rand` crate (see `shims/README.md`).
//!
//! Implements the surface this workspace uses: a seedable deterministic
//! generator ([`rngs::StdRng`]), uniform sampling of primitives and
//! ranges ([`RngExt`]), and Fisher–Yates shuffling
//! ([`seq::SliceRandom`]). The generator is SplitMix64 — tiny, fast,
//! and statistically fine for test-data generation (it is the seeding
//! generator of the xoshiro family); it makes no cryptographic claims.

use std::ops::Range;

/// Base trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the type's natural unit
/// domain by [`RngExt::random`] (for `f64`: uniform in `[0, 1)`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1) on the f64 grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types that [`RngExt::random_range`] can sample from a
/// half-open `Range`.
pub trait UniformInt: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Uniform draw from `[0, span)` without modulo bias (rejection on the
/// tail of the `u64` domain).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "random_range: empty range");
                let span = range.end.abs_diff(range.start) as u64;
                let off = uniform_below(rng, span);
                // Wrapping add is exact: off < span = end - start.
                range.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods (shim of `rand::Rng`/`RngExt`).
pub trait RngExt: RngCore {
    /// A uniform sample of `T` from its natural domain.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform integer in the half-open `range`.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (shim of `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::{RngCore, UniformInt};

    /// Slice shuffling (shim of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn random_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_range_hits_all_values_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.random_range(-3i64..4);
            assert!((-3..4).contains(&v));
            seen[(v + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
