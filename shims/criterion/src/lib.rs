//! Offline shim for the `criterion` crate (see `shims/README.md`).
//!
//! Benchmarks double as smoke tests: each registered closure runs a
//! small number of warm-up + timed iterations and one `name … ns/iter`
//! line is printed per benchmark. There is no statistical analysis,
//! HTML report, or outlier rejection — set `PMM_BENCH_ITERS` to a
//! larger iteration count when a rough comparison is wanted.
//!
//! `cargo test` builds `harness = false` bench targets and runs them in
//! test mode; the shim keeps that cheap (3 timed iterations by default)
//! so a hang or panic in bench code fails the suite quickly without
//! making it slow.

use std::time::Instant;

fn iters_from_env() -> u64 {
    std::env::var("PMM_BENCH_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// Benchmark registry and runner (shim of `criterion::Criterion`).
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { iters: iters_from_env() }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: self.iters, report: None };
        f(&mut b);
        b.print(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A group of related benchmarks (shim of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count comes
    /// from `PMM_BENCH_ITERS` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { iters: self.criterion.iters, report: None };
        f(&mut b);
        b.print(&format!("{}/{}", self.name, id.label()));
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut b = Bencher { iters: self.criterion.iters, report: None };
        f(&mut b, input);
        b.print(&format!("{}/{}", self.name, id.label()));
        self
    }

    /// Close the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { function: Some(function.into()), parameter: parameter.to_string() }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { function: None, parameter: parameter.to_string() }
    }

    fn label(&self) -> String {
        match &self.function {
            Some(f) => format!("{f}/{}", self.parameter),
            None => self.parameter.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId::from_parameter(s)
    }
}

/// Units for [`BenchmarkGroup::throughput`].
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    report: Option<(u64, u128)>,
}

impl Bencher {
    /// Time `routine` over the configured iteration count (after one
    /// warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.report = Some((self.iters, start.elapsed().as_nanos()));
    }

    fn print(&self, name: &str) {
        match self.report {
            Some((iters, nanos)) if iters > 0 => {
                eprintln!("bench {name:<50} {:>12} ns/iter ({iters} iters)", nanos / iters as u128);
            }
            _ => eprintln!("bench {name:<50} (no measurement)"),
        }
    }
}

/// Shim of `criterion::criterion_group!`: defines a function running the
/// listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Shim of `criterion::criterion_main!`: a `main` that runs the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u64;
        let mut c = Criterion { iters: 2 };
        c.bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // one warm-up + two timed iterations
        assert_eq!(calls, 3);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion { iters: 1 };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(5));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &x| {
            b.iter(|| x * 2);
            ran = true;
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| ()));
        group.finish();
        assert!(ran);
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).label(), "7");
    }
}
