//! Offline shim for the `rayon` crate (see `shims/README.md`).
//!
//! Implements the one parallel-iterator chain the workspace uses —
//! `slice.par_chunks_mut(n).enumerate().for_each(f)` — with real
//! parallelism: chunks are distributed round-robin over
//! `std::thread::available_parallelism()` scoped threads. There is no
//! work stealing; for the regular, equally-sized stripes the dense
//! kernels produce, static round-robin is within noise of rayon.

pub mod prelude {
    pub use crate::ParallelSliceMut;
}

/// Mutable parallel chunking of slices (shim of
/// `rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Non-overlapping mutable chunks of `chunk_size` elements (last may
    /// be shorter), processable in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut { chunks: self.chunks_mut(chunk_size).collect() }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { chunks: self.chunks }
    }

    /// Apply `f` to every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel iterator over mutable chunks.
pub struct ParEnumerate<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<T: Send> ParEnumerate<'_, T> {
    /// Apply `f` to every `(index, chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let n_workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let items: Vec<(usize, &mut [T])> = self.chunks.into_iter().enumerate().collect();
        if items.len() <= 1 || n_workers == 1 {
            for item in items {
                f(item);
            }
            return;
        }
        // Round-robin assignment of chunks to workers; each worker owns
        // its items, so no synchronization is needed beyond the scope join.
        let n_buckets = n_workers.min(items.len());
        let mut per_worker: Vec<Vec<(usize, &mut [T])>> =
            (0..n_buckets).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            per_worker[i % n_buckets].push(item);
        }
        let f = &f;
        std::thread::scope(|scope| {
            for batch in per_worker {
                scope.spawn(move || {
                    for item in batch {
                        f(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_cover_slice_exactly_once() {
        let mut v = vec![0u64; 1003];
        v.as_mut_slice().par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x += 1 + i as u64;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, 1 + (j / 64) as u64, "element {j}");
        }
    }

    #[test]
    fn last_chunk_may_be_short() {
        let mut v = vec![1i64; 10];
        let lens: std::sync::Mutex<Vec<usize>> = std::sync::Mutex::new(Vec::new());
        v.as_mut_slice().par_chunks_mut(4).for_each(|c| {
            lens.lock().expect("collector mutex").push(c.len());
        });
        let mut lens = lens.into_inner().expect("collector mutex");
        lens.sort_unstable();
        assert_eq!(lens, vec![2, 4, 4]);
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut v = vec![0u8; 3];
        v.as_mut_slice().par_chunks_mut(100).enumerate().for_each(|(i, c)| {
            assert_eq!(i, 0);
            c.fill(9);
        });
        assert_eq!(v, vec![9, 9, 9]);
    }
}
