//! Workspace automation. `cargo xtask check` is the static-analysis gate
//! run by CI (see `.github/workflows/ci.yml`):
//!
//! 1. `cargo fmt --all --check` — formatting.
//! 2. `cargo clippy --workspace --all-targets` with `-D warnings` plus the
//!    `[workspace.lints]` policy from the root manifest.
//! 3. `cargo clippy --workspace --lib --bins` additionally denying
//!    `clippy::unwrap_used`: library and binary code must use `expect()`
//!    with a message naming the violated invariant (tests are exempt via
//!    `clippy.toml`'s `allow-unwrap-in-tests`).
//! 4. A keyword audit: the workspace denies the `unsafe_code` lint and
//!    the `clippy::todo`/`clippy::dbg_macro` lints, and is expected to
//!    contain zero such tokens; the audit greps every workspace `.rs`
//!    file (comments excluded) so even `#[allow]`-escaped blocks are
//!    caught.
//! 5. `cargo xtask docs` (also run standalone) — rustdoc with
//!    `-D warnings` over every library target plus all doctests, so the
//!    documented-public-API policy (`#![warn(missing_docs)]` in the core
//!    crates) cannot drift.
//!
//! Further CI entry points exercise the deterministic scheduler:
//!
//! * `cargo xtask conformance` — the `tests/conformance.rs` sweep under a
//!   pinned matrix of schedule seeds (each seed exported as `PMM_SEED`);
//! * `cargo xtask trace-check` — the `tests/trace_attribution.rs` gate
//!   (structured-trace per-phase words vs the eq. 3 prediction, trace
//!   critical path vs the simulator clock, byte-stable Chrome export)
//!   under the same seed matrix;
//! * `cargo xtask fuzz-schedules [budget-secs]` — keeps running the
//!   schedule-fuzz entry test with fresh base seeds until the wall-clock
//!   budget (default 60 s) runs out, printing the failing `PMM_SEED` on
//!   the first divergence;
//! * `cargo xtask fault-sweep [budget-secs]` — the fault-injection suite
//!   (`tests/fault_tolerance.rs`) under a pinned matrix of execution
//!   engines × schedule seeds × message fault rates (exported as
//!   `PMM_ENGINE` / `PMM_FAULT_RATE`), wall-clock capped (default 300 s);
//! * `cargo xtask chaos-soak [budget-secs]` — the chaos certification
//!   suite (`tests/chaos.rs`, release mode, `--include-ignored`): the
//!   checkpointed-recovery wrapper for all six algorithms × both engines
//!   under kill / cascade / healing-partition / straggler-storm fault
//!   plans, bitwise-checked against the fault-free reference and the
//!   recovery goodput model, plus the fault-armed P = 10^4 event-loop
//!   cell. Collects the tests' `CHAOS:` metric lines into
//!   `BENCH_chaos.json` (cells run, recovery success rate — the gate
//!   requires 100%);
//! * `cargo xtask dpor [budget-secs]` — the schedule-space race checker
//!   (`tests/explore.rs`, release mode): exhaustive interleaving
//!   certificates for the pinned collective workloads, budgeted frontier
//!   exploration of Algorithm 1, and a ≥ 1000-program generator soak
//!   against the intent oracle. Collects the tests' `DPOR:` metric lines
//!   into `BENCH_explore.json` (schedules/sec, states pruned, programs
//!   generated). Failures print a `PMM_SCHEDULE=prefix:...` repro line.
//! * `cargo xtask scale-check [budget-secs]` — the executed-at-scale
//!   gate (`tests/scale.rs`, release mode): Algorithm 1 end-to-end on
//!   the event-loop engine at P = 10^4, 10^5, and 10^6 (ascending, each
//!   cell started only while the wall-clock budget — default 300 s —
//!   lasts), with per-rank per-phase eq. (3) checks against
//!   `pmm_model::alg1_prediction` on integral §5.2 grids. Collects the
//!   tests' `SCALE:` metric lines into `BENCH_scale.json` (ranks/sec
//!   stepped, peak RSS, max executed P).
//! * `cargo xtask serve-soak [budget-secs]` — the chaos load harness for
//!   the `pmm serve` advisor service (`pmm-bench`'s `serve_chaos` bin,
//!   release mode): mixed valid/burst/panic/malformed/oversized/slowloris
//!   traffic against a deliberately tiny queue for the wall-clock budget
//!   (default 10 s), asserting the robustness invariants (every request
//!   answered, panics isolated, memory bounded). Collects the harness's
//!   `SERVE: key=value` metric lines into `BENCH_serve.json` (throughput,
//!   p50/p99 latency, shed rate, cache hit rate).

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(),
        Some("fmt") => run_steps(&[fmt_step()]),
        Some("clippy") => run_steps(&[clippy_step(), unwrap_step()]),
        Some("audit") => {
            if keyword_audit(&workspace_root()) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("docs") => docs(),
        Some("conformance") => conformance(),
        Some("trace-check") => trace_check(),
        Some("fuzz-schedules") => {
            let budget = args
                .get(1)
                .map(|s| s.parse().expect("budget must be a number of seconds"))
                .unwrap_or(60);
            fuzz_schedules(Duration::from_secs(budget))
        }
        Some("fault-sweep") => {
            let budget = args
                .get(1)
                .map(|s| s.parse().expect("budget must be a number of seconds"))
                .unwrap_or(300);
            fault_sweep(Duration::from_secs(budget))
        }
        Some("chaos-soak") => {
            let budget = args
                .get(1)
                .map(|s| s.parse().expect("budget must be a number of seconds"))
                .unwrap_or(240);
            chaos_soak(Duration::from_secs(budget))
        }
        Some("dpor") => {
            let budget = args
                .get(1)
                .map(|s| s.parse().expect("budget must be a number of seconds"))
                .unwrap_or(300);
            dpor(Duration::from_secs(budget))
        }
        Some("scale-check") => {
            let budget = args
                .get(1)
                .map(|s| s.parse().expect("budget must be a number of seconds"))
                .unwrap_or(300);
            scale_check(Duration::from_secs(budget))
        }
        Some("calibrate") => {
            let budget = args
                .get(1)
                .map(|s| s.parse().expect("budget must be a number of seconds"))
                .unwrap_or(10.0);
            calibrate(budget)
        }
        Some("kernel-bench") => {
            let budget = args
                .get(1)
                .map(|s| s.parse().expect("budget must be a number of seconds"))
                .unwrap_or(20.0);
            kernel_bench(budget)
        }
        Some("serve-soak") => {
            let budget = args
                .get(1)
                .map(|s| s.parse().expect("budget must be a number of seconds"))
                .unwrap_or(10);
            serve_soak(Duration::from_secs(budget))
        }
        other => {
            eprintln!(
                "usage: cargo xtask <command>\n\n\
                 commands:\n\
                 \x20 check           run the full static-analysis gate (fmt, clippy,\n\
                 \x20                 unwrap policy, keyword audit)\n\
                 \x20 fmt             formatting check only\n\
                 \x20 clippy          clippy passes only\n\
                 \x20 audit           scan sources for the forbidden keyword only\n\
                 \x20 docs            rustdoc gate: cargo doc with -D warnings plus\n\
                 \x20                 all doctests\n\
                 \x20 conformance     run tests/conformance.rs under a pinned matrix\n\
                 \x20                 of schedule seeds (PMM_SEED)\n\
                 \x20 trace-check     run tests/trace_attribution.rs (per-phase trace\n\
                 \x20                 attribution vs eq. 3) under the pinned seed matrix\n\
                 \x20 fuzz-schedules  [budget-secs] run the schedule fuzzer with fresh\n\
                 \x20                 seeds until the budget (default 60 s) is spent\n\
                 \x20 fault-sweep     [budget-secs] run tests/fault_tolerance.rs under a\n\
                 \x20                 pinned engine × seed × fault-rate matrix\n\
                 \x20                 (PMM_ENGINE, PMM_FAULT_RATE), wall-clock capped\n\
                 \x20                 (default 300 s)\n\
                 \x20 chaos-soak      [budget-secs] run the chaos certification suite\n\
                 \x20                 (tests/chaos.rs, release, --include-ignored):\n\
                 \x20                 all six recoverable algorithms × both engines ×\n\
                 \x20                 fault-plan classes plus the P = 10^4 event-loop\n\
                 \x20                 cell (default 240 s); emits BENCH_chaos.json\n\
                 \x20 dpor            [budget-secs] run the schedule-space race checker\n\
                 \x20                 (tests/explore.rs): exhaustive interleaving\n\
                 \x20                 certificates, budgeted frontier exploration, and a\n\
                 \x20                 1000-program generator soak; emits BENCH_explore.json\n\
                 \x20 scale-check     [budget-secs] execute Algorithm 1 at large P\n\
                 \x20                 (tests/scale.rs, release, event-loop engine):\n\
                 \x20                 P = 10^4, 10^5, 10^6 cells until the budget\n\
                 \x20                 (default 300 s) is spent; emits BENCH_scale.json\n\
                 \x20 serve-soak      [budget-secs] run the pmm-serve chaos load harness\n\
                 \x20                 (mixed valid/malformed/overload/slowloris traffic,\n\
                 \x20                 default 10 s) and emit BENCH_serve.json"
            );
            if other.is_none() {
                ExitCode::FAILURE
            } else {
                eprintln!("\nunknown command: {}", other.unwrap_or_default());
                ExitCode::FAILURE
            }
        }
    }
}

struct Step {
    name: &'static str,
    args: Vec<&'static str>,
}

fn fmt_step() -> Step {
    Step { name: "rustfmt", args: vec!["fmt", "--all", "--check"] }
}

fn clippy_step() -> Step {
    Step {
        name: "clippy (all targets)",
        args: vec!["clippy", "--workspace", "--all-targets", "--", "-D", "warnings"],
    }
}

fn unwrap_step() -> Step {
    Step {
        name: "clippy (unwrap policy, lib/bin code)",
        args: vec![
            "clippy",
            "--workspace",
            "--lib",
            "--bins",
            "--",
            "-D",
            "warnings",
            "-D",
            "clippy::unwrap_used",
        ],
    }
}

fn check() -> ExitCode {
    let root = workspace_root();
    let mut ok = run_steps(&[fmt_step(), clippy_step(), unwrap_step()]) == ExitCode::SUCCESS;
    eprintln!("xtask: keyword audit");
    ok &= keyword_audit(&root);
    ok &= docs() == ExitCode::SUCCESS;
    if ok {
        eprintln!("xtask: all checks passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask: FAILED");
        ExitCode::FAILURE
    }
}

/// The rustdoc gate: every public item documented (`missing_docs` is
/// warn-level in the core crates and `-D warnings` promotes it here),
/// every intra-doc link resolving, and every doctest passing. Doc'd
/// targets are restricted to libraries because the `pmm` bin and the
/// `pmm` lib collide on the output path (cargo #6313) — binaries have no
/// public API surface to document anyway.
fn docs() -> ExitCode {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let root = workspace_root();
    eprintln!("xtask: rustdoc (-D warnings, lib targets)");
    let status = Command::new(&cargo)
        .args(["doc", "--workspace", "--no-deps", "--lib"])
        .env("RUSTDOCFLAGS", "-D warnings")
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => {}
        _ => {
            eprintln!("xtask: rustdoc gate FAILED");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("xtask: doctests");
    let status = Command::new(&cargo)
        .args(["test", "--doc", "--workspace", "-q"])
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        _ => {
            eprintln!("xtask: doctests FAILED");
            ExitCode::FAILURE
        }
    }
}

/// The pinned seed matrix of the conformance job: arbitrary but fixed, so
/// CI failures replay locally with the printed `PMM_SEED`.
const CONFORMANCE_SEEDS: [u64; 3] = [0x00C0_FFEE, 1, 0xDEAD_BEEF];

/// Run one test binary via `cargo test` with `PMM_SEED` exported.
/// Returns true on success.
fn run_seeded_test(test: &str, seed: u64, filter: &[&str]) -> bool {
    run_seeded_test_env(test, seed, filter, &[])
}

/// [`run_seeded_test`] with extra environment variables exported to the
/// test process (e.g. `PMM_FAULT_RATE` for the fault-sweep matrix).
fn run_seeded_test_env(test: &str, seed: u64, filter: &[&str], envs: &[(&str, String)]) -> bool {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(&cargo);
    cmd.args(["test", "--release", "--test", test, "--"])
        .args(filter)
        .env("PMM_SEED", seed.to_string())
        .current_dir(workspace_root());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    match cmd.status() {
        Ok(s) => s.success(),
        Err(e) => {
            eprintln!("xtask: could not launch cargo test: {e}");
            false
        }
    }
}

fn conformance() -> ExitCode {
    for seed in CONFORMANCE_SEEDS {
        eprintln!("xtask: conformance sweep, PMM_SEED={seed}");
        if !run_seeded_test("conformance", seed, &[]) {
            eprintln!("xtask: conformance sweep FAILED — replay with PMM_SEED={seed}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("xtask: conformance sweep passed under {} seeds", CONFORMANCE_SEEDS.len());
    ExitCode::SUCCESS
}

/// The trace-attribution gate: `tests/trace_attribution.rs` (per-phase
/// words from the structured trace vs the eq. 3 prediction, trace
/// critical path vs the simulator clock, byte-stable Chrome export)
/// under the same pinned seed matrix as the conformance sweep.
fn trace_check() -> ExitCode {
    for seed in CONFORMANCE_SEEDS {
        eprintln!("xtask: trace attribution, PMM_SEED={seed}");
        if !run_seeded_test("trace_attribution", seed, &[]) {
            eprintln!("xtask: trace attribution FAILED — replay with PMM_SEED={seed}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("xtask: trace attribution passed under {} seeds", CONFORMANCE_SEEDS.len());
    ExitCode::SUCCESS
}

fn fuzz_schedules(budget: Duration) -> ExitCode {
    // Each round runs the fuzz entry test (which itself fans a base seed
    // out over several schedules) with a fresh base; rounds stop when the
    // budget is exhausted. The round stride leaves room for the fan-out.
    let start = Instant::now();
    let mut base: u64 = 0x5EED_0000;
    let mut rounds = 0u32;
    while start.elapsed() < budget {
        if !run_seeded_test("determinism", base, &["schedule_fuzz_smoke", "--exact"]) {
            eprintln!("xtask: schedule fuzz FAILED — replay with PMM_SEED={base}");
            return ExitCode::FAILURE;
        }
        rounds += 1;
        base += 0x100;
    }
    eprintln!(
        "xtask: schedule fuzz passed {rounds} round(s) in {:.1}s with no divergence",
        start.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

/// The fault-sweep matrix: execution engines × pinned schedule seeds ×
/// message fault rates.
/// Rate 0.0 doubles as the "armed but silent" regression cell (the
/// determinism suite separately asserts it is meter-identical to no plan
/// at all). Failures replay with the printed `PMM_SEED` +
/// `PMM_FAULT_RATE` pair.
const FAULT_SWEEP_SEEDS: [u64; 2] = [7, 0x00C0_FFEE];
const FAULT_SWEEP_RATES: [&str; 3] = ["0.0", "0.05", "0.15"];

const FAULT_SWEEP_ENGINES: [&str; 2] = ["threads", "event-loop"];

fn fault_sweep(budget: Duration) -> ExitCode {
    let start = Instant::now();
    let mut cells = 0u32;
    let mut skipped = 0u32;
    for engine in FAULT_SWEEP_ENGINES {
        for seed in FAULT_SWEEP_SEEDS {
            for rate in FAULT_SWEEP_RATES {
                if start.elapsed() >= budget {
                    skipped += 1;
                    continue;
                }
                eprintln!(
                    "xtask: fault sweep, PMM_SEED={seed} PMM_FAULT_RATE={rate} \
                     PMM_ENGINE={engine}"
                );
                let envs =
                    [("PMM_FAULT_RATE", rate.to_string()), ("PMM_ENGINE", engine.to_string())];
                if !run_seeded_test_env("fault_tolerance", seed, &[], &envs) {
                    eprintln!(
                        "xtask: fault sweep FAILED — replay with \
                         PMM_SEED={seed} PMM_FAULT_RATE={rate} PMM_ENGINE={engine}"
                    );
                    return ExitCode::FAILURE;
                }
                cells += 1;
            }
        }
    }
    if skipped > 0 {
        eprintln!(
            "xtask: fault sweep budget ({:.0}s) exhausted — {skipped} matrix cell(s) skipped",
            budget.as_secs_f64()
        );
    }
    eprintln!("xtask: fault sweep passed {cells} cell(s) in {:.1}s", start.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

/// The chaos certification soak: run `tests/chaos.rs` in release mode
/// with `--include-ignored` (the tier-1 cert cells, the
/// algorithm × regime × plan-class × engine soak, and the fault-armed
/// P = 10^4 event-loop cell), export the wall-clock budget as
/// `PMM_CHAOS_BUDGET_SECS`, collect the tests' `CHAOS: key=value`
/// lines, and write them — plus the aggregate recovery success rate —
/// to `BENCH_chaos.json` at the workspace root. The gate fails unless
/// every executed cell recovered (a 100% success rate).
fn chaos_soak(budget: Duration) -> ExitCode {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let root = workspace_root();
    eprintln!("xtask: chaos-soak — fault-recovery certification ({}s budget)", budget.as_secs());
    let start = Instant::now();
    let output = match Command::new(&cargo)
        .args([
            "test",
            "--release",
            "--test",
            "chaos",
            "--",
            "--include-ignored",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("PMM_CHAOS_BUDGET_SECS", budget.as_secs().to_string())
        .current_dir(&root)
        .output()
    {
        Ok(out) => out,
        Err(e) => {
            eprintln!("xtask: could not launch cargo test: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    print!("{stdout}");
    eprint!("{stderr}");
    if !output.status.success() {
        eprintln!("xtask: chaos-soak FAILED");
        return ExitCode::FAILURE;
    }

    // Each chaos cell prints one `CHAOS: key=value ...` line; under
    // `--nocapture` libtest's own prefix may share the line, so search
    // for the marker anywhere.
    let lines: Vec<Vec<(&str, &str)>> = stdout
        .lines()
        .filter_map(|l| l.find("CHAOS:").map(|i| &l[i + "CHAOS:".len()..]))
        .map(|l| l.split_whitespace().filter_map(|tok| tok.split_once('=')).collect())
        .collect();
    let field = |entry: &[(&str, &str)], key: &str| -> f64 {
        entry.iter().find(|(k, _)| *k == key).and_then(|(_, v)| v.parse().ok()).unwrap_or(0.0)
    };
    let cells: Vec<&Vec<(&str, &str)>> =
        lines.iter().filter(|e| e.iter().any(|(k, _)| *k == "recovered")).collect();
    let recovered: f64 = cells.iter().map(|e| field(e, "recovered")).sum();
    let success_rate = if cells.is_empty() { 0.0 } else { recovered / cells.len() as f64 };
    let skipped: f64 = lines
        .iter()
        .filter(|e| e.iter().any(|(k, v)| *k == "summary" && *v == "soak"))
        .map(|e| field(e, "skipped"))
        .sum();

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"budget_secs\": {},\n", budget.as_secs()));
    json.push_str(&format!("  \"wall_secs\": {:.3},\n", start.elapsed().as_secs_f64()));
    json.push_str(&format!("  \"cells\": {},\n", cells.len()));
    json.push_str(&format!("  \"cells_skipped\": {skipped},\n"));
    json.push_str(&format!("  \"recovery_success_rate\": {success_rate:.4},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, entry) in cells.iter().enumerate() {
        let fields: Vec<String> = entry
            .iter()
            .map(|(k, v)| {
                if v.parse::<f64>().is_ok() {
                    format!("\"{k}\": {v}")
                } else {
                    format!("\"{k}\": \"{v}\"")
                }
            })
            .collect();
        let comma = if i + 1 < cells.len() { "," } else { "" };
        json.push_str(&format!("    {{{}}}{comma}\n", fields.join(", ")));
    }
    json.push_str("  ]\n}\n");
    let bench = root.join("BENCH_chaos.json");
    if let Err(e) = std::fs::write(&bench, &json) {
        eprintln!("xtask: could not write {}: {e}", bench.display());
        return ExitCode::FAILURE;
    }
    if (success_rate - 1.0).abs() > f64::EPSILON || cells.is_empty() {
        eprintln!(
            "xtask: chaos-soak FAILED — recovery success rate {success_rate:.4} over {} cell(s) \
             (must be 1.0)",
            cells.len()
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "xtask: chaos-soak passed — {} cell(s), {skipped:.0} skipped, 100% recovery; \
         metrics in {}",
        cells.len(),
        bench.display()
    );
    ExitCode::SUCCESS
}

/// The schedule-space race checker: run `tests/explore.rs` in release
/// mode with the CI-scale knobs (≥ 1000 generated programs, the
/// wall-clock budget exported as `PMM_EXPLORE_BUDGET_SECS`), collect the
/// tests' `DPOR: key=value` metric lines, and write them — plus
/// aggregate schedules/sec, states pruned, and programs generated — to
/// `BENCH_explore.json` at the workspace root. On failure, any
/// `PMM_SCHEDULE=prefix:...` repro lines in the test output are
/// re-printed so the failing interleaving replays in one command.
fn dpor(budget: Duration) -> ExitCode {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let root = workspace_root();
    eprintln!("xtask: dpor — schedule-space race checker ({}s budget)", budget.as_secs());
    let start = Instant::now();
    let output = match Command::new(&cargo)
        .args(["test", "--release", "--test", "explore", "--", "--nocapture", "--test-threads=1"])
        .env("PMM_EXPLORE_PROGRAMS", "1000")
        .env("PMM_EXPLORE_BUDGET_SECS", budget.as_secs().to_string())
        .current_dir(&root)
        .output()
    {
        Ok(out) => out,
        Err(e) => {
            eprintln!("xtask: could not launch cargo test: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    print!("{stdout}");
    eprint!("{stderr}");

    if !output.status.success() {
        for line in stdout.lines().chain(stderr.lines()) {
            if line.contains("PMM_SCHEDULE=") {
                eprintln!("xtask: repro: {}", line.trim());
            }
        }
        eprintln!("xtask: dpor FAILED");
        return ExitCode::FAILURE;
    }

    // Each workload test prints one `DPOR: key=value ...` line. Under
    // `--nocapture`, libtest's own `test name ...` prefix can share the
    // line, so search for the marker anywhere.
    let lines: Vec<Vec<(&str, &str)>> = stdout
        .lines()
        .filter_map(|l| l.find("DPOR:").map(|i| &l[i + "DPOR:".len()..]))
        .map(|l| l.split_whitespace().filter_map(|tok| tok.split_once('=')).collect())
        .collect();
    let field = |entry: &[(&str, &str)], key: &str| -> f64 {
        entry.iter().find(|(k, _)| *k == key).and_then(|(_, v)| v.parse().ok()).unwrap_or(0.0)
    };
    let sum = |key: &str| -> f64 { lines.iter().map(|e| field(e, key)).sum() };
    let schedules = sum("schedules");
    let explore_secs: f64 = lines
        .iter()
        .filter(|e| e.iter().any(|(k, _)| *k == "schedules"))
        .map(|e| field(e, "secs"))
        .sum();
    let rate = if explore_secs > 0.0 { schedules / explore_secs } else { 0.0 };

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"budget_secs\": {},\n", budget.as_secs()));
    json.push_str(&format!("  \"wall_secs\": {:.3},\n", start.elapsed().as_secs_f64()));
    json.push_str(&format!("  \"schedules_explored\": {schedules},\n"));
    json.push_str(&format!("  \"world_runs\": {},\n", sum("runs")));
    json.push_str(&format!("  \"states_pruned\": {},\n", sum("pruned")));
    json.push_str(&format!("  \"schedules_per_sec\": {rate:.1},\n"));
    json.push_str(&format!("  \"programs_generated\": {},\n", sum("programs")));
    json.push_str("  \"workloads\": [\n");
    for (i, entry) in lines.iter().enumerate() {
        let fields: Vec<String> = entry
            .iter()
            .map(|(k, v)| {
                if v.parse::<f64>().is_ok() {
                    format!("\"{k}\": {v}")
                } else {
                    format!("\"{k}\": \"{v}\"")
                }
            })
            .collect();
        let comma = if i + 1 < lines.len() { "," } else { "" };
        json.push_str(&format!("    {{{}}}{comma}\n", fields.join(", ")));
    }
    json.push_str("  ]\n}\n");
    let bench = root.join("BENCH_explore.json");
    if let Err(e) = std::fs::write(&bench, &json) {
        eprintln!("xtask: could not write {}: {e}", bench.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "xtask: dpor passed — {schedules:.0} schedules ({rate:.0}/s), {:.0} pruned, \
         {:.0} generated programs; metrics in {}",
        sum("pruned"),
        sum("programs"),
        bench.display()
    );
    ExitCode::SUCCESS
}

/// The large-P execution cells of `cargo xtask scale-check`, in
/// ascending-P order so a spent budget drops the biggest cells first.
/// Each entry is the exact `tests/scale.rs` test name and its pinned
/// rank count.
const SCALE_CELLS: [(&str, u64); 3] = [
    ("alg1_executes_at_p_10_4_with_exact_eq3_attribution", 10_000),
    ("alg1_executes_at_p_10_5_with_exact_eq3_attribution", 100_000),
    ("alg1_executes_at_p_10_6", 1_000_000),
];

/// The executed-at-scale gate: run the `tests/scale.rs` cells (release
/// mode, event-loop engine) in ascending-P order until the wall-clock
/// budget is spent, collect each cell's `SCALE: key=value` metric line,
/// and write `BENCH_scale.json` at the workspace root: ranks/sec
/// stepped, peak RSS, and the maximum P actually executed.
fn scale_check(budget: Duration) -> ExitCode {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let root = workspace_root();
    eprintln!("xtask: scale-check — executed-at-scale gate ({}s budget)", budget.as_secs());
    let start = Instant::now();
    let mut lines: Vec<Vec<(String, String)>> = Vec::new();
    let mut max_p = 0u64;
    let mut skipped = 0u32;
    for (test, p) in SCALE_CELLS {
        if start.elapsed() >= budget {
            skipped += 1;
            eprintln!("xtask: scale-check budget spent — skipping P = {p} cell");
            continue;
        }
        eprintln!("xtask: scale-check cell P = {p} ({test})");
        let output = match Command::new(&cargo)
            .args([
                "test",
                "--release",
                "--test",
                "scale",
                "--",
                "--include-ignored",
                "--exact",
                test,
                "--nocapture",
            ])
            .current_dir(&root)
            .output()
        {
            Ok(out) => out,
            Err(e) => {
                eprintln!("xtask: could not launch cargo test: {e}");
                return ExitCode::FAILURE;
            }
        };
        let stdout = String::from_utf8_lossy(&output.stdout);
        print!("{stdout}");
        eprint!("{}", String::from_utf8_lossy(&output.stderr));
        if !output.status.success() {
            eprintln!("xtask: scale-check FAILED at P = {p} ({test})");
            return ExitCode::FAILURE;
        }
        for entry in stdout
            .lines()
            .filter_map(|l| l.find("SCALE:").map(|i| &l[i + "SCALE:".len()..]))
            .map(|l| {
                l.split_whitespace()
                    .filter_map(|tok| tok.split_once('='))
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect::<Vec<_>>()
            })
        {
            lines.push(entry);
        }
        max_p = max_p.max(p);
    }
    if lines.is_empty() {
        eprintln!("xtask: scale-check ran no cells — raise the budget");
        return ExitCode::FAILURE;
    }

    let field = |entry: &[(String, String)], key: &str| -> f64 {
        entry.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.parse().ok()).unwrap_or(0.0)
    };
    let peak_rss: f64 = lines.iter().map(|e| field(e, "peak_rss_kb")).fold(0.0, f64::max);
    let best_rate: f64 = lines.iter().map(|e| field(e, "ranks_per_sec")).fold(0.0, f64::max);

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"budget_secs\": {},\n", budget.as_secs()));
    json.push_str(&format!("  \"wall_secs\": {:.3},\n", start.elapsed().as_secs_f64()));
    json.push_str(&format!("  \"max_executed_p\": {max_p},\n"));
    json.push_str(&format!("  \"best_ranks_per_sec\": {best_rate:.0},\n"));
    json.push_str(&format!("  \"peak_rss_kb\": {peak_rss:.0},\n"));
    json.push_str(&format!("  \"cells_skipped\": {skipped},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, entry) in lines.iter().enumerate() {
        let fields: Vec<String> = entry
            .iter()
            .map(|(k, v)| {
                if v.parse::<f64>().is_ok() {
                    format!("\"{k}\": {v}")
                } else {
                    format!("\"{k}\": \"{v}\"")
                }
            })
            .collect();
        let comma = if i + 1 < lines.len() { "," } else { "" };
        json.push_str(&format!("    {{{}}}{comma}\n", fields.join(", ")));
    }
    json.push_str("  ]\n}\n");
    let bench = root.join("BENCH_scale.json");
    if let Err(e) = std::fs::write(&bench, &json) {
        eprintln!("xtask: could not write {}: {e}", bench.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "xtask: scale-check passed — max executed P = {max_p}, {best_rate:.0} ranks/s, \
         peak RSS {:.0} MB{}; metrics in {}",
        peak_rss / 1024.0,
        if skipped > 0 { format!(" ({skipped} cell(s) skipped on budget)") } else { String::new() },
        bench.display()
    );
    ExitCode::SUCCESS
}

/// The `pmm serve` chaos soak: run `pmm-bench`'s `serve_chaos` binary in
/// release mode with the wall-clock budget exported as
/// `PMM_SERVE_SOAK_SECS`, let its own invariant checks gate the exit
/// status, and collect its `SERVE: key=value` metric lines into
/// `BENCH_serve.json` at the workspace root (client-side tally,
/// server-side counters, and derived throughput / latency-percentile /
/// shed-rate / cache-hit-rate figures).
fn serve_soak(budget: Duration) -> ExitCode {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let root = workspace_root();
    eprintln!("xtask: serve-soak — pmm-serve chaos harness ({}s budget)", budget.as_secs());
    let start = Instant::now();
    let output = match Command::new(&cargo)
        .args(["run", "--release", "-p", "pmm-bench", "--bin", "serve_chaos"])
        .env("PMM_SERVE_SOAK_SECS", budget.as_secs().to_string())
        .current_dir(&root)
        .output()
    {
        Ok(out) => out,
        Err(e) => {
            eprintln!("xtask: could not launch the serve_chaos harness: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    print!("{stdout}");
    eprint!("{stderr}");
    if !output.status.success() {
        eprintln!("xtask: serve-soak FAILED");
        return ExitCode::FAILURE;
    }

    // The harness prints one `SERVE: key=value ...` line per section;
    // each section carries a marker key to recognise it by.
    let lines: Vec<Vec<(&str, &str)>> = stdout
        .lines()
        .filter_map(|l| l.find("SERVE:").map(|i| &l[i + "SERVE:".len()..]))
        .map(|l| l.split_whitespace().filter_map(|tok| tok.split_once('=')).collect())
        .collect();
    let section = |marker: &str| -> Option<&Vec<(&str, &str)>> {
        lines.iter().find(|entry| entry.iter().any(|(k, _)| *k == marker))
    };
    let render = |entry: &[(&str, &str)]| -> String {
        let fields: Vec<String> = entry
            .iter()
            .map(|(k, v)| {
                if v.parse::<f64>().is_ok() {
                    format!("\"{k}\": {v}")
                } else {
                    format!("\"{k}\": \"{v}\"")
                }
            })
            .collect();
        format!("{{{}}}", fields.join(", "))
    };
    let (Some(client), Some(server), Some(derived)) =
        (section("requests"), section("received"), section("throughput_rps"))
    else {
        eprintln!("xtask: serve-soak passed but its SERVE: metric lines are missing");
        return ExitCode::FAILURE;
    };
    let verdict = section("verdict")
        .and_then(|e| e.iter().find(|(k, _)| *k == "verdict").map(|(_, v)| *v))
        .unwrap_or("unknown");

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"budget_secs\": {},\n", budget.as_secs()));
    json.push_str(&format!("  \"wall_secs\": {:.3},\n", start.elapsed().as_secs_f64()));
    json.push_str(&format!("  \"verdict\": \"{verdict}\",\n"));
    json.push_str(&format!("  \"client\": {},\n", render(client)));
    json.push_str(&format!("  \"server\": {},\n", render(server)));
    json.push_str(&format!("  \"derived\": {}\n", render(derived)));
    json.push_str("}\n");
    let bench = root.join("BENCH_serve.json");
    if let Err(e) = std::fs::write(&bench, &json) {
        eprintln!("xtask: could not write {}: {e}", bench.display());
        return ExitCode::FAILURE;
    }
    let derived_field = |key: &str| -> &str {
        derived.iter().find(|(k, _)| *k == key).map(|(_, v)| *v).unwrap_or("?")
    };
    eprintln!(
        "xtask: serve-soak passed — {} rps, p50 {} µs, p99 {} µs, shed rate {}, \
         cache hit rate {}; metrics in {}",
        derived_field("throughput_rps"),
        derived_field("p50_us"),
        derived_field("p99_us"),
        derived_field("shed_rate"),
        derived_field("cache_hit_rate"),
        bench.display()
    );
    ExitCode::SUCCESS
}

/// `cargo xtask calibrate [budget-secs]`: run the in-process probe suite
/// via `pmm calibrate` and write the fitted α-β-γ constants to
/// `calibration.json` at the workspace root (gitignored — the constants
/// describe *this* host, so they are never committed).
fn calibrate(budget_secs: f64) -> ExitCode {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let root = workspace_root();
    let out = root.join("calibration.json");
    eprintln!("xtask: calibrate — fitting machine constants ({budget_secs}s budget)");
    let status = Command::new(&cargo)
        .args(["run", "--release", "-q", "-p", "pmm-cli", "--bin", "pmm", "--", "calibrate"])
        .args(["--budget-secs", &budget_secs.to_string()])
        .args(["--out", &out.display().to_string()])
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => {
            eprintln!("xtask: calibrate wrote {}", out.display());
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("xtask: calibrate FAILED");
            ExitCode::FAILURE
        }
    }
}

/// Pull `key=value` out of a `KERNELS:` marker line (first occurrence).
fn marker_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// How far the best kernel may regress against the committed
/// `BENCH_kernels.json` baseline before the gate fails (fraction of the
/// baseline GFLOP/s that must survive).
const KERNEL_BENCH_FLOOR: f64 = 0.8;

/// `cargo xtask kernel-bench [budget-secs]`: run the `kernel_bench`
/// harness (per-tier GFLOP/s, calibration fit, Theorem 3 validation
/// cells — its own checks gate the exit status), parse its `KERNELS:`
/// marker lines into `BENCH_kernels.json` at the workspace root, and
/// fail if the best kernel's GFLOP/s dropped more than 20% below the
/// committed baseline's `best_gflops`.
fn kernel_bench(budget_secs: f64) -> ExitCode {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let root = workspace_root();
    let bench = root.join("BENCH_kernels.json");
    // Read the committed baseline before the new run overwrites it.
    let baseline_gflops: Option<f64> = std::fs::read_to_string(&bench).ok().and_then(|json| {
        json.lines()
            .find(|l| l.contains("\"best_gflops\""))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().trim_end_matches(',').parse().ok())
    });
    eprintln!("xtask: kernel-bench — local kernels + calibration ({budget_secs}s budget)");
    let start = Instant::now();
    let output = match Command::new(&cargo)
        .args(["run", "--release", "-p", "pmm-bench", "--bin", "kernel_bench"])
        .arg("--")
        .arg(budget_secs.to_string())
        .current_dir(&root)
        .output()
    {
        Ok(out) => out,
        Err(e) => {
            eprintln!("xtask: could not launch the kernel_bench harness: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stdout = String::from_utf8_lossy(&output.stdout);
    print!("{stdout}");
    eprint!("{}", String::from_utf8_lossy(&output.stderr));
    if !output.status.success() {
        eprintln!("xtask: kernel-bench FAILED (harness checks)");
        return ExitCode::FAILURE;
    }

    let lines: Vec<&str> = stdout
        .lines()
        .filter_map(|l| l.find("KERNELS:").map(|i| l[i + "KERNELS:".len()..].trim()))
        .collect();
    let kernels: Vec<&&str> = lines.iter().filter(|l| l.starts_with("kernel ")).collect();
    let cells: Vec<&&str> = lines.iter().filter(|l| l.starts_with("cell ")).collect();
    let calibration = lines.iter().find(|l| l.starts_with("calibration "));
    let summary = lines.iter().find(|l| l.starts_with("summary "));
    let (Some(calibration), Some(summary)) = (calibration, summary) else {
        eprintln!("xtask: kernel-bench passed but its KERNELS: marker lines are missing");
        return ExitCode::FAILURE;
    };
    let render = |line: &str, skip: usize| -> String {
        let fields: Vec<String> = line
            .split_whitespace()
            .skip(skip)
            .filter_map(|tok| tok.split_once('='))
            .map(|(k, v)| {
                if v.parse::<f64>().is_ok() {
                    format!("\"{k}\": {v}")
                } else {
                    format!("\"{k}\": \"{v}\"")
                }
            })
            .collect();
        format!("{{{}}}", fields.join(", "))
    };

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"budget_secs\": {budget_secs},\n"));
    json.push_str(&format!("  \"wall_secs\": {:.3},\n", start.elapsed().as_secs_f64()));
    for key in ["best_kernel", "best_gflops", "naive_gflops", "speedup", "max_err_pct"] {
        let v = marker_value(summary, key).unwrap_or("0");
        if v.parse::<f64>().is_ok() {
            json.push_str(&format!("  \"{key}\": {v},\n"));
        } else {
            json.push_str(&format!("  \"{key}\": \"{v}\",\n"));
        }
    }
    json.push_str(&format!("  \"calibration\": {},\n", render(calibration, 1)));
    json.push_str("  \"kernels\": [\n");
    for (i, line) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        json.push_str(&format!("    {}{comma}\n", render(line, 1)));
    }
    json.push_str("  ],\n  \"cells\": [\n");
    for (i, line) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        json.push_str(&format!("    {}{comma}\n", render(line, 1)));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&bench, &json) {
        eprintln!("xtask: could not write {}: {e}", bench.display());
        return ExitCode::FAILURE;
    }

    let new_gflops: f64 =
        marker_value(summary, "best_gflops").and_then(|v| v.parse().ok()).unwrap_or(0.0);
    if let Some(base) = baseline_gflops {
        if new_gflops < KERNEL_BENCH_FLOOR * base {
            eprintln!(
                "xtask: kernel-bench FAILED — best kernel regressed to {new_gflops:.2} GFLOP/s, \
                 below {:.0}% of the committed baseline {base:.2}",
                100.0 * KERNEL_BENCH_FLOOR
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "xtask: kernel-bench passed — best {new_gflops:.2} GFLOP/s \
             (baseline {base:.2}); metrics in {}",
            bench.display()
        );
    } else {
        eprintln!(
            "xtask: kernel-bench passed — best {new_gflops:.2} GFLOP/s (no baseline to \
             compare); metrics in {}",
            bench.display()
        );
    }
    ExitCode::SUCCESS
}

fn run_steps(steps: &[Step]) -> ExitCode {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let root = workspace_root();
    for step in steps {
        eprintln!("xtask: {}", step.name);
        let status = Command::new(&cargo).args(&step.args).current_dir(&root).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("xtask: step '{}' failed with {s}", step.name);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask: could not launch '{}': {e}", step.name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask; CARGO_MANIFEST_DIR is compiled in.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask crate sits directly under the workspace root")
        .to_path_buf()
}

/// Scan all workspace `.rs` sources for forbidden tokens: `unsafe` (the
/// workspace denies the `unsafe_code` lint and the policy is zero unsafe
/// code) plus the `todo!`/`dbg!` leftover-macros (denied via
/// `clippy::todo`/`clippy::dbg_macro`). The grep backstops all three
/// lints against `#[allow]` escapes. Returns true when clean.
fn keyword_audit(root: &Path) -> bool {
    // Needles built from parts so the audit does not flag its own source.
    let needles: Vec<String> =
        vec![["un", "safe"].concat(), ["to", "do", "!"].concat(), ["db", "g!"].concat()];
    let mut violations = Vec::new();
    for dir in ["src", "crates", "shims", "xtask"] {
        scan_dir(&root.join(dir), &needles, &mut violations);
    }
    if violations.is_empty() {
        return true;
    }
    eprintln!("xtask: {} forbidden token(s) found (policy: none allowed):", violations.len());
    for (path, line_no, line) in &violations {
        eprintln!("  {}:{line_no}: {}", path.display(), line.trim());
    }
    false
}

fn scan_dir(dir: &Path, needles: &[String], violations: &mut Vec<(PathBuf, usize, String)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            scan_dir(&path, needles, violations);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            for (i, line) in text.lines().enumerate() {
                // Comment lines are prose, not code: a commented-out token
                // cannot compile, so it is not a policy violation.
                if line.trim_start().starts_with("//") {
                    continue;
                }
                if needles.iter().any(|needle| has_word(line, needle)) {
                    violations.push((path.clone(), i + 1, line.to_string()));
                }
            }
        }
    }
}

/// Word-boundary match: `needle` not embedded in a larger identifier.
fn has_word(line: &str, needle: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !line[..at].chars().next_back().is_some_and(ident);
        let after_ok = !line[at + needle.len()..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_match_respects_identifier_boundaries() {
        // The needle is spelled in parts everywhere so the audit (which
        // scans this file too) does not flag its own test fixtures.
        let needle = ["un", "safe"].concat();
        assert!(has_word(&format!("let x = {needle} {{ 1 }};"), &needle));
        assert!(has_word(&format!("{needle} fn f() {{}}"), &needle));
        assert!(has_word(&format!("call({needle}-audit)"), &needle));
        assert!(!has_word(&format!("deny_{needle}_code_everywhere()"), &needle));
        assert!(!has_word(&format!("let {needle}ty = 1;"), &needle));
        assert!(!has_word("totally safe code", &needle));
    }

    #[test]
    fn audit_needles_catch_leftover_macros() {
        // Spelled in parts for the same reason as above.
        let todo = ["to", "do", "!"].concat();
        let dbg = ["db", "g!"].concat();
        assert!(has_word(&format!("{todo}(\"wire this up\")"), &todo));
        assert!(has_word(&format!("let x = {dbg}(value);"), &dbg));
        assert!(!has_word(&format!("method_{todo}()"), &todo));
        assert!(!has_word("debug!(value)", &dbg));
    }

    #[test]
    fn workspace_root_contains_the_root_manifest() {
        assert!(workspace_root().join("Cargo.toml").exists());
    }
}
