//! Strong scaling of a square multiplication: run Algorithm 1 on
//! simulated machines of growing size and compare measured communication
//! against the Corollary 4 bound `3n²/P^{2/3} − 3n²/P`.
//!
//! Context (Ballard et al. 2012b, §2.3): the memory-independent bound is
//! what limits strong scaling — past `P = n³/M^{3/2}` perfect scaling of
//! communication cost is impossible.
//!
//! ```sh
//! cargo run --release --example strong_scaling
//! ```

use pmm::prelude::*;

fn main() {
    let n = 192u64;
    let dims = MatMulDims::square(n);
    println!("square multiplication, n = {n}\n");
    println!(
        "{:>5} {:>9} {:>14} {:>14} {:>8} {:>14}",
        "P", "grid", "measured", "corollary4", "ratio", "words×P (tot)"
    );

    for p in [1usize, 8, 27, 64, 216, 512] {
        let choice = best_divisible_grid(dims, p).expect("divisible grid exists");
        let cfg = Alg1Config::new(dims, choice.grid3());
        let nn = n as usize;
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(nn, nn, -2..3, 7);
            let b = random_int_matrix(nn, nn, -2..3, 8);
            alg1(rank, &cfg, &a, &b)
        });
        let measured = out.critical_path_time();
        let bound = corollary4(n, p as f64);
        println!(
            "{:>5} {:>9} {:>14.0} {:>14.0} {:>8.3} {:>14.0}",
            p,
            choice.grid3().to_string(),
            measured,
            bound,
            if bound > 0.0 { measured / bound } else { 1.0 },
            measured * p as f64,
        );
    }

    println!("\nreading the table:");
    println!(" * measured/bound == 1.000 at cubic grids (8 = 2³, 27 = 3³, 64 = 4³, …):");
    println!("   the bound is tight and Algorithm 1 attains it exactly;");
    println!(" * total communication (words×P) *grows* like P^(1/3):");
    println!("   strong scaling of communication is fundamentally sublinear.");
}
