//! The bounds as a decision procedure: given a problem and a machine
//! (`P`, local memory `M`, α-β-γ), rank the execution strategies by
//! predicted time — then run the winner on the simulator and check the
//! prediction.
//!
//! ```sh
//! cargo run --release --example algorithm_selector
//! ```

use pmm::bounds::advisor::{recommend, Strategy};
use pmm::prelude::*;

fn describe(s: &Strategy) -> String {
    match s {
        Strategy::Alg1 { grid } => format!("Algorithm 1 on {}x{}x{}", grid[0], grid[1], grid[2]),
        Strategy::TwoFiveD { q, c } => format!("2.5D with {q}x{q} layers, c = {c}"),
    }
}

fn main() {
    let dims = MatMulDims::new(512, 512, 512);
    let p = 64usize;

    for (label, m_words, params) in [
        ("ample memory, bandwidth-bound", f64::INFINITY, MachineParams::BANDWIDTH_ONLY),
        ("ample memory, latency-heavy", f64::INFINITY, MachineParams::new(1e5, 1.0, 0.0)),
        (
            "tight memory (1.5x the minimum)",
            1.5 * 3.0 * 512.0 * 512.0 / 64.0,
            MachineParams::BANDWIDTH_ONLY,
        ),
    ] {
        println!("--- {label} ---");
        let recs = recommend(dims, p, m_words, params);
        for (i, r) in recs.iter().take(4).enumerate() {
            println!(
                "  #{i} {:<30} time {:>12.0}  words {:>8.0}  msgs {:>3.0}  mem {:>7.0}",
                describe(&r.strategy),
                r.time,
                r.cost.words,
                r.cost.messages,
                r.memory_words
            );
        }
        println!();
    }

    // Execute the bandwidth-bound winner and compare measured words with
    // the advisor's prediction.
    let recs = recommend(dims, p, f64::INFINITY, MachineParams::BANDWIDTH_ONLY);
    let best = &recs[0];
    if let Strategy::Alg1 { grid } = best.strategy {
        let cfg = Alg1Config::new(dims, Grid3::from_dims(grid));
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(512, 512, -2..3, 1);
            let b = random_int_matrix(512, 512, -2..3, 2);
            alg1(rank, &cfg, &a, &b)
        });
        let measured = out.critical_path_time();
        println!(
            "executed the winner ({}): predicted {:.0} words, measured {:.0}",
            describe(&best.strategy),
            best.cost.words,
            measured
        );
        assert!((measured - best.cost.words).abs() < 1e-6 * best.cost.words);
        println!("prediction confirmed ✓");
    }
}
