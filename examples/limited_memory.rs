//! §6.2 in action: when local memory `M` is limited, which bound binds,
//! and when does Algorithm 1 stop fitting?
//!
//! The example (a) sweeps `P` for a fixed problem and small `M`, printing
//! the binding bound and the crossover interval; and (b) *runs* Algorithm 1
//! under an enforced per-rank memory limit, showing the 3D grid exceeding
//! a budget that the 2D grid respects.
//!
//! ```sh
//! cargo run --release --example limited_memory
//! ```

use pmm::bounds::memlimit::{memory_dependent_dominance_range, Dominant};
use pmm::prelude::*;

fn main() {
    let dims = MatMulDims::new(9600, 2400, 600);
    let m_words = 9_000.0;

    println!("problem: {dims}, local memory M = {m_words} words\n");
    match memory_dependent_dominance_range(dims, m_words) {
        Some((lo, hi)) => println!(
            "memory-dependent bound dominates for {lo:.0} < P ≤ {hi:.0} \
             (= mn/k² < P ≤ 8/27·mnk/M^(3/2))\n"
        ),
        None => println!("M is large enough that Theorem 3 binds for every P\n"),
    }

    println!(
        "{:>7} {:>6} {:>16} {:>16} {:>12}",
        "P", "case", "independent(D)", "dependent", "binding"
    );
    for p in [16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0] {
        if min_memory_words(dims, p) > m_words {
            println!(
                "{p:>7} {:>6} {:>16} {:>16} {:>12}",
                "-", "infeasible: M can't hold 1/P of the data", "", ""
            );
            continue;
        }
        let rep = limited_memory_report(dims, p, m_words);
        println!(
            "{:>7} {:>6} {:>16.0} {:>16.0} {:>12}",
            p,
            rep.independent.case.to_string(),
            rep.independent.d,
            rep.dependent,
            match rep.dominant {
                Dominant::MemoryIndependent => "Theorem 3",
                Dominant::MemoryDependent => "2mnk/(P√M)",
            }
        );
    }

    // ---- enforce a memory limit on an actual run ---------------------------
    println!("\nenforced-limit run (small instance, P = 64):");
    let dims = MatMulDims::new(384, 96, 24);
    let p = 64usize;
    let grid3d = best_grid(dims, p).grid3(); // 16x4x1? depends on case — report it
    let grid2d = Grid3::new(8, 8, 1);
    for (label, grid) in [("optimal grid", grid3d), ("8x8x1 grid", grid2d)] {
        let footprint = alg1_memory_words(dims, grid.dims());
        println!(
            "  {label:<13} {grid}: analytic footprint {footprint:.0} words/rank, \
             minimum storage {:.0}",
            min_memory_words(dims, p as f64)
        );
    }

    // Budget chosen between the two grids' peak footprints: the leaner
    // (optimal) grid fits, the hungrier one is rejected by the simulator's
    // memory tracker. Silence the expected panic's backtrace.
    let budget = 2_600u64;
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for (label, grid) in [("optimal grid", grid3d), ("8x8x1 grid", grid2d)] {
        let cfg = Alg1Config::new(dims, grid);
        let result = std::panic::catch_unwind(|| {
            World::new(p, MachineParams::BANDWIDTH_ONLY)
                .with_memory_limit(Some(budget))
                .run(move |rank| {
                    let a = random_int_matrix(384, 96, -2..3, 1);
                    let b = random_int_matrix(96, 24, -2..3, 2);
                    alg1(rank, &cfg, &a, &b);
                    rank.mem().peak()
                })
                .values
                .iter()
                .copied()
                .max()
                .unwrap()
        });
        match result {
            Ok(peak) => println!("  {label:<13} fits in {budget}: peak {peak} words/rank"),
            Err(_) => println!("  {label:<13} EXCEEDS the {budget}-word limit (run aborted)"),
        }
    }
    std::panic::set_hook(default_hook);
    println!("\nAlgorithm 1's 3D grids need asymptotically more than the minimum");
    println!("memory — in limited-memory regimes use 2.5D-style algorithms instead.");
}
