//! How the three cases of Theorem 3 arise from aspect ratios: sweep the
//! processor count for a fixed rectangular problem and watch the case, the
//! optimal grid dimensionality, and the binding constant change.
//!
//! ```sh
//! cargo run --release --example aspect_ratios
//! ```

use pmm::prelude::*;

fn main() {
    // The paper's running example: A is 9600×2400, B is 2400×600.
    let dims = MatMulDims::new(9600, 2400, 600);
    let s = dims.sorted();
    println!("problem: {dims}   (m, n, k) = ({}, {}, {})", s.m, s.n, s.k);
    println!(
        "case thresholds: P = m/n = {}   and   P = mn/k² = {}\n",
        s.threshold_1d_2d(),
        s.threshold_2d_3d()
    );

    println!(
        "{:>6} {:>5} {:>12} {:>14} {:>10} {:>9} {:>14}",
        "P", "case", "grid", "bound(words)", "leading", "const", "grid-dim"
    );
    for p in [1usize, 2, 3, 4, 6, 9, 16, 25, 36, 49, 64, 128, 256, 512, 1024, 4096] {
        let r = lower_bound(dims, p as f64);
        let g = best_grid(dims, p);
        println!(
            "{:>6} {:>5} {:>12} {:>14.0} {:>10.0} {:>9} {:>14}",
            p,
            r.case.to_string(),
            g.grid3().to_string(),
            r.bound,
            r.leading_term,
            r.constant,
            format!("{}D", g.grid3().effective_dimensionality().clamp(1, 3)),
        );
    }

    println!("\nreading the table:");
    println!(" * P ≤ 4: 1D case — only the small nk-face matrix moves; bound (1-1/P)·nk");
    println!(" * 4 ≤ P ≤ 64: 2D case — bound 2(mnk²/P)^(1/2) + mn/P − offset");
    println!(" * P ≥ 64: 3D case — bound 3(mnk/P)^(2/3) − offset");
    println!(" * the grids match Fig. 2 of the paper: 3x1x1, 12x3x1, 32x8x2 …");
}
