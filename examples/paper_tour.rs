//! A guided tour of the paper, section by section, with every claim
//! checked live. Run it to "read" the paper through the library:
//!
//! ```sh
//! cargo run --release --example paper_tour
//! ```

use pmm::bounds::genbound::GenBoundProblem;
use pmm::bounds::kkt::{certificate_for, verify_kkt};
use pmm::bounds::loomis::LatticeSet;
use pmm::bounds::memlimit::{limited_memory_report, memory_dependent_dominance_range, Dominant};
use pmm::prelude::*;

fn heading(s: &str) {
    println!("\n━━━ {s} ━━━");
}

fn main() {
    println!("Tight Memory-Independent Parallel Matrix Multiplication");
    println!("Communication Lower Bounds — Al Daas, Ballard, Grigori, Kumar,");
    println!("Rouse (SPAA 2022), as an executable tour.");

    // ---------------------------------------------------------------- §3.2
    heading("§3.2 Loomis–Whitney (Lemma 1 of the preliminaries)");
    let v = LatticeSet::brick((0, 4), (0, 6), (0, 5));
    let f = v.footprints();
    println!(
        "a 4×6×5 brick of scalar multiplications touches {} entries of A,\n\
         {} of B, {} of C; |V| = {} ≤ {}·{}·{} ✓",
        f[0],
        f[1],
        f[2],
        v.len(),
        v.projection_size(0),
        v.projection_size(1),
        v.projection_size(2),
    );
    assert!(v.satisfies_loomis_whitney());

    // ---------------------------------------------------------------- §4.1
    heading("§4.1 Lemma 1 — per-array access floors");
    let dims = MatMulDims::new(9600, 2400, 600);
    let p = 36.0;
    println!(
        "any processor doing 1/P of the work must touch ≥ n1n2/P = {:.0} of A,\n\
         ≥ n2n3/P = {:.0} of B, ≥ n1n3/P = {:.0} of C",
        dims.words_of(MatrixId::A) / p,
        dims.words_of(MatrixId::B) / p,
        dims.words_of(MatrixId::C) / p
    );

    // ---------------------------------------------------------------- §4.2
    heading("§4.2 Lemma 2 — the key optimization problem");
    let prob = OptProblem::from_dims(dims.sorted(), p);
    let sol = prob.solve();
    println!(
        "minimize x1+x2+x3 s.t. x1x2x3 ≥ (mnk/P)², x ≥ floors\n\
         → x* = ({:.0}, {:.0}, {:.0}), case {} (P between m/n = 4 and mn/k² = 64)",
        sol.x[0], sol.x[1], sol.x[2], sol.case
    );
    let kkt = verify_kkt(&prob, sol.x, certificate_for(&prob), 1e-9);
    println!("KKT certificate (the paper's μ*): verified = {}", kkt.holds(1e-9));
    assert!(kkt.holds(1e-9));

    // ---------------------------------------------------------------- §4.3
    heading("§4.3 Theorem 3 — the lower bound, three cases");
    for pp in [3.0, 36.0, 512.0] {
        let r = lower_bound(dims, pp);
        println!(
            "P = {pp:>4}: case {} → bound {:.0} words (constant {} on leading term {:.0})",
            r.case, r.bound, r.constant, r.leading_term
        );
    }
    println!("Corollary 4 (square n=1000, P=64): {:.0} words", corollary4(1000, 64.0));

    // ---------------------------------------------------------------- §5
    heading("§5 Algorithm 1 attains the bound (tightness)");
    let small = MatMulDims::new(768, 192, 48); // scaled §5.3 instance
    let choice = best_grid(small, 36);
    let cfg = Alg1Config::new(small, choice.grid3());
    let out = World::new(36, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
        let a = random_int_matrix(768, 192, -2..3, 1);
        let b = random_int_matrix(192, 48, -2..3, 2);
        alg1(rank, &cfg, &a, &b)
    });
    let measured = out.critical_path_time();
    let bound = lower_bound(small, 36.0).bound;
    println!(
        "grid {} on the 12.5×-scaled instance: measured {measured:.0} words, bound {bound:.0}",
        choice.grid3()
    );
    assert!((measured - bound).abs() < 1e-9 * bound);
    println!("measured == bound, to the word ✓ (constants 1/2/3 are tight)");

    // ---------------------------------------------------------------- §5.3
    heading("§5.3 / Fig. 2 — the three optimal grids");
    for pp in [3usize, 36, 512] {
        let g = best_grid(dims, pp);
        println!("P = {pp:>3} → {}", g.grid3());
    }

    // ---------------------------------------------------------------- §6.1
    heading("§6.1 / Table 1 — tighter than all prior constants");
    for prior in PriorBound::ALL {
        let c3 = prior.leading_constant(Case::ThreeD);
        println!(
            "{:<24} 3D constant: {}",
            prior.label(),
            c3.map(|c| format!("{c:.4}")).unwrap_or_else(|| "-".into())
        );
    }

    // ---------------------------------------------------------------- §6.2
    heading("§6.2 — limited memory");
    let m_words = 9_000.0;
    if let Some((lo, hi)) = memory_dependent_dominance_range(dims, m_words) {
        println!("with M = {m_words}: memory-dependent bound binds for {lo:.0} < P ≤ {hi:.0}");
        let rep = limited_memory_report(dims, 4096.0, m_words);
        println!(
            "at P = 4096 the binding bound is {}",
            match rep.dominant {
                Dominant::MemoryDependent => "2mnk/(P√M) — Theorem 3 not tight here",
                Dominant::MemoryIndependent => "Theorem 3",
            }
        );
    }

    // ---------------------------------------------------------------- §6.3
    heading("§6.3 — the technique generalizes");
    let gen = GenBoundProblem::symmetric_tensor(4, 64.0, 4096.0).solve();
    println!(
        "4-dimensional symmetric contraction (n = 64, P = 4096):\n\
         access bound {:.0} = 4·(n⁴/P)^(3/4) — the constant generalizes from 3 to d",
        gen.total
    );

    println!("\ntour complete — every claim above was checked by an assert or a");
    println!("measured run. See EXPERIMENTS.md for the full reproduction.");
}
