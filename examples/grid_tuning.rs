//! Why the grid matters: run Algorithm 1 on *every* factorization of `P`
//! for a rectangular problem and compare against the lower bound.
//!
//! The §5.2 grid is the only one that attains the bound; plausible-looking
//! alternatives (square 2D grid, cube-ish 3D grid on the wrong axes) pay
//! large factors.
//!
//! ```sh
//! cargo run --release --example grid_tuning
//! ```

use pmm::prelude::*;

fn main() {
    // 1D-case instance: m/n = 8, so at P = 8 the optimal grid is 8x1x1.
    let dims = MatMulDims::new(768, 96, 96);
    let p = 8usize;
    let bound = lower_bound(dims, p as f64).bound;
    println!("problem: {dims}, P = {p}, case {}", lower_bound(dims, p as f64).case);
    println!("lower bound: {bound:.0} words/processor\n");
    println!("{:>10} {:>14} {:>14} {:>10}", "grid", "predicted", "measured", "vs bound");

    let mut rows: Vec<([usize; 3], f64)> =
        Grid3::factorizations(p).into_iter().map(|g| (g, alg1_cost_words(dims, g))).collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));

    for (grid, predicted) in rows {
        if !dims.divisible_by(grid) {
            continue;
        }
        let cfg = Alg1Config::new(dims, Grid3::from_dims(grid));
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let a = random_int_matrix(768, 96, -2..3, 3);
            let b = random_int_matrix(96, 96, -2..3, 4);
            alg1(rank, &cfg, &a, &b)
        });
        let measured = out.critical_path_time();
        println!(
            "{:>10} {:>14.0} {:>14.0} {:>9.2}x",
            Grid3::from_dims(grid).to_string(),
            predicted,
            measured,
            measured / bound
        );
    }

    println!("\nthe best factorization matches the §5.2 analysis (1D for this");
    println!("instance); the worst plausible grid pays ~an order of magnitude.");
}
