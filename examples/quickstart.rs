//! Quickstart: evaluate the Theorem 3 bound, pick the optimal grid, run
//! Algorithm 1 on the simulated machine, and check tightness.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pmm::prelude::*;

fn main() {
    // The multiplication from the paper's §5.3 example, scaled down 12.5×
    // so the demo runs instantly (aspect ratios preserved: m/n = 4,
    // mn/k² = 64).
    let dims = MatMulDims::new(768, 192, 48);
    let p = 36usize;

    // --- 1. the lower bound -------------------------------------------------
    let report = lower_bound(dims, p as f64);
    println!("problem   : {dims} on P = {p}");
    println!(
        "case      : {} (thresholds: m/n = {}, mn/k² = {})",
        report.case,
        dims.sorted().threshold_1d_2d(),
        dims.sorted().threshold_2d_3d()
    );
    println!(
        "bound     : {:.1} words/processor (= {} × {:.1} leading − {:.1} offset)",
        report.bound, report.constant, report.leading_term, report.offset
    );

    // --- 2. the optimal processor grid (§5.2) --------------------------------
    let choice = best_grid(dims, p);
    println!("grid      : {} (predicted eq.3 cost {:.1})", choice.grid3(), choice.cost_words);

    // --- 3. run Algorithm 1 on a simulated 36-rank machine -------------------
    let cfg = Alg1Config::new(dims, choice.grid3());
    let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
        // Every rank generates the same global inputs deterministically and
        // reads only its owned chunks; integer entries make the distributed
        // result exactly comparable.
        let a = random_int_matrix(768, 192, -4..5, 42);
        let b = random_int_matrix(192, 48, -4..5, 43);
        alg1(rank, &cfg, &a, &b)
    });

    // --- 4. verify correctness against a serial reference --------------------
    let a = random_int_matrix(768, 192, -4..5, 42);
    let b = random_int_matrix(192, 48, -4..5, 43);
    let want = gemm(&a, &b, Kernel::Tiled);
    let chunks: Vec<Vec<f64>> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
    let got = assemble_c(dims, choice.grid3(), &chunks);
    assert_eq!(got, want, "distributed result must equal the serial product");
    println!("result    : correct ({}x{} product verified)", got.rows(), got.cols());

    // --- 5. tightness: measured communication == bound -----------------------
    let measured = out.critical_path_time();
    println!("measured  : {measured:.1} words/processor on the critical path");
    println!("bound     : {:.1}", report.bound);
    assert!(
        (measured - report.bound).abs() < 1e-9 * report.bound,
        "Algorithm 1 with the optimal grid attains the bound exactly"
    );
    println!("tight     : measured == bound ✓ (constants 1/2/3 are attainable)");
}
