#!/usr/bin/env bash
# Regenerate every paper artifact (Tables, Figures, §5/§6 claims) and save
# the outputs under results/. Each harness verifies its own claims and
# exits nonzero on failure, so this doubles as an end-to-end check.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results
BINS=(table1 lemma2_cases tightness fig1 fig2 eq3_check limited_memory \
      strong_scaling algo_compare collectives_cost tradeoff_25d genbound_demo \
      phase_attribution kernel_bench calibrated_crossover)

for b in "${BINS[@]}"; do
    echo "=== $b ==="
    cargo run --release -q -p pmm-bench --bin "$b" | tee "results/$b.txt"
    echo
done

echo "all experiments completed; outputs in results/"
