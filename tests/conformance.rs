//! Cross-algorithm conformance sweep (deterministic schedules).
//!
//! For a grid of `(m, n, k, P)` points spanning all three Theorem 3
//! regimes — strictly inside 1D (`P < m/n`), 2D (`m/n < P < mn/k²`) and
//! 3D (`P > mn/k²`), plus one point **on** each regime boundary
//! (`P = m/n` and `P = mn/k²`) — run every algorithm in the workspace and
//! assert, under a seeded deterministic schedule:
//!
//! (a) **bitwise** agreement with the serial dense reference (integer
//!     inputs make every f64 sum exact, so agreement is independent of
//!     summation order);
//! (b) per-rank, per-phase traffic of Algorithm 1 matches the eq. 3
//!     prediction from `pmm-model` exactly on evenly-chunked grids, and
//!     in aggregate on every divisible grid;
//! (c) no algorithm's measured critical-path words beat the Theorem 3
//!     lower bound, and Algorithm 1 on the §5.2 optimal grid attains it
//!     exactly wherever that grid is integral (including both regime
//!     boundaries).
//!
//! Every simulated run uses `World::with_seed` with a seed taken from
//! `PMM_SEED` (see `pmm_simnet::seed_from_env`), so a failure reported by
//! CI replays exactly with `PMM_SEED=<printed seed> cargo test --test
//! conformance`.

use pmm::prelude::*;

/// Default schedule seed of the sweep; override with `PMM_SEED`.
const DEFAULT_SEED: u64 = 0x00C0_FFEE;

fn seed() -> u64 {
    let s = seed_from_env(DEFAULT_SEED);
    eprintln!("conformance: schedule seed {s} (replay with PMM_SEED={s})");
    s
}

fn inputs(dims: MatMulDims) -> (Matrix, Matrix) {
    (
        random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 11),
        random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 22),
    )
}

fn reference(dims: MatMulDims) -> Matrix {
    let (a, b) = inputs(dims);
    gemm(&a, &b, Kernel::Tiled)
}

/// One sweep point. `interior` is the Theorem 3 case strictly containing
/// `P`, or `None` when `P` sits exactly on a regime boundary. `tight`
/// marks points whose §5.2 optimal grid is integral and divides the
/// dimensions, where Algorithm 1 must attain the bound *exactly*.
struct Point {
    dims: MatMulDims,
    p: usize,
    interior: Option<Case>,
    tight: bool,
    label: &'static str,
}

/// `A = (96, 24, 12)` has `m/n = 4` and `mn/k² = 16`, so `P` in
/// `{2, 4, 8, 16, 64}` walks 1D-interior → boundary → 2D-interior →
/// boundary → 3D-interior. `B = (32, 16, 8)` at `P = 64` adds a
/// 3D-interior point whose continuous optimal grid `[8, 4, 2]` is
/// integral (`t = (P/mnk)^{1/3} = 1/4`), hence exactly tight.
fn sweep() -> Vec<Point> {
    let a = MatMulDims::new(96, 24, 12);
    let b = MatMulDims::new(32, 16, 8);
    vec![
        Point { dims: a, p: 2, interior: Some(Case::OneD), tight: true, label: "1D interior" },
        Point { dims: a, p: 4, interior: None, tight: true, label: "boundary P = m/n" },
        Point { dims: a, p: 8, interior: Some(Case::TwoD), tight: false, label: "2D interior" },
        Point { dims: a, p: 16, interior: None, tight: true, label: "boundary P = mn/k^2" },
        Point {
            dims: a,
            p: 64,
            interior: Some(Case::ThreeD),
            tight: false,
            label: "3D interior, fractional optimal grid",
        },
        Point {
            dims: b,
            p: 64,
            interior: Some(Case::ThreeD),
            tight: true,
            label: "3D interior, integral optimal grid",
        },
    ]
}

/// The grid each point runs Algorithm 1 on: the exact §5.2 optimum at
/// tight points, otherwise the best factorization that divides the
/// dimensions (where measured cost is still predictable).
fn chosen_grid(pt: &Point) -> (Grid3, [usize; 3], f64) {
    let choice = if pt.tight {
        let c = best_grid(pt.dims, pt.p);
        assert!(
            pt.dims.divisible_by(c.grid),
            "{} ({} P={}): tight point's grid {:?} must divide",
            pt.label,
            pt.dims,
            pt.p,
            c.grid
        );
        c
    } else {
        best_divisible_grid(pt.dims, pt.p)
            .unwrap_or_else(|| panic!("{}: no divisible factorization of {}", pt.label, pt.p))
    };
    (Grid3::from_dims(choice.grid), choice.grid, choice.cost_words)
}

/// Eq. 3 is phase-by-phase exact iff every fiber collective works on
/// even chunks: the gathered/reduced block of each phase must split
/// evenly over its fiber.
fn phase_exact(dims: MatMulDims, grid: [usize; 3]) -> bool {
    let [p1, p2, p3] = grid;
    if !dims.divisible_by(grid) {
        return false;
    }
    let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
    let a_block = (n1 / p1) * (n2 / p2);
    let b_block = (n2 / p2) * (n3 / p3);
    let c_block = (n1 / p1) * (n3 / p3);
    a_block % p3 == 0 && b_block % p1 == 0 && c_block % p2 == 0
}

#[test]
fn sweep_spans_all_regimes_and_both_boundaries() {
    let a = MatMulDims::new(96, 24, 12);
    // The regime thresholds of instance A are exactly the swept P values.
    assert_eq!(a.n1 / a.n2, 4, "m/n boundary sits at P = 4");
    assert_eq!((a.n1 * a.n2) / (a.n3 * a.n3), 16, "mn/k^2 boundary sits at P = 16");
    assert_eq!(a.n1 * a.n2 % (a.n3 * a.n3), 0);
    let mut interior_cases = Vec::new();
    let mut boundaries = 0;
    for pt in sweep() {
        match pt.interior {
            Some(case) => {
                assert_eq!(
                    pt.dims.sorted().classify(pt.p as f64),
                    case,
                    "{} ({} P={})",
                    pt.label,
                    pt.dims,
                    pt.p
                );
                interior_cases.push(case);
            }
            None => boundaries += 1,
        }
    }
    for want in [Case::OneD, Case::TwoD, Case::ThreeD] {
        assert!(interior_cases.contains(&want), "missing strict-interior {want} point");
    }
    assert_eq!(boundaries, 2, "one point on each regime boundary");
}

#[test]
fn grid3d_traffic_matches_eq3_prediction_per_rank_and_phase() {
    let seed = seed();
    for pt in sweep() {
        let (grid, grid_arr, cost_words) = chosen_grid(&pt);
        let dims = pt.dims;
        let pred = alg1_prediction(dims, grid_arr);
        assert!(
            (pred.total() - cost_words).abs() <= 1e-12 * cost_words.max(1.0),
            "{}: prediction total disagrees with the grid optimizer",
            pt.label
        );
        let cfg =
            Alg1Config { dims, grid, kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
        let out = World::new(pt.p, MachineParams::BANDWIDTH_ONLY).with_seed(seed).run(move |r| {
            let (a, b) = inputs(dims);
            alg1(r, &cfg, &a, &b)
        });
        let exact = phase_exact(dims, grid_arr);
        // Per-rank, per-phase: each fiber collective moves exactly the
        // eq. 3 term on evenly-chunked grids.
        if exact {
            for (r, v) in out.values.iter().enumerate() {
                for (phase, want) in v.phases.iter().zip(pred.phases()) {
                    assert_eq!(
                        phase.meter.duplex_words() as f64,
                        want,
                        "{} ({dims} P={} grid {grid_arr:?}): rank {r} phase '{}' \
                         [PMM_SEED={seed}]",
                        pt.label,
                        pt.p,
                        phase.label
                    );
                }
            }
        }
        // Aggregate (holds on every divisible grid, even with uneven
        // fiber chunks): total received words per phase are P times the
        // eq. 3 term.
        for (i, want) in pred.phases().iter().enumerate() {
            let got: u64 = out.values.iter().map(|v| v.phases[i].meter.words_recv).sum();
            assert!(
                (got as f64 - pt.p as f64 * want).abs() < 1e-6,
                "{} ({dims} P={}): phase {i} aggregate {got} vs {} [PMM_SEED={seed}]",
                pt.label,
                pt.p,
                pt.p as f64 * want
            );
        }
        if exact {
            let measured = out.critical_path_time();
            assert!(
                (measured - pred.total()).abs() <= 1e-9 * pred.total().max(1.0),
                "{} ({dims} P={}): measured {measured} vs eq3 {} [PMM_SEED={seed}]",
                pt.label,
                pt.p,
                pred.total()
            );
        }
    }
}

/// Run one algorithm at a sweep point: returns the assembled product and
/// the measured critical-path words (bandwidth-only machine).
fn run_algorithm(name: &str, pt: &Point, grid: Grid3, seed: u64) -> Option<(Matrix, f64)> {
    let dims = pt.dims;
    let p = pt.p;
    let bw = MachineParams::BANDWIDTH_ONLY;
    match name {
        "alg1/reduce-scatter" | "alg1/all-to-all" => {
            let assembly = if name.ends_with("all-to-all") {
                Assembly::AllToAllSum
            } else {
                Assembly::ReduceScatter
            };
            let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly };
            let out = World::new(p, bw).with_seed(seed).run(move |r| {
                let (a, b) = inputs(dims);
                alg1(r, &cfg, &a, &b)
            });
            let chunks: Vec<_> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
            Some((assemble_c(dims, grid, &chunks), out.critical_path_time()))
        }
        "alg1/streamed" => {
            let out = World::new(p, bw).with_seed(seed).run(move |r| {
                let (a, b) = inputs(dims);
                alg1_streamed(r, dims, grid, 2, Kernel::Naive, &a, &b)
            });
            let chunks: Vec<_> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
            Some((assemble_c(dims, grid, &chunks), out.critical_path_time()))
        }
        "cannon" => {
            let q = (p as f64).sqrt() as usize;
            if q * q != p {
                return None;
            }
            let cfg = CannonConfig { dims, q, kernel: Kernel::Naive };
            let out = World::new(p, bw).with_seed(seed).run(move |r| {
                let (a, b) = inputs(dims);
                cannon(r, &cfg, &a, &b)
            });
            let got = assemble_from_blocks(dims.n1 as usize, dims.n3 as usize, q, q, |i, j| {
                out.values[i * q + j].c_block.clone()
            });
            Some((got, out.critical_path_time()))
        }
        "summa" => {
            let (pr, pc) = match p {
                2 => (1, 2),
                4 => (2, 2),
                8 => (2, 4),
                16 => (4, 4),
                64 => (8, 8),
                _ => return None,
            };
            let cfg = SummaConfig { dims, pr, pc, kernel: Kernel::Naive };
            let out = World::new(p, bw).with_seed(seed).run(move |r| {
                let (a, b) = inputs(dims);
                summa(r, &cfg, &a, &b)
            });
            let got = assemble_from_blocks(dims.n1 as usize, dims.n3 as usize, pr, pc, |i, j| {
                out.values[i * pc + j].c_block.clone()
            });
            Some((got, out.critical_path_time()))
        }
        "2.5d" => {
            let (q, c) = match p {
                4 => (2, 1),
                8 => (2, 2),
                16 => (4, 1),
                64 => (4, 4),
                _ => return None,
            };
            let cfg = TwoFiveDConfig { dims, q, c, kernel: Kernel::Naive };
            let out = World::new(p, bw).with_seed(seed).run(move |r| {
                let (a, b) = inputs(dims);
                twofived(r, &cfg, &a, &b)
            });
            let got = assemble_from_blocks(dims.n1 as usize, dims.n3 as usize, q, q, |i, j| {
                out.values[i * q + j].c_block.clone().expect("layer 0 owns a C block")
            });
            Some((got, out.critical_path_time()))
        }
        "carma" => {
            if !p.is_power_of_two() {
                return None;
            }
            let out = World::new(p, bw).with_seed(seed).run(move |r| {
                let (a, b) = inputs(dims);
                let (sa, sb) = carma_shares(p, r.world_rank(), &a, &b);
                let comm = r.world_comm();
                carma(r, &comm, dims, Kernel::Naive, sa, sb)
            });
            Some((carma_assemble_c(dims, p, &out.values), out.critical_path_time()))
        }
        other => panic!("unknown algorithm {other}"),
    }
}

const ALGORITHMS: [&str; 7] =
    ["alg1/reduce-scatter", "alg1/all-to-all", "alg1/streamed", "cannon", "summa", "2.5d", "carma"];

#[test]
fn all_algorithms_agree_bitwise_and_respect_theorem3() {
    let seed = seed();
    for pt in sweep() {
        let (grid, grid_arr, _) = chosen_grid(&pt);
        let want = reference(pt.dims);
        let report = lower_bound(pt.dims, pt.p as f64);
        let mut ran = 0;
        for name in ALGORITHMS {
            let Some((got, measured)) = run_algorithm(name, &pt, grid, seed) else {
                continue;
            };
            ran += 1;
            // (a) bitwise agreement: integer inputs make f64 arithmetic
            // exact, so every schedule and summation order must produce
            // the same bits.
            assert_eq!(
                got, want,
                "{name} at {} ({} P={}) diverges from the dense reference [PMM_SEED={seed}]",
                pt.label, pt.dims, pt.p
            );
            // (c) the Theorem 3 floor.
            assert!(
                measured >= report.bound - 1e-9 * report.bound.max(1.0),
                "{name} at {} ({} P={}): measured {measured} beats the bound {} \
                 [PMM_SEED={seed}]",
                pt.label,
                pt.dims,
                pt.p,
                report.bound
            );
        }
        assert!(ran >= 4, "{}: only {ran} algorithms were runnable", pt.label);
        // Tight points: Algorithm 1 on the §5.2 grid attains the bound
        // exactly — the paper's constants 1/2/3, not just the Θ-class.
        if pt.tight {
            let (_, t) = run_algorithm("alg1/reduce-scatter", &pt, grid, seed)
                .expect("alg1 runs at every point");
            assert!(
                (t - report.bound).abs() <= 1e-9 * report.bound.max(1.0),
                "{} ({} P={} grid {grid_arr:?}): measured {t} must equal the bound {} \
                 [PMM_SEED={seed}]",
                pt.label,
                pt.dims,
                pt.p,
                report.bound
            );
        }
    }
}
