//! Kernel-tier invariance: the local GEMM kernel is a *compute* choice,
//! so switching tiers (`Alg1Config::kernel` / `PMM_KERNEL`) must change
//! nothing observable about a distributed run except wall-clock speed:
//!
//! 1. **outputs** — every tier produces the bitwise-identical product
//!    chunks (all tiers accumulate each C entry over k in increasing
//!    order through one shared multiply-add, so no reassociation);
//! 2. **meters** — words/messages/flops charged per rank are identical
//!    (the algorithms meter `h1·h2·h3` multiply-adds analytically, never
//!    "what the kernel did");
//! 3. **schedule traces** — the seeded rank interleaving is byte-stable
//!    across tiers, so `PMM_SEED` repro lines stay valid whatever kernel
//!    a host selects;
//! 4. **structured traces** — per-phase word attribution and the trace
//!    critical path (simulated time) are tier-independent.

use pmm::prelude::*;

fn inputs(dims: MatMulDims) -> (Matrix, Matrix) {
    (
        random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 101),
        random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 202),
    )
}

/// Run Algorithm 1 on a 2×3×2 grid with the given kernel, seeded and
/// traced, returning the world result.
fn run_with(kernel: Kernel) -> WorldResult<Alg1Output> {
    let dims = MatMulDims::new(24, 12, 18);
    let cfg =
        Alg1Config { dims, grid: Grid3::new(2, 3, 2), kernel, assembly: Assembly::ReduceScatter };
    World::new(12, MachineParams::BANDWIDTH_ONLY).with_seed(0xBEEF).with_trace(true).run(
        move |rank| {
            let (a, b) = inputs(dims);
            alg1(rank, &cfg, &a, &b)
        },
    )
}

#[test]
fn kernel_choice_never_alters_outputs_meters_or_traces() {
    let baseline = run_with(Kernel::Naive);
    let base_trace = baseline.schedule_trace.as_ref().expect("seeded run records a trace");
    let base_tracer = baseline.tracer().expect("tracing was enabled");
    let base_attr = base_tracer.phase_totals();
    let base_cp = base_tracer.critical_path();
    for kernel in Kernel::ALL {
        let run = run_with(kernel);
        // 1. Bitwise-identical product chunks.
        assert_eq!(
            baseline.values, run.values,
            "tier {kernel} changed the computed product chunks"
        );
        // 2. Identical meters on every rank.
        for (r, (base, other)) in baseline.reports.iter().zip(&run.reports).enumerate() {
            assert_eq!(base.meter, other.meter, "tier {kernel} changed rank {r}'s meter");
        }
        // 3. Byte-identical schedule trace (same seed, same interleaving).
        let trace = run.schedule_trace.as_ref().expect("seeded run records a trace");
        assert_eq!(
            base_trace.render(),
            trace.render(),
            "tier {kernel} changed the scheduled interleaving"
        );
        // 4. Identical per-phase attribution and critical path.
        let tracer = run.tracer().expect("tracing was enabled");
        let attr = tracer.phase_totals();
        assert_eq!(base_attr.len(), attr.len(), "tier {kernel} changed the phase structure");
        for (b, o) in base_attr.iter().zip(&attr) {
            assert_eq!(
                (&b.label, &b.sent, &b.recv),
                (&o.label, &o.sent, &o.recv),
                "tier {kernel} changed phase word attribution"
            );
        }
        assert_eq!(
            base_cp.total,
            tracer.critical_path().total,
            "tier {kernel} changed the simulated critical path"
        );
        assert_eq!(
            base_tracer.chrome_json(),
            tracer.chrome_json(),
            "tier {kernel} changed the chrome trace"
        );
    }
}

#[test]
fn env_selected_kernel_is_output_invariant_for_the_cli_reference() {
    // The CLI's reference product follows PMM_KERNEL via
    // `kernel_from_env`; whatever it resolves to, the reference equals
    // the pinned naive oracle bitwise.
    let dims = MatMulDims::new(24, 12, 18);
    let (a, b) = inputs(dims);
    let oracle = gemm(&a, &b, Kernel::Naive);
    for kernel in Kernel::ALL {
        assert_eq!(oracle, gemm(&a, &b, kernel), "tier {kernel} diverged from the oracle");
    }
}
