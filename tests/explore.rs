//! Schedule-space exploration gate (`cargo xtask dpor` entry point).
//!
//! Pins the DPOR-lite explorer against a fixed workload matrix:
//!
//! * **Exhaustiveness certificates** — for two small collective
//!   workloads the exhaustive walk visits *every* interleaving of the
//!   deterministic scheduler and the schedule count is pinned, so any
//!   change to the scheduler's pick-point structure is caught here.
//! * **Pruning soundness** — the sleep-set walk must reach exactly the
//!   same set of distinct outcomes as the exhaustive walk, while
//!   visiting fewer schedules.
//! * **Schedule independence of Algorithm 1** — on a budgeted frontier
//!   of a 4-rank grid run, every explored schedule must produce bitwise
//!   identical results/meters and per-phase traffic matching the eq. 3
//!   prediction (`pmm_model::alg1_prediction`).
//! * **Generator soak** — synthesized valid-and-invalid rank programs
//!   are run against the verifier; the intent oracle tolerates zero
//!   false positives and zero false negatives. `PMM_EXPLORE_PROGRAMS`
//!   scales the batch (CI runs ≥ 1000).
//!
//! Tests print `DPOR: key=value ...` metric lines that `cargo xtask
//! dpor` collects into `BENCH_explore.json`.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use pmm::explore::{
    generate, soak, verdict, world_for, GenOutcome, Intent, ScheduleOutcome, Strategy,
};
use pmm::prelude::*;
use pmm::simnet::CollectiveOp;

/// Per-CI-run program batch for the generator soak; `cargo xtask dpor`
/// raises it to ≥ 1000.
const DEFAULT_SOAK_PROGRAMS: u64 = 300;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// A stable digest of one explored schedule's outcome: per-rank values,
/// traffic meters, clocks, and memory peaks (or the failure report).
fn fingerprint<T: std::fmt::Debug>(outcome: ScheduleOutcome<'_, T>) -> String {
    match outcome {
        Ok(out) => {
            let reports: Vec<String> = out
                .reports
                .iter()
                .map(|r| format!("{:?}|{}|{}", r.meter, r.time, r.peak_mem_words))
                .collect();
            format!("ok values={:?} reports={reports:?}", out.values)
        }
        Err(fail) => format!("err {}", fail.report),
    }
}

/// Explore with both strategies, asserting the sleep-set walk covers
/// exactly the distinct outcomes of the exhaustive one. Returns the two
/// reports.
fn certify<T, F>(label: &str, world: &World, program: F) -> (ExploreReport, ExploreReport)
where
    T: Send + std::fmt::Debug,
    F: Fn(&mut Rank) -> T + Send + Sync + Copy,
{
    let mut exhaustive_fps = BTreeSet::new();
    let t0 = Instant::now();
    let full = explore_outcomes(world, program, &ExploreConfig::exhaustive(), |_, outcome| {
        exhaustive_fps.insert(fingerprint(outcome));
        Ok(())
    })
    .unwrap_or_else(|f| panic!("{label} exhaustive walk failed: {f}"));
    let full_secs = t0.elapsed().as_secs_f64();
    assert!(full.complete, "{label}: exhaustive walk must drain the frontier");
    assert_eq!(full.pruned, 0, "{label}: exhaustive walk must not prune");
    assert_eq!(full.runs, full.schedules, "{label}: every exhaustive run is a schedule");

    let mut sleep_fps = BTreeSet::new();
    let t1 = Instant::now();
    let pruned = explore_outcomes(world, program, &ExploreConfig::sleep_sets(), |_, outcome| {
        sleep_fps.insert(fingerprint(outcome));
        Ok(())
    })
    .unwrap_or_else(|f| panic!("{label} sleep-set walk failed: {f}"));
    let pruned_secs = t1.elapsed().as_secs_f64();
    assert!(pruned.complete, "{label}: sleep-set walk must drain the frontier");
    assert_eq!(
        sleep_fps, exhaustive_fps,
        "{label}: sleep-set pruning must cover every distinct outcome"
    );
    assert!(
        pruned.schedules <= full.schedules,
        "{label}: pruning may not enlarge the schedule count"
    );

    println!(
        "DPOR: workload={label} strategy=exhaustive schedules={} runs={} pruned=0 \
         complete=true secs={full_secs:.3}",
        full.schedules, full.runs
    );
    println!(
        "DPOR: workload={label} strategy=sleep-sets schedules={} runs={} pruned={} \
         complete=true secs={pruned_secs:.3}",
        pruned.schedules, pruned.runs, pruned.pruned
    );
    (full, pruned)
}

#[test]
fn exhaustive_certificate_pins_the_gather3_schedule_space() {
    let world = World::new(3, MachineParams::BANDWIDTH_ONLY).without_watchdog();
    let gather = |rank: &mut Rank| {
        let comm = rank.world_comm();
        let me = rank.world_rank();
        if me == 0 {
            (1..comm.size()).map(|from| rank.recv(&comm, from).payload[0]).sum()
        } else {
            rank.send(&comm, 0, &[me as f64]);
            0.0
        }
    };
    let (full, pruned) = certify("gather3", &world, gather);
    // The certificate: a 3-rank root gather has exactly 72 maximal
    // interleavings under the cooperative scheduler's pick points.
    assert_eq!(full.schedules, 72, "gather3 interleaving certificate drifted");
    assert!(pruned.pruned > 0, "gather3 must give sleep sets something to prune");
}

#[test]
fn exhaustive_certificate_pins_the_barrier4_schedule_space() {
    // The pinned 4-rank collective workload of `cargo xtask dpor`: a
    // registered barrier collective followed by the barrier itself.
    let world = World::new(4, MachineParams::BANDWIDTH_ONLY).without_watchdog();
    let barrier = |rank: &mut Rank| {
        let comm = rank.world_comm();
        rank.collective_begin(&comm, CollectiveOp::Barrier, 0);
        rank.hard_sync();
        rank.world_rank()
    };
    let (full, pruned) = certify("barrier4", &world, barrier);
    // The certificate: all 15120 interleavings explored, every one
    // bitwise equivalent (the fingerprint sets collapse to size 1 via
    // `certify`'s cross-check, and the counts below pin the space).
    assert_eq!(full.schedules, 15120, "barrier4 interleaving certificate drifted");
    assert!(
        pruned.schedules < full.schedules / 10,
        "sleep sets should prune the barrier4 space by at least 10x \
         (got {} of {})",
        pruned.schedules,
        full.schedules
    );
}

#[test]
fn alg1_traffic_matches_eq3_on_every_explored_schedule() {
    // A real Algorithm 1 run on a 4-rank [2,2,1] grid, explored on a
    // budgeted frontier: every schedule must reproduce the same values
    // and meters, and aggregate per-phase traffic must match the eq. 3
    // prediction from `pmm_model::alg1_prediction`.
    let dims = MatMulDims::new(4, 4, 2);
    let grid = [2usize, 2, 1];
    let pred = alg1_prediction(dims, grid);
    let p = 4usize;
    let cfg = Alg1Config {
        dims,
        grid: Grid3::from_dims(grid),
        kernel: Kernel::Naive,
        assembly: Assembly::ReduceScatter,
    };
    let world = World::new(p, MachineParams::BANDWIDTH_ONLY).without_watchdog();
    let budget = Duration::from_secs(env_u64("PMM_EXPLORE_BUDGET_SECS", 60).max(10) / 2);
    let t0 = Instant::now();
    let report = explore_checked(
        &world,
        move |rank| {
            let a = random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 11);
            let b = random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 22);
            let out = alg1(rank, &cfg, &a, &b);
            // Digest: C chunk bits + per-phase traffic (bitwise
            // comparable across schedules).
            let c_bits: Vec<u64> = out.c_chunk.iter().map(|x| x.to_bits()).collect();
            let phase_words: Vec<(u64, u64)> =
                out.phases.iter().map(|ph| (ph.meter.words_recv, ph.meter.words_sent)).collect();
            (c_bits, phase_words)
        },
        &ExploreConfig::budgeted(48, budget),
        |out| {
            for (i, want) in pred.phases().iter().enumerate() {
                let got: u64 = out.values.iter().map(|v| v.1[i].0).sum();
                let expect = p as f64 * want;
                if (got as f64 - expect).abs() > 1e-6 {
                    return Err(format!(
                        "phase {i} aggregate words_recv {got} vs eq. 3 prediction {expect}"
                    ));
                }
            }
            Ok(())
        },
    )
    .unwrap_or_else(|f| panic!("alg1 exploration failed: {f}"));
    assert!(report.schedules >= 1);
    assert!(
        report.complete || report.schedules == 48,
        "budgeted walk stops at the cap or drains: {report:?}"
    );
    println!(
        "DPOR: workload=alg1-2x2x1 strategy=budgeted schedules={} runs={} pruned={} \
         complete={} secs={:.3}",
        report.schedules,
        report.runs,
        report.pruned,
        report.complete,
        t0.elapsed().as_secs_f64()
    );
}

#[test]
fn budget_caps_the_frontier_sweep() {
    let world = World::new(4, MachineParams::BANDWIDTH_ONLY).without_watchdog();
    let report = explore(
        &world,
        |rank| {
            rank.hard_sync();
            rank.world_rank()
        },
        &ExploreConfig {
            strategy: Strategy::Exhaustive,
            max_schedules: Some(25),
            wall_clock: None,
        },
    )
    .expect("capped walk must not fail");
    assert_eq!(report.schedules, 25, "the schedule budget is a hard cap");
    assert!(!report.complete, "a capped walk must not claim completeness");
    assert!(report.frontier > 0, "a capped walk must report the abandoned frontier");
}

#[test]
fn a_failing_schedule_names_its_choice_prefix() {
    let world = World::new(2, MachineParams::BANDWIDTH_ONLY).without_watchdog();
    let mut seen = 0u64;
    let failure = explore_outcomes(
        &world,
        |rank| {
            rank.hard_sync();
            rank.world_rank()
        },
        &ExploreConfig::exhaustive(),
        |_, _| {
            seen += 1;
            if seen == 2 {
                Err("synthetic oracle failure".to_string())
            } else {
                Ok(())
            }
        },
    )
    .expect_err("the failing oracle must surface");
    assert!(!failure.prefix.is_empty(), "failure must carry the full choice sequence");
    let shown = failure.to_string();
    assert!(shown.contains("synthetic oracle failure"), "{shown}");
    assert!(shown.contains("PMM_SCHEDULE=prefix:"), "repro must be env-var form: {shown}");
}

#[test]
fn deadlocking_programs_are_explored_not_hung() {
    // Both ranks receive first: every schedule deadlocks. The explorer
    // must still walk the whole (tiny) tree, handing each deadlock to
    // the callback as a captured failure rather than hanging or
    // panicking.
    let world = World::new(2, MachineParams::BANDWIDTH_ONLY).without_watchdog();
    let mut outcomes = 0u64;
    let report = explore_outcomes(
        &world,
        |rank| {
            let comm = rank.world_comm();
            let peer = 1 - rank.world_rank();
            let got = rank.recv(&comm, peer).payload[0];
            rank.send(&comm, peer, &[got]);
        },
        &ExploreConfig::exhaustive(),
        |prefix, outcome| {
            outcomes += 1;
            let fail = outcome.expect_err("mutual recv must deadlock on every schedule");
            if !fail.report.contains("deadlock detected") {
                return Err(format!("prefix {prefix:?}: unexpected failure: {}", fail.report));
            }
            Ok(())
        },
    )
    .expect("deadlock exploration must complete");
    assert!(report.complete);
    assert_eq!(report.schedules, outcomes);
    assert!(outcomes >= 1);
}

#[test]
fn generator_soak_has_zero_false_reports() {
    let programs = env_u64("PMM_EXPLORE_PROGRAMS", DEFAULT_SOAK_PROGRAMS);
    let seed0 = seed_from_env(0xD15C_0000);
    let t0 = Instant::now();
    let stats = soak(seed0, programs).unwrap_or_else(|e| panic!("soak oracle violation: {e}"));
    assert_eq!(stats.programs, programs);
    // The batch must actually exercise every defect class.
    for (class, n) in [
        ("valid", stats.valid),
        ("mismatch", stats.mismatch),
        ("deadlock", stats.deadlock),
        ("disorder", stats.disorder),
        ("undrained", stats.undrained),
    ] {
        assert!(n > 0, "soak batch of {programs} never produced a {class} program");
    }
    println!(
        "DPOR: workload=soak programs={} valid={} mismatch={} deadlock={} disorder={} \
         undrained={} secs={:.3}",
        stats.programs,
        stats.valid,
        stats.mismatch,
        stats.deadlock,
        stats.disorder,
        stats.undrained,
        t0.elapsed().as_secs_f64()
    );
}

// ---------------------------------------------------------------------------
// Event-loop engine: the certificates carry across engines
// ---------------------------------------------------------------------------

/// Async analogue of [`certify`] running every replay on
/// [`Engine::EventLoop`]: the choice tree is a property of the
/// deterministic scheduler, not of the execution backend, so the
/// exhaustive schedule counts pinned on the thread engine must
/// reproduce exactly on the event loop.
fn certify_event<T, F>(label: &str, world: &World, program: F) -> (ExploreReport, ExploreReport)
where
    T: Send + std::fmt::Debug,
    F: for<'a> Fn(&'a mut Rank) -> LocalBoxFuture<'a, T> + Send + Sync + Copy,
{
    let world = world.clone().with_engine(Engine::EventLoop);
    let mut exhaustive_fps = BTreeSet::new();
    let full =
        explore_outcomes_async(&world, program, &ExploreConfig::exhaustive(), |_, outcome| {
            exhaustive_fps.insert(fingerprint(outcome));
            Ok(())
        })
        .unwrap_or_else(|f| panic!("{label} event-loop exhaustive walk failed: {f}"));
    assert!(full.complete, "{label}: event-loop exhaustive walk must drain the frontier");
    assert_eq!(full.pruned, 0, "{label}: exhaustive walk must not prune");

    let mut sleep_fps = BTreeSet::new();
    let pruned =
        explore_outcomes_async(&world, program, &ExploreConfig::sleep_sets(), |_, outcome| {
            sleep_fps.insert(fingerprint(outcome));
            Ok(())
        })
        .unwrap_or_else(|f| panic!("{label} event-loop sleep-set walk failed: {f}"));
    assert!(pruned.complete, "{label}: event-loop sleep-set walk must drain the frontier");
    assert_eq!(
        sleep_fps, exhaustive_fps,
        "{label}: sleep-set pruning must cover every distinct outcome on the event loop"
    );
    (full, pruned)
}

/// The gather3 workload as an async rank program.
fn gather3_a(rank: &mut Rank) -> LocalBoxFuture<'_, f64> {
    Box::pin(async move {
        let comm = rank.world_comm();
        let me = rank.world_rank();
        if me == 0 {
            let mut sum = 0.0;
            for from in 1..comm.size() {
                sum += rank.recv_a(&comm, from).await.payload[0];
            }
            sum
        } else {
            rank.send_a(&comm, 0, &[me as f64]).await;
            0.0
        }
    })
}

/// The barrier4 workload as an async rank program.
fn barrier4_a(rank: &mut Rank) -> LocalBoxFuture<'_, usize> {
    Box::pin(async move {
        let comm = rank.world_comm();
        rank.collective_begin_a(&comm, CollectiveOp::Barrier, 0).await;
        rank.hard_sync_a().await;
        rank.world_rank()
    })
}

/// A 3-rank exchange ring as an async rank program.
fn ring3_a(rank: &mut Rank) -> LocalBoxFuture<'_, f64> {
    Box::pin(async move {
        let comm = rank.world_comm();
        let me = rank.world_rank();
        let n = comm.size();
        let msg = rank.exchange_a(&comm, (me + 1) % n, (me + n - 1) % n, &[me as f64]).await;
        msg.payload[0]
    })
}

#[test]
fn event_loop_reproduces_the_gather3_certificate() {
    // Same workload as `exhaustive_certificate_pins_the_gather3_schedule_space`,
    // expressed as an async rank program and explored on the event-loop
    // engine: the 72-interleaving certificate must not move.
    let world = World::new(3, MachineParams::BANDWIDTH_ONLY).without_watchdog();
    let (full, pruned) = certify_event("gather3/event", &world, gather3_a);
    assert_eq!(full.schedules, 72, "gather3 certificate drifted on the event-loop engine");
    assert!(pruned.pruned > 0, "gather3 must give sleep sets something to prune");
}

#[test]
fn event_loop_reproduces_the_barrier4_certificate() {
    // The 4-rank barrier workload: all 15120 interleavings, replayed as
    // resumable continuations instead of parked threads.
    let world = World::new(4, MachineParams::BANDWIDTH_ONLY).without_watchdog();
    let (full, pruned) = certify_event("barrier4/event", &world, barrier4_a);
    assert_eq!(full.schedules, 15120, "barrier4 certificate drifted on the event-loop engine");
    assert!(
        pruned.schedules < full.schedules / 10,
        "sleep sets should prune the barrier4 space by at least 10x on the event loop \
         (got {} of {})",
        pruned.schedules,
        full.schedules
    );
}

#[test]
fn pmm_schedule_prefix_replays_on_the_event_loop() {
    // A `PMM_SCHEDULE=prefix:...` recipe (parsed through the same
    // `FromStr` that `schedule_from_env` uses) must replay an explored
    // branch exactly on the event-loop engine: same values, same
    // meters, same recorded choice stream.
    let world = World::new(3, MachineParams::BANDWIDTH_ONLY)
        .without_watchdog()
        .with_engine(Engine::EventLoop);
    // Pick one explored schedule and remember its full choice prefix.
    let mut recipe: Option<(Vec<usize>, String)> = None;
    explore_outcomes_async(&world, ring3_a, &ExploreConfig::exhaustive(), |prefix, outcome| {
        if recipe.is_none() && !prefix.is_empty() {
            recipe = Some((prefix.to_vec(), fingerprint(outcome)));
        }
        Ok(())
    })
    .expect("exhaustive walk of the 3-rank exchange must succeed");
    let (prefix, want_fp) = recipe.expect("at least one schedule has a non-empty prefix");

    // Round-trip the prefix through the PMM_SCHEDULE string form.
    let env_value = format!("{}", Schedule::Prefix(prefix.clone()));
    let parsed: Schedule = env_value.parse().expect("rendered schedule must parse back");
    assert_eq!(parsed, Schedule::Prefix(prefix.clone()), "PMM_SCHEDULE round-trip");

    let replay = world
        .clone()
        .with_schedule(parsed)
        .try_run_async(ring3_a)
        .expect("prefix replay must succeed");
    assert_eq!(fingerprint(Ok(&replay)), want_fp, "prefix replay diverged from the explored run");
    let picks: Vec<usize> = replay
        .choice_points
        .expect("deterministic run records picks")
        .iter()
        .map(|c| c.chosen)
        .take(prefix.len())
        .collect();
    assert_eq!(picks, prefix, "the replayed pick stream must start with the prefix");
}

#[test]
fn explorer_cross_checks_generated_programs() {
    // Close the loop between the generator and the explorer: for
    // fault-free generated programs on small worlds, sweep a budgeted
    // frontier of schedules and hold the verifier to the intent oracle
    // on *every* explored schedule, not just the seeded one.
    let mut checked_valid = 0u32;
    let mut checked_defective = 0u32;
    let mut seed = 0x5EED_BA5E_u64;
    while checked_valid < 2 || checked_defective < 3 {
        seed = seed.wrapping_add(1);
        let prog = generate(seed);
        if prog.world_size > 4 || prog.faults.is_some() {
            continue;
        }
        let wants_valid = prog.intent == Intent::Valid;
        if wants_valid && checked_valid >= 2 {
            continue;
        }
        if !wants_valid && checked_defective >= 3 {
            continue;
        }
        let world = world_for(&prog);
        let cfg = ExploreConfig::budgeted(20, Duration::from_secs(20));
        let report = explore_outcomes(
            &world,
            |rank| pmm::explore::interpret(&prog, rank),
            &cfg,
            |prefix, outcome| {
                let gen_outcome = GenOutcome {
                    flagged: match outcome {
                        Ok(_) => None,
                        Err(fail) => Some(fail.report.clone()),
                    },
                };
                verdict(&prog, &gen_outcome).map_err(|e| {
                    format!("generated seed {seed} at schedule prefix {prefix:?}: {e}")
                })
            },
        )
        .unwrap_or_else(|f| panic!("exploring generated program seed {seed} failed: {f}"));
        assert!(report.schedules >= 1);
        if wants_valid {
            checked_valid += 1;
        } else {
            checked_defective += 1;
        }
    }
}
