//! Chaos certification: every executable algorithm under multi-fault
//! plans, on both engines, with model-exact recovery goodput.
//!
//! The tier-1 cell (`chaos_cert_all_six_algorithms_on_both_engines`)
//! arms one pinned plan — a direct kill, a cascading kill, a healing
//! partition, a straggler storm, and background drops — against all six
//! algorithms through the generic [`run_recoverable`] wrapper on both
//! `Engine::Threads` and `Engine::EventLoop`, and asserts
//!
//! * the product reassembled from the survivors' shares is **bitwise**
//!   equal to the serial reference,
//! * the final attempt's checkpoint/redistribution goodput and run
//!   goodput each equal `pmm_model::recovery_prediction` **exactly**
//!   (to the word, across survivors),
//! * whole-run goodput stays under the prediction's upper bound.
//!
//! The `#[ignore]`d release cells extend the certification to a
//! (algorithm × Theorem-3 regime × plan class × engine) soak and to a
//! fault-armed Algorithm 1 run at P = 10^4 + 1 on the event-loop
//! engine (one kill plus a healing partition, recovering onto the
//! integral §5.2 grid `[25, 20, 20]` of the 10^4 survivors). Each cell
//! prints a `CHAOS: key=value` line; `cargo xtask chaos-soak` runs the
//! whole file in release mode and collects those lines into
//! `BENCH_chaos.json`, gating on a 100% recovery success rate.

use std::sync::Arc;
use std::time::Instant;

use pmm::prelude::*;

fn inputs(dims: MatMulDims) -> (Matrix, Matrix) {
    (
        random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 31),
        random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 32),
    )
}

fn reference(dims: MatMulDims) -> Matrix {
    let (a, b) = inputs(dims);
    gemm(&a, &b, Kernel::Naive)
}

fn engine_label(engine: Engine) -> &'static str {
    match engine {
        Engine::Threads => "threads",
        Engine::EventLoop => "event-loop",
    }
}

fn all_specs() -> Vec<(&'static str, Recoverable)> {
    vec![
        ("alg1", Recoverable::Alg1 { kernel: Kernel::Naive, assembly: Assembly::ReduceScatter }),
        ("alg1_streamed", Recoverable::Alg1Streamed { kernel: Kernel::Naive, slabs: 2 }),
        ("summa", Recoverable::Summa { kernel: Kernel::Naive }),
        ("cannon", Recoverable::Cannon { kernel: Kernel::Naive }),
        ("twofived", Recoverable::TwoFiveD { kernel: Kernel::Naive }),
        ("carma", Recoverable::Carma { kernel: Kernel::Naive }),
    ]
}

/// Run `spec` under recovery on a faulty world. Inputs are generated
/// once and `Arc`-shared across rank programs (required at large `P`).
fn run_chaos(
    spec: &Recoverable,
    dims: MatMulDims,
    p: usize,
    sched_seed: u64,
    plan: FaultPlan,
    engine: Engine,
    at_scale: bool,
) -> WorldResult<Result<Recovered, RankFailed>> {
    let (a, b) = inputs(dims);
    let (a, b) = (Arc::new(a), Arc::new(b));
    let spec = spec.clone();
    let mut world = World::new(p, MachineParams::BANDWIDTH_ONLY)
        .with_seed(sched_seed)
        .with_faults(plan)
        .with_engine(engine);
    if at_scale {
        // Schedule recording snapshots the runnable set per pick (O(P)
        // per event) — off at scale; targeted wakeup keeps the
        // runnable-set bookkeeping proportional to the active ranks.
        world = world.with_schedule_recording(false).with_targeted_wakeup(true).without_watchdog();
    }
    world.run_async(move |rank| {
        let spec = spec.clone();
        let (a, b) = (a.clone(), b.clone());
        Box::pin(async move { run_recoverable_a(rank, &spec, dims, &a, &b).await })
    })
}

/// Certify one chaos cell: survivors agree, the reassembled product is
/// bitwise-correct, the final attempt's goodput matches
/// `recovery_prediction` exactly (`exact_run` additionally pins the run
/// goodput, which for Algorithm 1 requires the recovery grid to divide
/// the dimensions), and the whole run respects the model upper bound.
/// Returns (attempts, survivor count, final plan).
fn certify_cell(
    label: &str,
    out: &WorldResult<Result<Recovered, RankFailed>>,
    dims: MatMulDims,
    c_ref: &Matrix,
    exact_run: bool,
) -> (usize, usize, AlgPlan) {
    let ok = out
        .values
        .iter()
        .find_map(|v| v.as_ref().ok())
        .unwrap_or_else(|| panic!("{label}: no survivor succeeded"));
    let survivors = ok.survivors.clone();
    let plan = ok.plan.clone();
    for &w in &survivors {
        let v = out.values[w].as_ref().unwrap_or_else(|e| panic!("{label}: survivor {w}: {e}"));
        assert_eq!(v.survivors, survivors, "{label}: survivors disagree");
        assert_eq!(v.plan, plan, "{label}: layouts disagree");
    }
    let shares: Vec<CShare> = survivors
        .iter()
        .map(|&w| out.values[w].as_ref().expect("survivor").share.clone())
        .collect();
    let c = assemble_recovered(dims, &plan, &shares);
    assert_eq!(&c, c_ref, "{label}: recovered product must be bitwise-correct");

    let pred = recovery_prediction(dims, &ok.attempt_plans, &ok.attempt_survivors);
    let alive: Vec<&Recovered> = out.values.iter().filter_map(|v| v.as_ref().ok()).collect();
    let restore: u64 = alive.iter().map(|v| v.restore_meter.words_sent).sum();
    assert_eq!(
        restore as f64,
        pred.last().restore_words_total,
        "{label}: checkpoint/redistribution goodput must match the model exactly"
    );
    if exact_run {
        if let AlgPlan::Alg1 { grid } | AlgPlan::Alg1Streamed { grid, .. } = plan {
            assert!(dims.divisible_by(grid), "{label}: exact cell needs a divisible grid");
        }
        let run: u64 = alive.iter().map(|v| v.run_meter.words_sent).sum();
        assert_eq!(
            run as f64,
            pred.last().run_words_total,
            "{label}: final-attempt run goodput must match the model exactly"
        );
    }
    let whole: f64 = out.reports.iter().map(|r| r.meter.words_sent as f64).sum();
    assert!(
        whole <= pred.total_upper_bound_words() + 1e-9,
        "{label}: whole-run goodput {whole} exceeds the model upper bound {}",
        pred.total_upper_bound_words()
    );
    (ok.attempts(), survivors.len(), plan)
}

/// The pinned tier-1 multi-fault plan: a kill, a cascade armed on the
/// first death, a healing partition around ranks {0, 1}, a straggler
/// storm, and background message faults.
fn tier1_plan() -> FaultPlan {
    FaultPlan::none()
        .with_seed(0xC4A0_5CE7)
        .with_drop(0.05)
        .with_duplicate(0.02)
        .with_kill(2, 3)
        .with_cascade(7, 1)
        .with_partition(vec![0, 1], 2..30, 2)
        .with_storm(0.25, 2.0)
}

#[test]
fn chaos_cert_all_six_algorithms_on_both_engines() {
    // P = 10 with two deaths → 8 survivors: best_grid gives the
    // divisible [2, 2, 2] (exact eq. (3) run goodput), SUMMA refactors
    // to 2 × 4, Cannon to a 2 × 2 torus with 4 idle survivors, 2.5D to
    // q = 2, c = 2 (exercising the layered reassembly), CARMA keeps all
    // 8 (power of two).
    let dims = MatMulDims::new(24, 24, 24);
    let c_ref = reference(dims);
    for (alg, spec) in all_specs() {
        for engine in [Engine::Threads, Engine::EventLoop] {
            let label = format!("{alg}/{}", engine_label(engine));
            let t0 = Instant::now();
            let out = run_chaos(&spec, dims, 10, 0xC0DE, tier1_plan(), engine, false);
            let killed = out.values[2].as_ref().expect_err("rank 2 was killed");
            assert!(killed.detail.contains("kill=2@3"), "{label}: {}", killed.detail);
            let cascaded = out.values[7].as_ref().expect_err("rank 7 cascaded");
            assert!(cascaded.detail.contains("cascade=7@1"), "{label}: {}", cascaded.detail);
            let (attempts, nsurv, plan) = certify_cell(&label, &out, dims, &c_ref, true);
            assert_eq!(nsurv, 8, "{label}");
            assert!(attempts >= 2, "{label}: the kills force at least one re-plan");
            println!(
                "CHAOS: cell=cert algorithm={alg} engine={} p=10 survivors={nsurv} \
                 attempts={attempts} layout={plan} recovered=1 secs={:.3}",
                engine_label(engine),
                t0.elapsed().as_secs_f64()
            );
        }
    }
}

#[test]
fn chaos_cert_replays_byte_identically() {
    // Same (program, seed, plan) triple twice: every per-rank Result,
    // meter, and clock must reproduce — multi-fault plans are pure
    // hashes, so the whole chaos run is a deterministic function of the
    // triple.
    let dims = MatMulDims::new(24, 24, 24);
    let spec = Recoverable::Alg1 { kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
    let run = || run_chaos(&spec, dims, 10, 0xC0DE, tier1_plan(), Engine::EventLoop, false);
    let (first, again) = (run(), run());
    assert_eq!(first.values, again.values, "per-rank results must replay byte-identically");
    for (w, (x, y)) in first.reports.iter().zip(&again.reports).enumerate() {
        assert_eq!(x.meter, y.meter, "rank {w} meter must replay exactly");
        assert_eq!(x.time, y.time, "rank {w} clock must replay exactly");
    }
}

/// One soak plan class: a named [`FaultPlan`] shape scaled to `p` ranks.
fn plan_classes(p: usize) -> Vec<(&'static str, FaultPlan)> {
    let seed = 0x50AB ^ p as u64;
    vec![
        ("kill", FaultPlan::none().with_seed(seed).with_drop(0.04).with_kill(1, 4)),
        ("cascade", FaultPlan::none().with_seed(seed).with_kill(1, 4).with_cascade(p - 1, 1)),
        (
            "partition",
            FaultPlan::none().with_seed(seed).with_drop(0.04).with_partition(vec![0, 1], 0..24, 2),
        ),
        (
            "storm",
            FaultPlan::none().with_seed(seed).with_drop(0.03).with_kill(1, 5).with_storm(0.5, 4.0),
        ),
    ]
}

/// The full soak: algorithm × Theorem-3 regime × plan class × engine on
/// the conformance instance `(96, 24, 12)` (P = 3 in the 1D case, 16 in
/// 2D, 64 in 3D). Wall-clock capped by `PMM_CHAOS_BUDGET_SECS`
/// (default 240): cells past the budget are skipped and counted in the
/// summary line.
#[test]
#[ignore = "release soak; run via cargo xtask chaos-soak"]
fn chaos_soak_algorithms_by_regime_by_plan_class() {
    let budget = std::env::var("PMM_CHAOS_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(240);
    let budget = std::time::Duration::from_secs(budget);
    let dims = MatMulDims::new(96, 24, 12);
    let c_ref = reference(dims);
    let start = Instant::now();
    let (mut ran, mut skipped) = (0u32, 0u32);
    for (alg, spec) in all_specs() {
        for p in [3usize, 16, 64] {
            for (class, plan) in plan_classes(p) {
                for engine in [Engine::Threads, Engine::EventLoop] {
                    if start.elapsed() >= budget {
                        skipped += 1;
                        continue;
                    }
                    let label = format!("{alg}/p{p}/{class}/{}", engine_label(engine));
                    let t0 = Instant::now();
                    let out = run_chaos(&spec, dims, p, 0x50AB, plan.clone(), engine, false);
                    // Run goodput exactness is asserted on the tier-1
                    // cert's divisible grid; the soak checks bitwise
                    // correctness, exact restore goodput, and the upper
                    // bound on every (possibly uneven) survivor layout.
                    let (attempts, nsurv, layout) = certify_cell(&label, &out, dims, &c_ref, false);
                    ran += 1;
                    println!(
                        "CHAOS: cell=soak algorithm={alg} engine={} p={p} class={class} \
                         survivors={nsurv} attempts={attempts} layout={layout} recovered=1 \
                         secs={:.3}",
                        engine_label(engine),
                        t0.elapsed().as_secs_f64()
                    );
                }
            }
        }
    }
    println!(
        "CHAOS: summary=soak cells={ran} skipped={skipped} failures=0 secs={:.1}",
        start.elapsed().as_secs_f64()
    );
    assert!(ran > 0, "the soak budget must admit at least one cell");
}

/// The scale acceptance cell: fault-armed Algorithm 1 end-to-end on the
/// event-loop engine at P = 10^4 + 1. Rank 10^4 is killed during the
/// first attempt and a partition around ranks {0..3} blackholes their
/// early traffic until it heals; the 10^4 survivors redistribute from
/// checkpoints onto the integral §5.2 grid `[25, 20, 20]` of
/// `(250, 200, 200)` and finish with model-exact goodput and a
/// bitwise-correct product.
#[test]
#[ignore = "release cell; run via cargo xtask chaos-soak"]
fn fault_armed_alg1_recovers_at_p_10_4_on_the_event_loop() {
    let dims = MatMulDims::new(250, 200, 200);
    let p = 10_001;
    let plan = FaultPlan::none().with_seed(0xC0A7).with_kill(10_000, 2).with_partition(
        vec![0, 1, 2, 3],
        0..6,
        2,
    );
    let spec = Recoverable::Alg1 { kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
    let t0 = Instant::now();
    let out = run_chaos(&spec, dims, p, 3, plan, Engine::EventLoop, true);
    let secs = t0.elapsed().as_secs_f64();

    let killed = out.values[10_000].as_ref().expect_err("rank 10000 was killed");
    assert!(killed.detail.contains("kill=10000@2"), "{}", killed.detail);
    let c_ref = reference(dims);
    let (attempts, nsurv, layout) = certify_cell("p10k", &out, dims, &c_ref, true);
    assert_eq!(nsurv, 10_000, "all other ranks survive");
    assert_eq!(layout, AlgPlan::Alg1 { grid: [25, 20, 20] }, "the §5.2 grid of 10^4 survivors");
    assert_eq!(attempts, 2, "one abandoned attempt, one successful");

    // Per-rank, per-phase eq. (3) exactness on the recovery grid for
    // every one of the 10^4 survivors (the grid divides the dimensions).
    let pred = alg1_prediction(dims, [25, 20, 20]);
    for v in out.values.iter().filter_map(|v| v.as_ref().ok()) {
        let CShare::Chunk(chunk) = &v.share else { panic!("Alg1 share") };
        for (ph, want) in chunk.phases.iter().zip(pred.phases()) {
            assert_eq!(ph.meter.words_sent as f64, want, "phase {:?}", ph.label);
        }
    }
    let rate = nsurv as f64 * attempts as f64 / secs.max(1e-9);
    println!(
        "CHAOS: cell=p10k algorithm=alg1 engine=event-loop p={p} survivors={nsurv} \
         attempts={attempts} layout={layout} recovered=1 secs={secs:.3} ranks_per_sec={rate:.0}"
    );
}
