//! Deterministic-schedule guarantees of `pmm-simnet`.
//!
//! Three properties, each on real algorithm workloads (the same
//! configurations `tests/algorithms_agree.rs` runs):
//!
//! 1. **Replayability** — two runs of the same `(program, seed)` pair
//!    produce byte-identical schedule traces, checked both as rendered
//!    strings and event-by-event via `ScheduleTrace::assert_matches`
//!    (the golden-trace replay assertion).
//! 2. **Schedule-independence** — different seeds pick genuinely
//!    different rank interleavings, yet every numeric result, meter
//!    total, simulated time and peak memory is identical across seeds
//!    (`fuzz_schedules`). This is the invariant that makes the
//!    conformance sweep's bitwise assertions meaningful.
//! 3. **Reporting** — a divergence (simulated here, found never) names
//!    both seeds with a `PMM_SEED=` repro line; the short-budget fuzz
//!    entry point honours `PMM_SEED` as its base seed so CI failures
//!    replay locally with one env var.

use pmm::prelude::*;

fn inputs(dims: MatMulDims) -> (Matrix, Matrix) {
    (
        random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 101),
        random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 202),
    )
}

/// The `algorithms_agree` Algorithm 1 workload: P = 12, 2 × 3 × 2 grid.
fn alg1_world_and_program() -> (World, impl Fn(&mut Rank) -> Vec<f64> + Send + Sync + Clone) {
    let dims = MatMulDims::new(24, 12, 18);
    let grid = Grid3::new(2, 3, 2);
    let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
    let program = move |rank: &mut Rank| {
        let (a, b) = inputs(dims);
        alg1(rank, &cfg, &a, &b).c_chunk
    };
    (World::new(12, MachineParams::BANDWIDTH_ONLY), program)
}

#[test]
fn same_seed_replays_a_byte_identical_trace_on_alg1() {
    let (world, program) = alg1_world_and_program();
    let golden = world.clone().with_seed(0xA11CE).run(program.clone());
    let replay = world.with_seed(0xA11CE).run(program);
    let golden_trace = golden.schedule_trace.expect("seeded run records a trace");
    let replay_trace = replay.schedule_trace.expect("seeded run records a trace");
    // Byte-identical renders, and the event-level golden assertion.
    assert_eq!(golden_trace.render(), replay_trace.render());
    golden_trace.assert_matches(&replay_trace);
    assert!(!golden_trace.events.is_empty(), "a 12-rank run schedules events");
    // The replay also reproduces every value and meter bit-for-bit.
    assert_eq!(golden.values, replay.values);
}

#[test]
fn different_seeds_schedule_differently_but_compute_identically() {
    let (world, program) = alg1_world_and_program();
    let seeds: Vec<u64> = (0..6).collect();

    // fuzz_schedules: every seed must produce the same values, meters,
    // times and peak memories as the first.
    fuzz_schedules(&world, &seeds, &program).unwrap_or_else(|d| panic!("{d}"));

    // ... while at least one seed actually picks a different
    // interleaving (otherwise the fuzzer would be vacuous).
    let traces: Vec<String> = seeds
        .iter()
        .map(|&s| {
            let out = world.clone().with_seed(s).run(program.clone());
            out.schedule_trace.expect("seeded").render()
        })
        .collect();
    assert!(
        traces.iter().any(|t| t != &traces[0]),
        "all {} seeds produced the same schedule — the fuzzer explores nothing",
        seeds.len()
    );
}

#[test]
fn fuzz_schedules_covers_the_other_agree_workloads() {
    // Cannon, P = 9 (torus exchanges stress the split + sendrecv paths).
    let dims = MatMulDims::new(24, 12, 18);
    let ccfg = CannonConfig { dims, q: 3, kernel: Kernel::Naive };
    let world = World::new(9, MachineParams::BANDWIDTH_ONLY);
    fuzz_schedules(&world, &[1, 2, 3], move |rank: &mut Rank| {
        let (a, b) = inputs(dims);
        cannon(rank, &ccfg, &a, &b).c_block
    })
    .unwrap_or_else(|d| panic!("{d}"));

    // SUMMA, P = 6 (broadcast pipelines).
    let scfg = SummaConfig { dims, pr: 2, pc: 3, kernel: Kernel::Naive };
    let world = World::new(6, MachineParams::BANDWIDTH_ONLY);
    fuzz_schedules(&world, &[1, 2, 3], move |rank: &mut Rank| {
        let (a, b) = inputs(dims);
        summa(rank, &scfg, &a, &b).c_block
    })
    .unwrap_or_else(|d| panic!("{d}"));

    // 2.5D, P = 8 (replicated layers + reduction).
    let tcfg = TwoFiveDConfig { dims, q: 2, c: 2, kernel: Kernel::Naive };
    let world = World::new(8, MachineParams::BANDWIDTH_ONLY);
    fuzz_schedules(&world, &[1, 2, 3], move |rank: &mut Rank| {
        let (a, b) = inputs(dims);
        twofived(rank, &tcfg, &a, &b).c_block
    })
    .unwrap_or_else(|d| panic!("{d}"));
}

/// Short-budget schedule-fuzz entry point (the `cargo xtask
/// fuzz-schedules` job runs this test in a loop with increasing
/// `PMM_SEED`). The base seed comes from the environment so a CI failure
/// line `PMM_SEED=<n>` replays exactly.
#[test]
fn schedule_fuzz_smoke() {
    let base = seed_from_env(0);
    eprintln!("schedule_fuzz_smoke: base seed {base} (replay with PMM_SEED={base})");
    let seeds: Vec<u64> = (0..4).map(|i| base.wrapping_add(i)).collect();
    let (world, program) = alg1_world_and_program();
    fuzz_schedules(&world, &seeds, program).unwrap_or_else(|d| panic!("{d}"));
}

#[test]
fn zero_fault_plan_is_meter_identical_to_no_plan() {
    // A `FaultPlan::none()` world (reliable-delivery machinery armed, but
    // every fault probability zero and no kills/stragglers) must be
    // indistinguishable from a plain world: same values, same meters, same
    // clocks, byte-identical schedule trace. This is the CI guard that the
    // fault layer costs nothing — in results *or* determinism — when off.
    let (world, program) = alg1_world_and_program();
    let plain = world.clone().with_seed(0xC1EA4).run(program.clone());
    let armed = world.with_seed(0xC1EA4).with_faults(FaultPlan::none()).run(program);
    assert_eq!(plain.values, armed.values, "values must match bitwise");
    for (r, (p, a)) in plain.reports.iter().zip(&armed.reports).enumerate() {
        assert_eq!(p.meter, a.meter, "every meter field must match, rank {r}");
        assert_eq!(p.time, a.time, "per-rank clocks must match, rank {r}");
        assert_eq!(a.meter.retry_overhead_words(), 0, "no-fault run retransmits nothing");
    }
    let pt = plain.schedule_trace.expect("seeded");
    let at = armed.schedule_trace.expect("seeded");
    assert_eq!(pt.render(), at.render(), "schedule traces must be byte-identical");
}
