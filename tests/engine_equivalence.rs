//! Cross-engine differential suite: `Engine::EventLoop` vs
//! `Engine::Threads`.
//!
//! The event-driven core is only trustworthy if it is *observationally
//! identical* to the thread backend it replaced: same values, same
//! meters, same simulated clocks, same memory peaks, same vector
//! clocks, and a byte-identical `ScheduleTrace` for the same
//! `(program, schedule)` pair. This suite pins that equivalence on
//!
//! * the pinned `(program, seed)` workloads of `tests/determinism.rs`
//!   (Algorithm 1 P = 12, Cannon P = 9, SUMMA P = 6, 2.5D P = 8);
//! * all six algorithms of the workspace across the three Theorem 3
//!   regimes of the `tests/conformance.rs` sweep instance
//!   `(96, 24, 12)` — 1D interior (P = 2), 2D interior (P = 8), 3D
//!   interior (P = 64);
//! * property-sweeps with the fault layer armed (message drops,
//!   duplicates, delays): goodput *and* retry meters must agree
//!   bit-for-bit across engines.

use pmm::prelude::*;
use proptest::prelude::*;

fn inputs(dims: MatMulDims) -> (Matrix, Matrix) {
    (
        random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 101),
        random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 202),
    )
}

/// Run `program` on both engines and assert every observable artifact
/// matches: values, per-rank meters/clocks/memory/vector clocks, and
/// the rendered + event-level schedule trace. Returns the event-loop
/// result for further checks.
fn assert_engines_agree<T, F>(label: &str, world: &World, program: F) -> WorldResult<T>
where
    T: Send + PartialEq + std::fmt::Debug,
    F: for<'a> Fn(&'a mut Rank) -> LocalBoxFuture<'a, T> + Send + Sync + Clone,
{
    let threads = world.clone().with_engine(Engine::Threads).run_async(program.clone());
    let event = world.clone().with_engine(Engine::EventLoop).run_async(program);
    assert_eq!(threads.values, event.values, "{label}: per-rank values diverge across engines");
    assert_eq!(threads.reports.len(), event.reports.len(), "{label}: rank count");
    for (r, (t, e)) in threads.reports.iter().zip(&event.reports).enumerate() {
        assert_eq!(t.meter, e.meter, "{label}: rank {r} meter diverges across engines");
        assert_eq!(t.time, e.time, "{label}: rank {r} clock diverges across engines");
        assert_eq!(
            t.peak_mem_words, e.peak_mem_words,
            "{label}: rank {r} memory peak diverges across engines"
        );
        assert_eq!(
            t.final_vclock, e.final_vclock,
            "{label}: rank {r} vector clock diverges across engines"
        );
    }
    match (&threads.schedule_trace, &event.schedule_trace) {
        (Some(t), Some(e)) => {
            assert_eq!(t.render(), e.render(), "{label}: schedule traces are not byte-identical");
            t.assert_matches(e);
        }
        (None, None) => {}
        (t, e) => panic!(
            "{label}: trace presence diverges (threads: {}, event loop: {})",
            t.is_some(),
            e.is_some()
        ),
    }
    event
}

/// The determinism-suite Algorithm 1 workload: P = 12 on a 2 × 3 × 2
/// grid, seeds pinned to the same values `tests/determinism.rs` uses.
#[test]
fn engines_agree_on_the_pinned_alg1_workload() {
    let dims = MatMulDims::new(24, 12, 18);
    let cfg = Alg1Config {
        dims,
        grid: Grid3::new(2, 3, 2),
        kernel: Kernel::Naive,
        assembly: Assembly::ReduceScatter,
    };
    for seed in [0xA11CE_u64, 0xC1EA4, 0, 5] {
        let world = World::new(12, MachineParams::BANDWIDTH_ONLY).with_seed(seed);
        let cfg = cfg.clone();
        let out = assert_engines_agree(&format!("alg1 seed {seed}"), &world, move |rank| {
            let cfg = cfg.clone();
            Box::pin(async move {
                let (a, b) = inputs(dims);
                let out = alg1_a(rank, &cfg, &a, &b).await;
                // Compare the chunk bits *and* the per-phase meters.
                let phases: Vec<(String, Meter)> =
                    out.phases.iter().map(|ph| (ph.label.to_string(), ph.meter)).collect();
                (out.c_chunk, phases)
            })
        });
        assert!(
            out.schedule_trace.expect("seeded run records a trace").events.len() > 12,
            "seed {seed}: a 12-rank Algorithm 1 run schedules real events"
        );
    }
}

#[test]
fn engines_agree_on_the_pinned_cannon_summa_and_twofived_workloads() {
    let dims = MatMulDims::new(24, 12, 18);

    let ccfg = CannonConfig { dims, q: 3, kernel: Kernel::Naive };
    let world = World::new(9, MachineParams::BANDWIDTH_ONLY).with_seed(0xA11CE);
    assert_engines_agree("cannon P=9", &world, move |rank| {
        let ccfg = ccfg.clone();
        Box::pin(async move {
            let (a, b) = inputs(dims);
            cannon_a(rank, &ccfg, &a, &b).await.c_block
        })
    });

    let scfg = SummaConfig { dims, pr: 2, pc: 3, kernel: Kernel::Naive };
    let world = World::new(6, MachineParams::BANDWIDTH_ONLY).with_seed(0xA11CE);
    assert_engines_agree("summa P=6", &world, move |rank| {
        let scfg = scfg.clone();
        Box::pin(async move {
            let (a, b) = inputs(dims);
            summa_a(rank, &scfg, &a, &b).await.c_block
        })
    });

    let tcfg = TwoFiveDConfig { dims, q: 2, c: 2, kernel: Kernel::Naive };
    let world = World::new(8, MachineParams::BANDWIDTH_ONLY).with_seed(0xA11CE);
    assert_engines_agree("2.5d P=8", &world, move |rank| {
        let tcfg = tcfg.clone();
        Box::pin(async move {
            let (a, b) = inputs(dims);
            twofived_a(rank, &tcfg, &a, &b).await.c_block
        })
    });
}

/// One Theorem 3 regime point of the conformance instance
/// `(96, 24, 12)`: run every algorithm that admits the processor count
/// on both engines and cross-check all observables.
fn regime_point(p: usize, seed: u64, label: &str) {
    let dims = MatMulDims::new(96, 24, 12);
    let bw = MachineParams::BANDWIDTH_ONLY;
    let choice = best_divisible_grid(dims, p)
        .unwrap_or_else(|| panic!("{label}: no divisible factorization of {p}"));
    let grid = Grid3::from_dims(choice.grid);

    // Algorithm 1, both assembly strategies.
    for assembly in [Assembly::ReduceScatter, Assembly::AllToAllSum] {
        let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly };
        let world = World::new(p, bw).with_seed(seed);
        assert_engines_agree(&format!("{label}: alg1/{assembly:?}"), &world, move |rank| {
            let cfg = cfg.clone();
            Box::pin(async move {
                let (a, b) = inputs(dims);
                let out = alg1_a(rank, &cfg, &a, &b).await;
                let phases: Vec<(String, Meter)> =
                    out.phases.iter().map(|ph| (ph.label.to_string(), ph.meter)).collect();
                (out.c_chunk, phases)
            })
        });
    }

    // Streamed Algorithm 1 (double-buffered slabs).
    let world = World::new(p, bw).with_seed(seed);
    assert_engines_agree(&format!("{label}: alg1/streamed"), &world, move |rank| {
        Box::pin(async move {
            let (a, b) = inputs(dims);
            alg1_streamed_a(rank, dims, grid, 2, Kernel::Naive, &a, &b).await.c_chunk
        })
    });

    // Cannon needs a square process grid.
    let q = (p as f64).sqrt() as usize;
    if q * q == p {
        let ccfg = CannonConfig { dims, q, kernel: Kernel::Naive };
        let world = World::new(p, bw).with_seed(seed);
        assert_engines_agree(&format!("{label}: cannon"), &world, move |rank| {
            let ccfg = ccfg.clone();
            Box::pin(async move {
                let (a, b) = inputs(dims);
                cannon_a(rank, &ccfg, &a, &b).await.c_block
            })
        });
    }

    // SUMMA on a near-square factorization.
    let (pr, pc) = near_square_factors(p);
    let scfg = SummaConfig { dims, pr, pc, kernel: Kernel::Naive };
    let world = World::new(p, bw).with_seed(seed);
    assert_engines_agree(&format!("{label}: summa"), &world, move |rank| {
        let scfg = scfg.clone();
        Box::pin(async move {
            let (a, b) = inputs(dims);
            summa_a(rank, &scfg, &a, &b).await.c_block
        })
    });

    // 2.5D wherever q²c = p has a solution with c ≤ q.
    if let Some((q, c)) = [(2usize, 2usize), (4, 1), (4, 4), (2, 1), (8, 1)]
        .into_iter()
        .find(|&(q, c)| q * q * c == p)
    {
        let tcfg = TwoFiveDConfig { dims, q, c, kernel: Kernel::Naive };
        let world = World::new(p, bw).with_seed(seed);
        assert_engines_agree(&format!("{label}: 2.5d"), &world, move |rank| {
            let tcfg = tcfg.clone();
            Box::pin(async move {
                let (a, b) = inputs(dims);
                twofived_a(rank, &tcfg, &a, &b).await.c_block
            })
        });
    }

    // CARMA on power-of-two processor counts.
    if p.is_power_of_two() {
        let world = World::new(p, bw).with_seed(seed);
        assert_engines_agree(&format!("{label}: carma"), &world, move |rank| {
            Box::pin(async move {
                let (a, b) = inputs(dims);
                let (sa, sb) = carma_shares(p, rank.world_rank(), &a, &b);
                let comm = rank.world_comm();
                carma_a(rank, &comm, dims, Kernel::Naive, sa, sb).await
            })
        });
    }
}

#[test]
fn engines_agree_across_the_1d_regime() {
    // P = 2 < m/n = 4: strictly inside the 1D case.
    regime_point(2, 0xA11CE, "1D interior P=2");
}

#[test]
fn engines_agree_across_the_2d_regime() {
    // m/n = 4 < P = 8 < mn/k² = 16: strictly inside the 2D case.
    regime_point(8, 0xA11CE, "2D interior P=8");
}

#[test]
fn engines_agree_across_the_3d_regime() {
    // P = 64 > mn/k² = 16: strictly inside the 3D case.
    regime_point(64, 0xA11CE, "3D interior P=64");
}

#[test]
fn engines_agree_with_a_fault_plan_armed() {
    // Message faults are decided by hashing (fault seed, channel, seq,
    // attempt) — never by engine or arrival order — so an armed plan
    // must leave the two engines bit-identical, including the retry
    // (waste) counters.
    let dims = MatMulDims::new(24, 12, 18);
    let cfg = Alg1Config {
        dims,
        grid: Grid3::new(2, 3, 2),
        kernel: Kernel::Naive,
        assembly: Assembly::ReduceScatter,
    };
    let plan = FaultPlan::none()
        .with_seed(0x5EED_FA17)
        .with_drop(0.10)
        .with_duplicate(0.05)
        .with_delay(0.05);
    let world = World::new(12, MachineParams::BANDWIDTH_ONLY).with_seed(0xA11CE).with_faults(plan);
    let out = assert_engines_agree("alg1 with faults", &world, move |rank| {
        let cfg = cfg.clone();
        Box::pin(async move {
            let (a, b) = inputs(dims);
            alg1_a(rank, &cfg, &a, &b).await.c_chunk
        })
    });
    let retries: u64 = out.reports.iter().map(|r| r.meter.retry_overhead_words()).sum();
    assert!(retries > 0, "a 10% drop rate must force at least one retransmission");
}

#[test]
fn engines_agree_on_checkpointed_recovery_under_a_multi_fault_plan() {
    // The full robustness stack on one pinned (program, seed, plan)
    // triple: checkpoint ring, a direct kill, a cascading kill armed on
    // the first death, a healing partition, a straggler storm, and
    // background message faults. Every per-rank Result (typed
    // RankFailed on the casualties, full Recovered on the survivors),
    // every meter, clock, and the rendered schedule trace must be
    // byte-identical across engines.
    let dims = MatMulDims::new(24, 24, 24);
    let plan = FaultPlan::none()
        .with_seed(0xFA17)
        .with_drop(0.06)
        .with_duplicate(0.02)
        .with_kill(4, 6)
        .with_cascade(7, 1)
        .with_partition(vec![0, 1], 5..20, 2)
        .with_storm(0.3, 2.0);
    let world = World::new(9, MachineParams::BANDWIDTH_ONLY).with_seed(0xA11CE).with_faults(plan);
    let out = assert_engines_agree("recovery multi-fault", &world, move |rank| {
        Box::pin(async move {
            let (a, b) = inputs(dims);
            let spec =
                Recoverable::Alg1 { kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
            run_recoverable_a(rank, &spec, dims, &a, &b).await
        })
    });
    assert!(out.values[4].is_err() && out.values[7].is_err(), "both casualties report failure");
    let ok = out.values[0].as_ref().expect("rank 0 survives");
    assert_eq!(ok.survivors, vec![0, 1, 2, 3, 5, 6, 8]);
    assert!(ok.attempts() >= 2, "the kills force at least one re-plan");
    let retries: u64 = out.reports.iter().map(|r| r.meter.retry_overhead_words()).sum();
    assert!(retries > 0, "the partition and drops must force retransmissions");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Cross-engine invariance as a property: arbitrary schedule seeds x
    // arbitrary armed fault mixes on a messaging-heavy 4-rank exchange
    // ring. Both engines must agree on every payload, every goodput
    // counter, every retry counter, and the simulated clock.
    #[test]
    fn engines_agree_under_random_seeds_and_faults(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        drop in 0.0f64..0.30,
        dup in 0.0f64..0.15,
        delay in 0.0f64..0.15,
        rounds in 1usize..6,
    ) {
        let mut plan = FaultPlan::none()
            .with_seed(fault_seed)
            .with_drop(drop)
            .with_duplicate(dup)
            .with_delay(delay);
        plan.max_retries = 64;
        let world = World::new(4, MachineParams::BANDWIDTH_ONLY)
            .with_seed(seed)
            .with_faults(plan);
        assert_engines_agree(
            &format!("ring seed {seed} faults {fault_seed}"),
            &world,
            move |rank| {
                Box::pin(async move {
                    let comm = rank.world_comm();
                    let me = rank.world_rank();
                    let n = comm.size();
                    let mut acc = vec![me as f64];
                    for round in 0..rounds {
                        let to = (me + 1) % n;
                        let from = (me + n - 1) % n;
                        let msg = rank
                            .exchange_a(&comm, to, from, &[acc[round] + 1.0])
                            .await;
                        acc.push(msg.payload[0]);
                    }
                    acc
                })
            },
        );
    }
}
