//! Cross-crate checks for the extension variants: streamed Algorithm 1,
//! executed CARMA, and the advisor — all against the Theorem 3 bound.

use pmm::prelude::*;

fn inputs(dims: MatMulDims) -> (Matrix, Matrix) {
    (
        random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 301),
        random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 302),
    )
}

#[test]
fn streamed_alg1_is_tight_too() {
    // The §6.2 low-memory variant moves exactly the same words, so it also
    // attains the bound on the optimal divisible grid.
    let dims = MatMulDims::new(768, 192, 48);
    let p = 36usize;
    let grid = best_grid(dims, p).grid3();
    let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
        let (a, b) = inputs(dims);
        alg1_streamed(rank, dims, grid, 4, Kernel::Naive, &a, &b)
    });
    let bound = lower_bound(dims, p as f64).bound;
    let measured = out.critical_path_time();
    assert!(
        (measured - bound).abs() < 1e-9 * bound,
        "streamed measured {measured} vs bound {bound}"
    );
    // And the product is right.
    let (a, b) = inputs(dims);
    let want = gemm(&a, &b, Kernel::Tiled);
    let chunks: Vec<_> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
    assert_eq!(assemble_c(dims, grid, &chunks), want);
}

#[test]
fn carma_is_tight_on_pow2_square_instances() {
    // On power-of-two-aligned square instances, CARMA's halving schedule
    // equals the Corollary 4 bound exactly — the certification Theorem 3
    // enables.
    for (n, p) in [(64u64, 8usize), (64, 64), (128, 512)] {
        let dims = MatMulDims::square(n);
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let (a, b) = inputs(dims);
            let (sa, sb) = carma_shares(p, rank.world_rank(), &a, &b);
            let comm = rank.world_comm();
            carma(rank, &comm, dims, Kernel::Naive, sa, sb)
        });
        let bound = corollary4(n, p as f64);
        let measured = out.critical_path_time();
        assert!(
            (measured - bound).abs() < 1e-9 * bound,
            "n={n} P={p}: CARMA measured {measured} vs bound {bound}"
        );
        // Reassembled product matches the serial reference.
        let (a, b) = inputs(dims);
        let want = gemm(&a, &b, Kernel::Tiled);
        assert_eq!(carma_assemble_c(dims, p, &out.values), want, "n={n} P={p}");
    }
}

#[test]
fn advisor_prediction_matches_execution_for_the_winner() {
    let dims = MatMulDims::new(256, 128, 64);
    let p = 32usize;
    let recs = recommend(dims, p, f64::INFINITY, MachineParams::BANDWIDTH_ONLY);
    let best = recs.first().expect("at least one strategy");
    if let AdvisorStrategy::Alg1 { grid } = best.strategy {
        let cfg = Alg1Config::new(dims, Grid3::from_dims(grid));
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let (a, b) = inputs(dims);
            alg1(rank, &cfg, &a, &b);
        });
        let measured = out.critical_path_time();
        assert!(
            (measured - best.cost.words).abs() < 1e-9,
            "advisor predicted {} words, measured {measured}",
            best.cost.words
        );
    } else {
        panic!("expected an Alg1 winner with unlimited memory");
    }
}

#[test]
fn streamed_variant_trades_latency_for_memory_monotonically() {
    let dims = MatMulDims::new(64, 96, 64);
    let grid = Grid3::new(2, 2, 2);
    let mut prev_msgs = 0u64;
    let mut prev_peak = u64::MAX;
    for slabs in [1usize, 2, 4, 8] {
        let out = World::new(8, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let (a, b) = inputs(dims);
            alg1_streamed(rank, dims, grid, slabs, Kernel::Naive, &a, &b)
        });
        let msgs = out.reports[0].meter.msgs_sent;
        let peak = out.max_peak_mem_words();
        assert!(msgs >= prev_msgs, "slabs={slabs}: messages must not decrease");
        assert!(peak <= prev_peak, "slabs={slabs}: peak memory must not increase");
        prev_msgs = msgs;
        prev_peak = peak;
    }
}
