//! Cross-algorithm agreement: Algorithm 1 (both assemblies), Cannon,
//! SUMMA and 2.5D all compute the same product as the serial reference,
//! on the same distributed machine substrate.

use pmm::prelude::*;

fn inputs(dims: MatMulDims) -> (Matrix, Matrix) {
    (
        random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 101),
        random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 202),
    )
}

fn reference(dims: MatMulDims) -> Matrix {
    let (a, b) = inputs(dims);
    gemm(&a, &b, Kernel::Tiled)
}

#[test]
fn all_algorithms_produce_the_same_product() {
    let dims = MatMulDims::new(24, 12, 18);
    let want = reference(dims);

    // Algorithm 1, reduce-scatter assembly, P = 12.
    let grid = Grid3::new(2, 3, 2);
    let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
    let out = World::new(12, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
        let (a, b) = inputs(dims);
        alg1(rank, &cfg, &a, &b)
    });
    let chunks: Vec<_> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
    assert_eq!(assemble_c(dims, grid, &chunks), want, "alg1/reduce-scatter");

    // Algorithm 1, all-to-all assembly.
    let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly: Assembly::AllToAllSum };
    let out = World::new(12, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
        let (a, b) = inputs(dims);
        alg1(rank, &cfg, &a, &b)
    });
    let chunks: Vec<_> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
    assert_eq!(assemble_c(dims, grid, &chunks), want, "alg1/all-to-all");

    // Cannon, P = 9.
    let ccfg = CannonConfig { dims, q: 3, kernel: Kernel::Naive };
    let out = World::new(9, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
        let (a, b) = inputs(dims);
        cannon(rank, &ccfg, &a, &b)
    });
    let got = assemble_from_blocks(24, 18, 3, 3, |i, j| out.values[i * 3 + j].c_block.clone());
    assert_eq!(got, want, "cannon");

    // SUMMA, P = 6 (2×3).
    let scfg = SummaConfig { dims, pr: 2, pc: 3, kernel: Kernel::Naive };
    let out = World::new(6, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
        let (a, b) = inputs(dims);
        summa(rank, &scfg, &a, &b)
    });
    let got = assemble_from_blocks(24, 18, 2, 3, |i, j| out.values[i * 3 + j].c_block.clone());
    assert_eq!(got, want, "summa");

    // 2.5D, P = 18 (3×3 grid, 2 layers → requires c | q? c=3,q=3: 27)…
    // use q = 2, c = 2 → P = 8.
    let tcfg = TwoFiveDConfig { dims, q: 2, c: 2, kernel: Kernel::Naive };
    let out = World::new(8, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
        let (a, b) = inputs(dims);
        twofived(rank, &tcfg, &a, &b)
    });
    let got = assemble_from_blocks(24, 18, 2, 2, |i, j| {
        out.values[i * 2 + j].c_block.clone().expect("layer 0")
    });
    assert_eq!(got, want, "2.5d");
}

#[test]
fn alg1_beats_or_matches_every_baseline_on_its_optimal_grid() {
    // The comparison behind §2.4: with the §5.2 grid, Algorithm 1's
    // critical-path words never exceed any baseline's at equal P.
    let dims = MatMulDims::new(48, 24, 24);
    let p = 64usize;

    let choice = best_grid(dims, p);
    let cfg = Alg1Config::new(dims, choice.grid3());
    let alg1_t = World::new(p, MachineParams::BANDWIDTH_ONLY)
        .run(move |rank| {
            let (a, b) = inputs(dims);
            alg1(rank, &cfg, &a, &b);
        })
        .critical_path_time();

    let ccfg = CannonConfig { dims, q: 8, kernel: Kernel::Naive };
    let cannon_t = World::new(p, MachineParams::BANDWIDTH_ONLY)
        .run(move |rank| {
            let (a, b) = inputs(dims);
            cannon(rank, &ccfg, &a, &b);
        })
        .critical_path_time();

    let scfg = SummaConfig { dims, pr: 8, pc: 8, kernel: Kernel::Naive };
    let summa_t = World::new(p, MachineParams::BANDWIDTH_ONLY)
        .run(move |rank| {
            let (a, b) = inputs(dims);
            summa(rank, &scfg, &a, &b);
        })
        .critical_path_time();

    let tcfg = TwoFiveDConfig { dims, q: 4, c: 4, kernel: Kernel::Naive };
    let t25_t = World::new(p, MachineParams::BANDWIDTH_ONLY)
        .run(move |rank| {
            let (a, b) = inputs(dims);
            twofived(rank, &tcfg, &a, &b);
        })
        .critical_path_time();

    let bound = lower_bound(dims, p as f64).bound;
    for (name, t) in [("cannon", cannon_t), ("summa", summa_t), ("2.5d", t25_t)] {
        assert!(alg1_t <= t + 1e-9, "alg1 {alg1_t} vs {name} {t}");
        assert!(t >= bound - 1e-9, "{name} {t} below the bound {bound}?!");
    }
}

#[test]
fn kernels_do_not_change_distributed_results() {
    let dims = MatMulDims::new(40, 24, 16);
    let grid = Grid3::new(2, 2, 2);
    let want = reference(dims);
    for kernel in [Kernel::Naive, Kernel::Tiled, Kernel::Parallel] {
        let cfg = Alg1Config { dims, grid, kernel, assembly: Assembly::ReduceScatter };
        let out = World::new(8, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let (a, b) = inputs(dims);
            alg1(rank, &cfg, &a, &b)
        });
        let chunks: Vec<_> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
        assert_eq!(assemble_c(dims, grid, &chunks), want, "{kernel:?}");
    }
}
