//! End-to-end tightness: Theorem 3's bound (pmm-core) is attained exactly
//! by Algorithm 1 (pmm-algs) running on the metered simulator
//! (pmm-simnet) — across all three cases and several shapes.

use pmm::prelude::*;

/// Run Algorithm 1 with the given grid and return the measured per-rank
/// critical-path words.
fn measure(dims: MatMulDims, grid: [usize; 3]) -> f64 {
    let g = Grid3::from_dims(grid);
    let cfg =
        Alg1Config { dims, grid: g, kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
    let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
    let out = World::new(g.size(), MachineParams::BANDWIDTH_ONLY).run(move |rank| {
        let a = random_int_matrix(n1, n2, -2..3, 1);
        let b = random_int_matrix(n2, n3, -2..3, 2);
        alg1(rank, &cfg, &a, &b);
    });
    out.critical_path_time()
}

/// Instances with fully divisible blocks *and* fiber chunks, one per case.
/// (dims, P, expected case)
fn tight_instances() -> Vec<(MatMulDims, usize, Case)> {
    vec![
        // paper-shaped instance (m/n = 4, mn/k² = 64), scaled
        (MatMulDims::new(768, 192, 48), 3, Case::OneD),
        (MatMulDims::new(768, 192, 48), 36, Case::TwoD),
        (MatMulDims::new(768, 192, 48), 512, Case::ThreeD),
        // square instances are always 3D for P > 1
        (MatMulDims::square(96), 8, Case::ThreeD),
        (MatMulDims::square(144), 27, Case::ThreeD),
        // tall-skinny 1D instance
        (MatMulDims::new(1024, 64, 64), 8, Case::OneD),
        // 2D instance with distinct n and k
        (MatMulDims::new(512, 128, 32), 16, Case::TwoD),
    ]
}

#[test]
fn alg1_attains_theorem3_exactly_in_every_case() {
    for (dims, p, want_case) in tight_instances() {
        let report = lower_bound(dims, p as f64);
        assert_eq!(report.case, want_case, "{dims} P={p}");
        let choice = best_grid(dims, p);
        assert!(
            dims.divisible_by(choice.grid),
            "{dims} P={p}: chosen grid {:?} must divide",
            choice.grid
        );
        let measured = measure(dims, choice.grid);
        assert!(
            (measured - report.bound).abs() <= 1e-9 * report.bound.max(1.0),
            "{dims} P={p} ({want_case}): measured {measured} vs bound {}",
            report.bound
        );
    }
}

#[test]
fn no_grid_beats_the_bound() {
    // Theorem 3 applies to *every* parallelization: every factorization's
    // measured cost is ≥ the bound.
    let dims = MatMulDims::new(96, 48, 24);
    for p in [4usize, 8, 12] {
        let bound = lower_bound(dims, p as f64).bound;
        for grid in Grid3::factorizations(p) {
            let measured = measure(dims, grid);
            assert!(
                measured >= bound - 1e-9 * bound.max(1.0),
                "grid {grid:?} (P={p}) measured {measured} below bound {bound}"
            );
        }
    }
}

#[test]
fn measured_equals_eq3_prediction_on_divisible_grids() {
    let dims = MatMulDims::new(96, 48, 24);
    for grid in [[2usize, 2, 2], [4, 2, 1], [1, 3, 4], [6, 4, 2], [2, 6, 1]] {
        assert!(dims.divisible_by(grid));
        let measured = measure(dims, grid);
        let predicted = alg1_cost_words(dims, grid);
        assert!(
            (measured - predicted).abs() <= 1e-9,
            "grid {grid:?}: measured {measured} vs eq.3 {predicted}"
        );
    }
}

#[test]
fn corollary4_is_attained_on_cubic_grids() {
    // n chosen so blocks *and* per-fiber chunks divide evenly (q³ = P and
    // q | (n/q)²), making the attainment exact to the word.
    for (n, p) in [(64u64, 8usize), (144, 27), (64, 64)] {
        let dims = MatMulDims::square(n);
        let q = (p as f64).cbrt().round() as usize;
        let measured = measure(dims, [q, q, q]);
        let bound = corollary4(n, p as f64);
        assert!(
            (measured - bound).abs() <= 1e-9 * bound.max(1.0),
            "n={n} P={p}: measured {measured} vs corollary4 {bound}"
        );
    }
}
