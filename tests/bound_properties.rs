//! Property-based tests (proptest) on the bound machinery: the analytic
//! Lemma 2 solution, the KKT certificates, the Theorem 3 bound, the grid
//! optimizer, and the Loomis–Whitney inequality — over randomized
//! instances far beyond the hand-picked unit-test shapes.

use pmm::bounds::kkt::{certificate_for, verify_kkt};
use pmm::bounds::loomis::LatticeSet;
use pmm::bounds::numeric::solve_numeric;
use pmm::prelude::*;
use proptest::prelude::*;

/// Random sorted dimensions and processor count.
fn instance() -> impl Strategy<Value = (u64, u64, u64, f64)> {
    (1u64..200, 1u64..200, 1u64..200, 1u64..100_000).prop_map(|(a, b, c, p)| {
        let mut v = [a, b, c];
        v.sort_unstable();
        (v[2], v[1], v[0], p as f64)
    })
}

/// Instances pinned relative to the two Lemma 2 regime thresholds
/// `P = m/n` and `P = mn/k²`: dimensions are built as `n = k·a`,
/// `m = n·b` so the thresholds are exactly the integers `b` and `a²b`,
/// and `which` selects a point strictly inside each regime or exactly
/// *on* each boundary — the KKT corner cases a uniform random `P` almost
/// never hits.
fn regime_pinned_instance() -> impl Strategy<Value = (u64, u64, u64, f64)> {
    (1u64..12, 2u64..8, 2u64..8, 0usize..5, 1u64..1000).prop_map(|(k, a, b, which, extra)| {
        let n = k * a;
        let m = n * b;
        let p = match which {
            // Strictly inside 1D: 1 ≤ P < b.
            0 => 1 + extra % (b - 1),
            // Exactly on the boundary P = m/n.
            1 => b,
            // Strictly inside 2D: b < P < a²b (a ≥ 2 keeps it non-empty).
            2 => b + 1 + extra % (a * a * b - b - 1),
            // Exactly on the boundary P = mn/k².
            3 => a * a * b,
            // Strictly inside 3D.
            _ => a * a * b + 1 + extra,
        };
        (m, n, k, p as f64)
    })
}

/// The Lemma 2 properties one stale `proptest-regressions` entry used to
/// pin: the fully degenerate instance `(1, 1, 1, P = 2)`, where all three
/// lower bounds are active and the objective is flat. Kept as an explicit
/// unit case (the shimmed proptest derives streams from test names and
/// ignores persistence files).
#[test]
fn regression_degenerate_unit_problem() {
    let prob = OptProblem::new(1.0, 1.0, 1.0, 2.0);
    let sol = prob.solve();
    assert!(prob.feasible(sol.x, 1e-9), "infeasible: {:?}", sol.x);
    let report = verify_kkt(&prob, sol.x, certificate_for(&prob), 1e-7);
    assert!(report.holds(1e-7), "KKT fails: {report:?}");
    let d = sol.objective();
    let (_, obj) = solve_numeric(&prob, 8);
    assert!((obj - d).abs() <= 1e-4 * d, "numeric {obj} vs analytic {d}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn analytic_solution_is_feasible_and_kkt_certified((m, n, k, p) in instance()) {
        let prob = OptProblem::new(m as f64, n as f64, k as f64, p);
        let sol = prob.solve();
        prop_assert!(prob.feasible(sol.x, 1e-9), "infeasible: {:?}", sol.x);
        let mu = certificate_for(&prob);
        let report = verify_kkt(&prob, sol.x, mu, 1e-7);
        prop_assert!(report.holds(1e-7), "KKT fails: {report:?}");
    }

    #[test]
    fn numeric_solver_agrees_with_analytic((m, n, k, p) in instance()) {
        let prob = OptProblem::new(m as f64, n as f64, k as f64, p);
        let d = prob.solve().objective();
        let (_, obj) = solve_numeric(&prob, 6);
        prop_assert!(obj >= d * (1.0 - 1e-9), "numeric {obj} beats analytic {d}");
        prop_assert!(obj <= d * (1.0 + 1e-3), "numeric {obj} far above analytic {d}");
    }

    #[test]
    fn closed_form_matches_numeric_in_every_regime_and_on_both_boundaries(
        (m, n, k, p) in regime_pinned_instance()
    ) {
        let prob = OptProblem::new(m as f64, n as f64, k as f64, p);
        let sol = prob.solve();
        prop_assert!(prob.feasible(sol.x, 1e-9), "({m},{n},{k},{p}): infeasible {:?}", sol.x);
        let report = verify_kkt(&prob, sol.x, certificate_for(&prob), 1e-7);
        prop_assert!(report.holds(1e-7), "({m},{n},{k},{p}): KKT fails on boundary: {report:?}");
        let d = sol.objective();
        let (x, obj) = solve_numeric(&prob, 8);
        prop_assert!(
            (obj - d).abs() <= 1e-4 * d,
            "({m},{n},{k},{p}): numeric {obj} vs analytic {d} (x = {x:?})"
        );
        prop_assert!(obj >= d * (1.0 - 1e-9), "({m},{n},{k},{p}): numeric beats analytic");
    }

    #[test]
    fn bound_is_invariant_under_dimension_permutation(
        (m, n, k, p) in instance()
    ) {
        let perms = [
            MatMulDims::new(m, n, k),
            MatMulDims::new(n, k, m),
            MatMulDims::new(k, m, n),
            MatMulDims::new(m, k, n),
        ];
        let b0 = lower_bound(perms[0], p).bound;
        for d in &perms[1..] {
            let b = lower_bound(*d, p).bound;
            prop_assert!((b - b0).abs() <= 1e-9 * b0.max(1.0), "{d}: {b} vs {b0}");
        }
    }

    #[test]
    fn every_integer_grid_cost_is_at_least_the_bound(
        (m, n, k, _) in instance(),
        p in 1usize..256,
    ) {
        let dims = MatMulDims::new(m, n, k);
        let bound = lower_bound(dims, p as f64).bound;
        for grid in Grid3::factorizations(p) {
            let c = alg1_cost_words(dims, grid);
            prop_assert!(
                c >= bound - 1e-6 * bound.max(1.0),
                "grid {grid:?}: {c} < bound {bound}"
            );
        }
    }

    #[test]
    fn best_grid_is_optimal_among_factorizations(
        (m, n, k, _) in instance(),
        p in 1usize..128,
    ) {
        let dims = MatMulDims::new(m, n, k);
        let best = best_grid(dims, p);
        for grid in Grid3::factorizations(p) {
            prop_assert!(best.cost_words <= alg1_cost_words(dims, grid) + 1e-9);
        }
    }

    #[test]
    fn loomis_whitney_holds_on_random_lattice_sets(
        points in proptest::collection::vec((0u32..12, 0u32..12, 0u32..12), 0..300)
    ) {
        let v = LatticeSet::from_points(points.into_iter().map(|(a, b, c)| [a, b, c]));
        prop_assert!(v.satisfies_loomis_whitney());
    }

    #[test]
    fn brick_work_sets_meet_the_lemma2_optimum(
        q1 in 1u32..5, q2 in 1u32..5, q3 in 1u32..5,
        s in 1u32..5,
    ) {
        // A (q1·s) × (q2·s) × (q3·s) iteration space split into q1·q2·q3
        // bricks of edge s: each brick's footprint sum is ≥ the Lemma 2
        // optimum for P = q1·q2·q3.
        let dims = [q1 * s, q2 * s, q3 * s];
        let mut sorted = dims;
        sorted.sort_unstable();
        let p = (q1 * q2 * q3) as f64;
        let prob = OptProblem::new(sorted[2] as f64, sorted[1] as f64, sorted[0] as f64, p);
        let dopt = prob.solve().objective();
        let brick = LatticeSet::brick((0, s), (0, s), (0, s));
        let sum: usize = brick.footprints().iter().sum();
        prop_assert!(
            sum as f64 >= dopt - 1e-9 * dopt,
            "brick footprints {sum} below optimum {dopt}"
        );
    }

    #[test]
    fn this_paper_dominates_prior_bounds((m, n, k, p) in instance()) {
        let dims = MatMulDims::new(m, n, k);
        let ours = PriorBound::ThisPaper.evaluate_leading(dims, p).unwrap();
        for row in [PriorBound::AggarwalChandraSnir, PriorBound::IronyToledoTiskin, PriorBound::DemmelEtAl] {
            if let Some(theirs) = row.evaluate_leading(dims, p) {
                prop_assert!(ours >= theirs - 1e-9, "{}: {theirs} > ours {ours}", row.label());
            }
        }
    }

    #[test]
    fn generalized_solver_agrees_with_lemma2((m, n, k, p) in instance()) {
        use pmm::bounds::genbound::GenBoundProblem;
        let lemma2 = OptProblem::new(m as f64, n as f64, k as f64, p).solve();
        let gen = GenBoundProblem::matmul(m as f64, n as f64, k as f64, p).solve();
        let d = lemma2.objective();
        prop_assert!((gen.total - d).abs() <= 1e-9 * d, "general {} vs Lemma2 {d}", gen.total);
    }

    #[test]
    fn advisor_winner_is_feasible_and_no_worse_than_alternatives(
        (m, n, k, _) in instance(),
        p in 2usize..65,
        mem_factor in 1.1f64..20.0,
    ) {
        use pmm::bounds::advisor::recommend;
        let dims = MatMulDims::new(m, n, k);
        let min_mem = dims.total_words() / p as f64;
        let mem = min_mem * mem_factor;
        let recs = recommend(dims, p, mem, MachineParams::BANDWIDTH_ONLY);
        for r in &recs {
            prop_assert!(r.memory_words <= mem, "{:?} over budget", r.strategy);
            prop_assert!(r.cost.is_valid());
        }
        for w in recs.windows(2) {
            prop_assert!(w[0].time <= w[1].time, "ranking out of order");
        }
        // The winner's words never beat Theorem 3.
        if let Some(best) = recs.first() {
            let bound = lower_bound(dims, p as f64).bound;
            prop_assert!(
                best.cost.words >= bound - 1e-6 * bound.max(1.0),
                "advisor winner {} below the bound {bound}",
                best.cost.words
            );
        }
    }

    #[test]
    fn d_is_continuous_in_p((m, n, k, _) in instance(), pf in 1.0f64..10_000.0) {
        // No jumps: D(p) vs D(p·(1+ε)) differ by O(ε).
        let dims = MatMulDims::new(m, n, k);
        let d1 = lower_bound(dims, pf).d;
        let d2 = lower_bound(dims, pf * (1.0 + 1e-9)).d;
        prop_assert!((d1 - d2).abs() <= 1e-6 * d1.max(1.0));
    }
}
