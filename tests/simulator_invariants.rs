//! Cross-crate simulator invariants: conservation of words, determinism of
//! the critical-path clock, collective correctness on communicators carved
//! out of grids, and property-based collective checks.

use pmm::prelude::*;
use proptest::prelude::*;

#[test]
fn words_sent_equals_words_received_globally() {
    // Conservation: across any completed run, Σ sent == Σ received.
    let dims = MatMulDims::new(24, 18, 12);
    let grid = Grid3::new(2, 3, 2);
    let cfg = Alg1Config::new(dims, grid);
    let out = World::new(12, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
        let a = random_int_matrix(24, 18, -2..3, 1);
        let b = random_int_matrix(18, 12, -2..3, 2);
        alg1(rank, &cfg, &a, &b);
    });
    let sent: u64 = out.reports.iter().map(|r| r.meter.words_sent).sum();
    let recv: u64 = out.reports.iter().map(|r| r.meter.words_recv).sum();
    assert_eq!(sent, recv);
    let msent: u64 = out.reports.iter().map(|r| r.meter.msgs_sent).sum();
    let mrecv: u64 = out.reports.iter().map(|r| r.meter.msgs_recv).sum();
    assert_eq!(msent, mrecv);
}

#[test]
fn clock_and_meters_are_deterministic_across_runs() {
    // OS scheduling must not leak into any metered quantity.
    let run = || {
        let dims = MatMulDims::new(20, 16, 12);
        let grid = Grid3::new(2, 2, 2);
        let cfg = Alg1Config::new(dims, grid);
        let out = World::new(8, MachineParams::TYPICAL_CLUSTER).run(move |rank| {
            let a = random_int_matrix(20, 16, -2..3, 5);
            let b = random_int_matrix(16, 12, -2..3, 6);
            alg1(rank, &cfg, &a, &b);
            (rank.time(), rank.meter())
        });
        out.values
    };
    let first = run();
    for _ in 0..3 {
        let again = run();
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(a.0, b.0, "clock must be deterministic");
            assert_eq!(a.1, b.1, "meters must be deterministic");
        }
    }
}

#[test]
fn collectives_compose_on_grid_fibers() {
    // Within each fiber of a 3x2x2 grid, all-reduce over row-fibers then
    // broadcast over column-fibers — data arrives intact everywhere.
    let grid = Grid3::new(3, 2, 2);
    let out = World::new(12, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
        let world = rank.world_comm();
        let coord = grid.coord_of(rank.world_rank());
        let axis0 = rank.split(&world, grid.fiber_color(coord, 0) as i64, coord[0] as i64).unwrap();
        let sum = all_reduce(rank, &axis0, &[coord[0] as f64 + 1.0], AllReduceAlgo::Auto);
        // fiber along axis 0 has coords {0,1,2} → sum = 6.
        let axis2 = rank.split(&world, grid.fiber_color(coord, 2) as i64, coord[2] as i64).unwrap();
        let got = bcast(rank, &axis2, &sum, 0, BcastAlgo::Binomial);
        got[0]
    });
    assert!(out.values.iter().all(|&v| v == 6.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allgather_then_local_reduce_equals_allreduce(
        p in 2usize..9,
        w in 1usize..20,
        seed in 0u64..1000,
    ) {
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let mine: Vec<f64> = (0..w)
                .map(|e| ((rank.world_rank() as u64 * 31 + e as u64 + seed) % 17) as f64)
                .collect();
            let gathered = all_gather(rank, &comm, &mine, AllGatherAlgo::Auto);
            let local: Vec<f64> = (0..w)
                .map(|e| (0..p).map(|r| gathered[r * w + e]).sum())
                .collect();
            let ar = all_reduce(rank, &comm, &mine, AllReduceAlgo::Auto);
            (local, ar)
        });
        for (local, ar) in &out.values {
            prop_assert_eq!(local, ar);
        }
    }

    #[test]
    fn reduce_scatter_partitions_the_allreduce(
        p in 2usize..9,
        wper in 1usize..8,
    ) {
        let w = p * wper;
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let mine: Vec<f64> = (0..w).map(|e| (rank.world_rank() * w + e) as f64).collect();
            let seg = reduce_scatter(rank, &comm, &mine, ReduceScatterAlgo::Auto);
            let full = all_reduce(rank, &comm, &mine, AllReduceAlgo::Auto);
            (seg, full)
        });
        for (r, (seg, full)) in out.values.iter().enumerate() {
            prop_assert_eq!(seg.as_slice(), &full[r * wper..(r + 1) * wper]);
        }
    }

    #[test]
    fn metered_words_scale_linearly_with_payload(
        p in 2usize..7,
        w in 1usize..30,
    ) {
        // All-gather of w words per rank must move exactly (p−1)·w per rank
        // regardless of values.
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            all_gather(rank, &comm, &vec![0.5; w], AllGatherAlgo::Ring);
            rank.meter().words_sent
        });
        for &sent in &out.values {
            prop_assert_eq!(sent as usize, (p - 1) * w);
        }
    }
}
