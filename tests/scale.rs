//! Large-`P` scale conformance: Algorithm 1 *executed* (not predicted)
//! at P = 10^4 … 10^6 on the event-loop engine.
//!
//! The paper's Fig. 1/Fig. 2 story spans `P` up to 10^6; with the
//! thread backend anything past a few hundred ranks was out of reach,
//! so the tight eq. (3) constants were never checked where the three
//! regimes actually separate. These tests run Algorithm 1 end-to-end
//! on `Engine::EventLoop` at scale, on **integral §5.2 optimal grids**
//! (`best_grid` returns exactly the grid we pin, and it divides the
//! dimensions), and hold the *measured* per-rank, per-phase traffic to
//! the `pmm_model::alg1_prediction` eq. (3) terms exactly.
//!
//! Executed-path guarantees (no closed-form fallback): every rank
//! returns a real `Alg1Output` with per-phase meters from the run, the
//! world reports `P` per-rank meter/clock entries, and the verifier is
//! live throughout (it is part of the fabric on every engine).
//!
//! Each test prints a `SCALE: key=value ...` line; `cargo xtask
//! scale-check` runs the `#[ignore]`d large cells in release mode and
//! collects those lines into `BENCH_scale.json`.

use std::time::Instant;

use pmm::prelude::*;

/// Peak resident set size of this test process in kB (Linux `VmHWM`),
/// or 0 where /proc is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Execute Algorithm 1 at `p` ranks on the event-loop engine and check
/// eq. (3) attribution. `exact` additionally pins every rank's
/// per-phase duplex words to the prediction (requires evenly-chunked
/// fiber collectives); aggregate per-phase traffic is checked always.
/// `trace` runs with the structured tracer armed and cross-checks its
/// per-phase totals too.
fn scale_point(label: &str, dims: MatMulDims, grid_arr: [usize; 3], exact: bool, trace: bool) {
    let p: usize = grid_arr.iter().product();
    // The pinned grid must be the integral §5.2 optimum, not just some
    // divisible factorization.
    let choice = best_grid(dims, p);
    assert_eq!(choice.grid, grid_arr, "{label}: pinned grid is not the §5.2 optimum");
    assert!(dims.divisible_by(grid_arr), "{label}: §5.2 grid must divide the dimensions");
    let pred = alg1_prediction(dims, grid_arr);

    let cfg = Alg1Config {
        dims,
        grid: Grid3::from_dims(grid_arr),
        kernel: Kernel::Naive,
        assembly: Assembly::ReduceScatter,
    };
    // Inputs are generated once and shared (`Arc`) across all P rank
    // programs, keeping input setup O(n1·n2 + n2·n3) rather than
    // O(P · matrix size).
    let (a, b) = (
        std::sync::Arc::new(random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 11)),
        std::sync::Arc::new(random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 22)),
    );
    // Schedule recording snapshots the runnable set per pick (O(P) per
    // event) — off at scale; targeted wakeup keeps the runnable-set
    // bookkeeping proportional to the active ranks.
    let world = World::new(p, MachineParams::BANDWIDTH_ONLY)
        .with_engine(Engine::EventLoop)
        .with_schedule_recording(false)
        .with_targeted_wakeup(true)
        .with_trace(trace)
        .without_watchdog();
    let t0 = Instant::now();
    let out = world.run_async(|rank| {
        let cfg = cfg.clone();
        let (a, b) = (a.clone(), b.clone());
        Box::pin(async move { alg1_a(rank, &cfg, &a, &b).await })
    });
    let secs = t0.elapsed().as_secs_f64();

    // Executed, not predicted: P live per-rank reports with real
    // meters and per-phase attribution from the run itself.
    assert_eq!(out.values.len(), p, "{label}: every rank must execute");
    assert_eq!(out.reports.len(), p, "{label}: every rank must report meters");
    assert!(out.total_words_sent() > 0.0, "{label}: an executed run moves real words");

    // Eq. (3), per rank and per phase where the fiber chunks are even.
    if exact {
        for (r, v) in out.values.iter().enumerate() {
            for (phase, want) in v.phases.iter().zip(pred.phases()) {
                assert_eq!(
                    phase.meter.duplex_words() as f64,
                    want,
                    "{label}: rank {r} phase '{}' missed the eq. (3) term",
                    phase.label
                );
            }
        }
        // On the §5.2 optimum the measured critical path *is* the
        // prediction total (and the Theorem 3 bound wherever tight).
        let measured = out.critical_path_time();
        assert!(
            (measured - pred.total()).abs() <= 1e-9 * pred.total().max(1.0),
            "{label}: measured critical path {measured} vs eq. (3) total {}",
            pred.total()
        );
    }
    // Aggregate per-phase traffic (holds on every divisible grid).
    for (i, want) in pred.phases().iter().enumerate() {
        let got: u64 = out.values.iter().map(|v| v.phases[i].meter.words_recv).sum();
        assert!(
            (got as f64 - p as f64 * want).abs() < 1e-6,
            "{label}: phase {i} aggregate words {got} vs eq. (3) {}",
            p as f64 * want
        );
    }
    if trace {
        let tracer = out.tracer().expect("traced run assembles a tracer");
        let totals = tracer.phase_totals();
        assert!(!totals.is_empty(), "{label}: traced run attributes per-phase goodput");
    }

    let rate = p as f64 / secs.max(1e-9);
    println!(
        "SCALE: label={label} p={p} grid={}x{}x{} dims={}x{}x{} exact={exact} trace={trace} \
         secs={secs:.3} ranks_per_sec={rate:.0} peak_rss_kb={}",
        grid_arr[0],
        grid_arr[1],
        grid_arr[2],
        dims.n1,
        dims.n2,
        dims.n3,
        peak_rss_kb()
    );
}

/// P = 10^4 on the integral §5.2 grid [25, 20, 20] of (250, 200, 200):
/// t = (P/mnk)^{1/3} = 0.1, blocks 10×10, every fiber chunk even — the
/// per-rank per-phase eq. (3) check applies to all 10^4 ranks. Runs in
/// the ordinary (debug) test suite.
#[test]
fn alg1_executes_at_p_10_4_with_exact_eq3_attribution() {
    scale_point("p10k", MatMulDims::new(250, 200, 200), [25, 20, 20], true, false);
}

/// P = 10^5 on the integral §5.2 grid [50, 50, 40] of
/// (1000, 1000, 800): t = 0.05, blocks 20×20, fiber chunks even. With
/// the structured tracer armed. Release-mode cell of `cargo xtask
/// scale-check`.
#[test]
#[ignore = "large-P release cell; run via cargo xtask scale-check"]
fn alg1_executes_at_p_10_5_with_exact_eq3_attribution() {
    scale_point("p100k", MatMulDims::new(1000, 1000, 800), [50, 50, 40], true, true);
}

/// P = 10^6 on the integral §5.2 grid [100, 100, 100] of
/// (100, 100, 100): t = 1, one element per block, so fiber chunks are
/// uneven and eq. (3) holds in aggregate (the per-rank exact check
/// needs even chunks). Release-mode cell of `cargo xtask scale-check`;
/// measured on one core: ~6 640 s at ~151 ranks/sec, 24 GB peak RSS.
#[test]
#[ignore = "million-rank release cell; run via cargo xtask scale-check"]
fn alg1_executes_at_p_10_6() {
    scale_point("p1m", MatMulDims::new(100, 100, 100), [100, 100, 100], false, false);
}
