//! Fault-injection and rank-failure recovery, end to end.
//!
//! The headline scenario (the PR's acceptance criterion): a seeded run
//! with ≥5% message drops plus a kill of one non-root rank mid-All-Gather
//! completes on the surviving grid with a **bitwise-correct** product,
//! replays byte-identically from the printed seed, and its meters separate
//! retry overhead from goodput — with the goodput exactly matching the
//! eq. (3) per-phase prediction on the recovery grid.
//!
//! Around it:
//! * a fault-rate × seed sweep across the three Theorem 3 regimes (1D /
//!   2D / 3D-leaning processor counts), driven by `cargo xtask
//!   fault-sweep` via the `PMM_FAULT_RATE` / `PMM_ENGINE` env knobs —
//!   the recovery runs here go through `run_async` +
//!   `engine_from_env`, so the same cells certify both engines;
//! * property tests for exactly-once delivery under arbitrary
//!   drop/duplicate/corrupt schedules, and for the `--faults` SPEC
//!   grammar round-tripping through `Display`/`FromStr` (including the
//!   multi-fault `cascade=`/`part=`/`storm=` clauses);
//! * cross-seed schedule invariance (`fuzz_schedules`) with a pinned
//!   fault plan — fault decisions are schedule-independent by
//!   construction, so values *and* retry meters agree across seeds;
//! * SUMMA recovery on its near-square shrunken grid through the
//!   generic [`run_recoverable`] wrapper;
//! * the uncaught-kill path on **both** engines: `World::run` /
//!   `run_async` report a typed rank failure naming the kill site and
//!   the replay seed, never a deadlock.

use pmm::prelude::*;
use pmm_simnet::{FaultPlan, RankFailed};
use proptest::prelude::*;

fn inputs(dims: MatMulDims) -> (Matrix, Matrix) {
    (
        random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 11),
        random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 22),
    )
}

fn reference(dims: MatMulDims) -> Matrix {
    let (a, b) = inputs(dims);
    gemm(&a, &b, Kernel::Naive)
}

/// Fault rate for the sweep tests: `PMM_FAULT_RATE` (a float) when set —
/// the `cargo xtask fault-sweep` matrix exports it — else `default`.
fn fault_rate_from_env(default: f64) -> f64 {
    match std::env::var("PMM_FAULT_RATE") {
        Ok(s) => s.trim().parse().unwrap_or_else(|_| panic!("bad PMM_FAULT_RATE: {s:?}")),
        Err(_) => default,
    }
}

/// Run Algorithm 1 under the generic recovery wrapper on a faulty world
/// and return the per-rank results plus reports. Honors `PMM_ENGINE`
/// (the fault-sweep matrix runs this on both backends).
fn run_recovery(
    dims: MatMulDims,
    p: usize,
    sched_seed: u64,
    plan: FaultPlan,
) -> WorldResult<Result<Recovered, RankFailed>> {
    World::new(p, MachineParams::BANDWIDTH_ONLY)
        .with_seed(sched_seed)
        .with_faults(plan)
        .with_engine(engine_from_env(Engine::Threads))
        .run_async(move |rank| {
            Box::pin(async move {
                let (a, b) = inputs(dims);
                let spec =
                    Recoverable::Alg1 { kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
                run_recoverable_a(rank, &spec, dims, &a, &b).await
            })
        })
}

/// Assemble C from the survivors' shares and assert bitwise equality with
/// the serial reference; returns (survivors, final plan, attempts).
fn check_recovered_product(
    dims: MatMulDims,
    out: &WorldResult<Result<Recovered, RankFailed>>,
) -> (Vec<usize>, AlgPlan, usize) {
    let ok = out
        .values
        .iter()
        .find_map(|v| v.as_ref().ok())
        .expect("at least one rank must survive and succeed");
    let survivors = ok.survivors.clone();
    let plan = ok.plan.clone();
    for &w in &survivors {
        let v = out.values[w].as_ref().unwrap_or_else(|e| panic!("survivor {w} failed: {e}"));
        assert_eq!(v.survivors, survivors, "survivors disagree across ranks");
        assert_eq!(v.plan, plan, "recovery layouts disagree across ranks");
    }
    let shares: Vec<CShare> = survivors
        .iter()
        .map(|&w| out.values[w].as_ref().expect("survivor").share.clone())
        .collect();
    let c = assemble_recovered(dims, &plan, &shares);
    assert_eq!(c, reference(dims), "recovered product must be bitwise-correct");
    (survivors, plan, ok.attempts())
}

fn alg1_phases(v: &Recovered) -> &Alg1Output {
    match &v.share {
        CShare::Chunk(out) => out,
        other => panic!("expected an Algorithm 1 share, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// The acceptance scenario
// ---------------------------------------------------------------------------

#[test]
fn killed_rank_mid_allgather_recovers_bitwise_on_surviving_grid() {
    // 9 ranks; op 1 is the checkpoint ring, ops 2–4 the three fiber
    // splits, so op 6 lands inside the All-Gather phase of the first
    // attempt. Rank 4 is not the root of anything special — a mid-grid
    // casualty.
    let dims = MatMulDims::new(24, 24, 24);
    let plan = FaultPlan::none()
        .with_seed(0xFA)
        .with_drop(0.08)
        .with_duplicate(0.02)
        .with_corrupt(0.02)
        .with_delay(0.03)
        .with_kill(4, 6);
    let out = run_recovery(dims, 9, 7, plan.clone());

    // The killed rank gets a typed error naming the fault-plan entry and
    // the replay seed — not a deadlock, not a panic.
    let failed = out.values[4].as_ref().expect_err("rank 4 was killed");
    assert_eq!(failed.rank, 4);
    assert!(failed.detail.contains("kill=4@6"), "{}", failed.detail);
    assert!(failed.detail.contains("PMM_SEED=7"), "{}", failed.detail);

    // Survivors agree, recover on the §5.2 grid for 8 ranks, and the
    // product is bitwise-correct.
    let (survivors, plan_used, attempts) = check_recovered_product(dims, &out);
    assert_eq!(survivors, vec![0, 1, 2, 3, 5, 6, 7, 8]);
    assert_eq!(plan_used, AlgPlan::Alg1 { grid: [2, 2, 2] }, "best grid for 8 ranks on a cube");
    assert_eq!(attempts, 2, "one abandoned attempt, one successful");

    // Retry overhead is real (≥5% drops must retransmit something) and
    // strictly separated from goodput: the successful attempt's per-phase
    // goodput matches eq. (3) on the recovery grid *exactly*.
    let total_retry: u64 = out.reports.iter().map(|r| r.meter.retry_overhead_words()).sum();
    assert!(total_retry > 0, "8% drops over 9 ranks must cause retransmissions");
    let pred = alg1_prediction(dims, [2, 2, 2]);
    for &w in &survivors {
        let v = out.values[w].as_ref().expect("survivor");
        for (ph, want) in alg1_phases(v).phases.iter().zip(pred.phases()) {
            assert_eq!(
                ph.meter.words_sent as f64, want,
                "rank {w} phase {:?}: goodput must equal eq. (3) despite faults",
                ph.label
            );
            assert_eq!(ph.meter.words_recv as f64, want, "rank {w} phase {:?} recv", ph.label);
        }
    }

    // Byte-identical replay from the printed seed: values, meters, times,
    // and schedule traces all reproduce.
    let replay = run_recovery(dims, 9, 7, plan);
    for (w, (x, y)) in out.values.iter().zip(&replay.values).enumerate() {
        match (x, y) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.share, b.share, "rank {w} share");
                assert_eq!(a.attempt_plans, b.attempt_plans, "rank {w} attempts");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "rank {w} failure"),
            _ => panic!("rank {w}: replay changed success/failure"),
        }
    }
    for (w, (x, y)) in out.reports.iter().zip(&replay.reports).enumerate() {
        assert_eq!(x.meter, y.meter, "rank {w} meter must replay exactly");
        assert_eq!(x.time, y.time, "rank {w} clock must replay exactly");
    }
    let (ta, tb) = (out.schedule_trace.expect("seeded"), replay.schedule_trace.expect("seeded"));
    assert_eq!(ta.render(), tb.render(), "schedule must replay byte-identically");
}

#[test]
fn recovery_goodput_matches_model_recovery_prediction() {
    let dims = MatMulDims::new(24, 24, 24);
    let plan = FaultPlan::none().with_seed(3).with_kill(4, 6);
    let out = run_recovery(dims, 9, 1, plan);
    let ok = out.values[0].as_ref().expect("rank 0 survives");
    let pred = recovery_prediction(dims, &ok.attempt_plans, &ok.attempt_survivors);
    assert_eq!(pred.attempts.len(), ok.attempts());
    // Final attempt: exact per-phase goodput match.
    let phases = pred.last().alg1_phases.as_ref().expect("final plan is an Alg1 grid");
    for (ph, want) in alg1_phases(ok).phases.iter().zip(phases.phases()) {
        assert_eq!(ph.meter.words_sent as f64, want, "phase {:?}", ph.label);
    }
    // The redistribution ring and the algorithm run sum to the model's
    // totals exactly across survivors …
    let survivors: Vec<&Recovered> = out.values.iter().filter_map(|v| v.as_ref().ok()).collect();
    let restore: u64 = survivors.iter().map(|v| v.restore_meter.words_sent).sum();
    let run: u64 = survivors.iter().map(|v| v.run_meter.words_sent).sum();
    assert_eq!(restore as f64, pred.last().restore_words_total, "redistribution goodput");
    assert_eq!(run as f64, pred.last().run_words_total, "final-attempt run goodput");
    // … and whole-run goodput (including the abandoned attempt's partial
    // traffic) stays within the model's upper bound.
    let whole: u64 = ok.survivors.iter().map(|&w| out.reports[w].meter.words_sent).sum();
    assert!(
        (whole as f64) <= pred.total_upper_bound_words() + 1e-9,
        "{whole} goodput words exceed the recovery upper bound {}",
        pred.total_upper_bound_words()
    );
}

// ---------------------------------------------------------------------------
// Multi-fault plans: cascades, partitions, storms
// ---------------------------------------------------------------------------

#[test]
fn cascading_kills_shrink_the_grid_twice() {
    let dims = MatMulDims::new(24, 24, 24);
    // Rank 4 dies by direct kill; rank 7 is armed to die once the fault
    // epoch reaches 1 (i.e. after the first death is detected).
    let plan = FaultPlan::none().with_seed(0xCA5).with_kill(4, 6).with_cascade(7, 1);
    let out = run_recovery(dims, 9, 11, plan);
    assert!(out.values[4].is_err(), "rank 4 killed directly");
    let cascaded = out.values[7].as_ref().expect_err("rank 7 killed by cascade");
    assert!(cascaded.detail.contains("cascade=7@1"), "{}", cascaded.detail);
    let (survivors, plan_used, attempts) = check_recovered_product(dims, &out);
    assert_eq!(survivors, vec![0, 1, 2, 3, 5, 6, 8]);
    assert!(attempts >= 2, "at least one abandoned attempt");
    assert_eq!(plan_used.active(), 7);
}

#[test]
fn healing_partition_delays_but_does_not_break_delivery() {
    let dims = MatMulDims::new(24, 12, 18);
    let grid = Grid3::new(2, 3, 2);
    let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
    let run = |plan: Option<FaultPlan>| {
        let cfg = cfg.clone();
        let mut world = World::new(12, MachineParams::BANDWIDTH_ONLY).with_seed(2);
        if let Some(p) = plan {
            world = world.with_faults(p);
        }
        world.run(move |rank: &mut Rank| {
            let (a, b) = inputs(dims);
            alg1(rank, &cfg, &a, &b).c_chunk
        })
    };
    let clean = run(None);
    // Ranks {0,1,2} cut off from the rest for seq window [0, 40), healing
    // at attempt 2: every cut-crossing copy with attempt < 2 blackholes.
    let parted =
        run(Some(FaultPlan::none().with_seed(0x9A97).with_partition(vec![0, 1, 2], 0..40, 2)));
    assert_eq!(clean.values, parted.values, "a healed partition must not change results");
    let retry: u64 = parted.reports.iter().map(|r| r.meter.retry_overhead_words()).sum();
    assert!(retry > 0, "cut-crossing copies must have been retransmitted");
    assert!(
        parted.critical_path_time() > clean.critical_path_time(),
        "blackholed attempts pay timeouts on the critical path"
    );
}

#[test]
fn straggler_storm_slows_the_clock_without_changing_traffic() {
    let dims = MatMulDims::new(24, 12, 18);
    let grid = Grid3::new(2, 3, 2);
    let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
    let run = |plan: Option<FaultPlan>| {
        let cfg = cfg.clone();
        let mut world = World::new(12, MachineParams::BANDWIDTH_ONLY).with_seed(1);
        if let Some(p) = plan {
            world = world.with_faults(p);
        }
        world.run(move |rank: &mut Rank| {
            let (a, b) = inputs(dims);
            alg1(rank, &cfg, &a, &b).c_chunk
        })
    };
    let clean = run(None);
    let stormed = run(Some(FaultPlan::none().with_seed(0x570).with_storm(0.5, 6.0)));
    assert_eq!(clean.values, stormed.values, "a storm must not change results");
    for (c, s) in clean.reports.iter().zip(&stormed.reports) {
        assert_eq!(c.meter, s.meter, "a storm must not change any meter");
    }
    assert!(
        stormed.critical_path_time() > clean.critical_path_time(),
        "half the ranks at 6× must stretch the critical path ({} vs {})",
        stormed.critical_path_time(),
        clean.critical_path_time()
    );
}

// ---------------------------------------------------------------------------
// Fault-rate sweep across the Theorem 3 regimes (xtask fault-sweep matrix)
// ---------------------------------------------------------------------------

/// One sweep cell: P ranks, a kill of `kill_rank` at `kill_op`, and
/// message faults at the env-controlled rate, across several seeds.
fn sweep_regime(p: usize, kill_rank: usize, kill_op: u64) {
    let dims = MatMulDims::new(96, 24, 12);
    let rate = fault_rate_from_env(0.05);
    for sched_seed in [1u64, 0xC0FFEE] {
        let mut plan = FaultPlan::none()
            .with_seed(0xBAD5EED ^ p as u64)
            .with_drop(rate * 0.6)
            .with_duplicate(rate * 0.2)
            .with_corrupt(rate * 0.2)
            .with_kill(kill_rank, kill_op);
        plan.timeout = 4.0;
        let out = run_recovery(dims, p, sched_seed, plan);
        let failed = out.values[kill_rank].as_ref().expect_err("killed rank errors");
        assert_eq!(failed.rank, kill_rank);
        let (survivors, plan_used, _) = check_recovered_product(dims, &out);
        assert_eq!(survivors.len(), p - 1);
        // Goodput exactness on divisible recovery grids (the sweep keeps
        // the oracle sharp wherever the model is exact).
        let AlgPlan::Alg1 { grid } = plan_used else { panic!("Alg1 spec yields Alg1 plans") };
        if dims.divisible_by(grid) {
            let pred = alg1_prediction(dims, grid);
            let v = out.values[survivors[0]].as_ref().expect("survivor");
            for (ph, want) in alg1_phases(v).phases.iter().zip(pred.phases()) {
                assert_eq!(ph.meter.words_sent as f64, want, "P={p} phase {:?}", ph.label);
            }
        }
    }
}

#[test]
fn fault_sweep_1d_regime() {
    // P = 3 on (96, 24, 12) is the 1D case; killing rank 2 shrinks to 2.
    sweep_regime(3, 2, 5);
}

#[test]
fn fault_sweep_2d_regime() {
    // P = 16 is the 2D case for these dims.
    sweep_regime(16, 5, 6);
}

#[test]
fn fault_sweep_3d_regime() {
    // P = 64 is deep in the 3D case.
    sweep_regime(64, 17, 7);
}

// ---------------------------------------------------------------------------
// Reliable delivery: exactly-once under arbitrary fault schedules
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Whatever mix of drops, duplicates, corruption, and delays the plan
    // throws at a 2-rank pipe, the receiver sees every message exactly
    // once, in order, with uncorrupted payloads — and the goodput meters
    // count each message exactly once while all waste lands in the
    // retry counters. (Plain `//` comment: the shimmed `proptest!` only
    // matches a bare `#[test]`, and a doc comment desugars to `#[doc]`.)
    #[test]
    fn delivery_is_exactly_once_in_order_and_uncorrupted(
        fault_seed in 0u64..1_000_000,
        drop in 0.0f64..0.45,
        dup in 0.0f64..0.15,
        corrupt in 0.0f64..0.15,
        delay in 0.0f64..0.15,
        n_msgs in 1usize..24,
    ) {
        let mut plan = FaultPlan::none()
            .with_seed(fault_seed)
            .with_drop(drop)
            .with_duplicate(dup)
            .with_corrupt(corrupt)
            .with_delay(delay);
        plan.max_retries = 64;
        let out = World::new(2, MachineParams::BANDWIDTH_ONLY)
            .with_seed(9)
            .with_faults(plan)
            .run(move |rank| {
                let wc = rank.world_comm();
                if rank.world_rank() == 0 {
                    for i in 0..n_msgs {
                        // Distinct sizes and values so reordering,
                        // duplication, or corruption cannot cancel out.
                        let w = 1 + (i % 5);
                        rank.send(&wc, 1, &vec![i as f64 + 0.25; w]);
                    }
                    Vec::new()
                } else {
                    (0..n_msgs)
                        .map(|_| rank.recv(&wc, 0).payload)
                        .collect::<Vec<_>>()
                }
            });
        let got = &out.values[1];
        prop_assert_eq!(got.len(), n_msgs);
        let mut goodput_words = 0u64;
        for (i, payload) in got.iter().enumerate() {
            prop_assert_eq!(payload.len(), 1 + (i % 5), "message {} size", i);
            prop_assert!(
                payload.iter().all(|&v| v == i as f64 + 0.25),
                "message {} corrupted: {:?}", i, payload
            );
            goodput_words += payload.len() as u64;
        }
        let m1 = out.reports[1].meter;
        prop_assert_eq!(m1.words_recv, goodput_words, "goodput counts each word once");
        prop_assert_eq!(m1.msgs_recv, n_msgs as u64, "goodput counts each message once");
    }

    // The full --faults SPEC grammar round-trips: any valid plan built
    // from rates, kills, stragglers, cascades, partitions, and a storm
    // prints to a spec that parses back to the identical plan (f64
    // Display in Rust is shortest-round-trip, so equality is exact).
    #[test]
    fn fault_plan_grammar_round_trips(
        pin_seed in 0u8..2,
        seed in 0u64..u64::MAX,
        drop in 0.0f64..0.4,
        dup in 0.0f64..0.2,
        corrupt in 0.0f64..0.2,
        delay in 0.0f64..0.2,
        kills in proptest::collection::vec((0usize..64, 1u64..100), 0..3),
        stragglers in proptest::collection::vec((0usize..64, 1.5f64..10.0), 0..2),
        cascades in proptest::collection::vec((0usize..64, 1u64..8), 0..3),
        partitions in proptest::collection::vec(
            (proptest::collection::vec(0usize..64, 1..4), 0u64..50, 1u64..50, 1u32..16),
            0..2,
        ),
        has_storm in 0u8..2,
        storm in (0.0f64..0.9, 1.5f64..10.0),
    ) {
        let mut plan = FaultPlan::none()
            .with_drop(drop)
            .with_duplicate(dup)
            .with_corrupt(corrupt)
            .with_delay(delay);
        if pin_seed == 1 {
            plan = plan.with_seed(seed);
        }
        for (r, at) in kills {
            plan = plan.with_kill(r, at);
        }
        for (r, f) in stragglers {
            plan = plan.with_straggler(r, f);
        }
        for (r, e) in cascades {
            plan = plan.with_cascade(r, e);
        }
        for (ranks, lo, len, heal) in partitions {
            plan = plan.with_partition(ranks, lo..lo + len, heal);
        }
        if has_storm == 1 {
            plan = plan.with_storm(storm.0, storm.1);
        }
        let spec = plan.to_string();
        let parsed: FaultPlan = spec.parse().unwrap_or_else(|e| {
            panic!("spec {spec:?} failed to parse: {e}")
        });
        prop_assert_eq!(parsed, plan, "spec was {}", spec);
    }
}

// ---------------------------------------------------------------------------
// Schedule independence with a pinned fault plan
// ---------------------------------------------------------------------------

#[test]
fn fault_decisions_are_schedule_independent_across_seeds() {
    // fuzz_schedules compares values, full meters (including the retry
    // counters), times, and peak memory across schedule seeds. Fault
    // decisions hash (fault seed, channel, seq, attempt) — never
    // arrival order — so a *pinned* fault seed must give identical
    // results under every interleaving. The plan includes a healing
    // partition and a storm: both are pure hashes too.
    let dims = MatMulDims::new(24, 12, 18);
    let grid = Grid3::new(2, 3, 2);
    let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
    let plan = FaultPlan::none()
        .with_seed(0x5EED_FA17)
        .with_drop(0.10)
        .with_duplicate(0.05)
        .with_corrupt(0.05)
        .with_partition(vec![0, 1], 3..9, 2)
        .with_storm(0.25, 3.0);
    let world = World::new(12, MachineParams::BANDWIDTH_ONLY).with_faults(plan);
    let program = move |rank: &mut Rank| {
        let (a, b) = inputs(dims);
        alg1(rank, &cfg, &a, &b).c_chunk
    };
    fuzz_schedules(&world, &[1, 2, 3, 4], program).unwrap_or_else(|d| panic!("{d}"));
}

// ---------------------------------------------------------------------------
// SUMMA recovery (through the generic wrapper)
// ---------------------------------------------------------------------------

#[test]
fn summa_recovers_on_near_square_survivor_grid() {
    let dims = MatMulDims::new(12, 6, 8);
    // 3×2 grid of 6; kill rank 3 early — 5 survivors refactor to 1×5.
    let plan = FaultPlan::none().with_seed(0xF0).with_drop(0.05).with_kill(3, 3);
    let out = World::new(6, MachineParams::BANDWIDTH_ONLY).with_seed(5).with_faults(plan).run(
        move |rank| {
            let (a, b) = inputs(dims);
            run_recoverable(rank, &Recoverable::Summa { kernel: Kernel::Naive }, dims, &a, &b)
        },
    );
    assert!(out.values[3].is_err(), "killed rank reports failure");
    let ok = out.values[0].as_ref().expect("rank 0 survives");
    let (pr, pc) = pmm_algs::near_square_factors(5);
    assert_eq!(ok.plan, AlgPlan::Summa { pr, pc });
    assert_eq!(ok.survivors, vec![0, 1, 2, 4, 5]);
    assert!(ok.attempts() >= 2);
    let (survivors, plan_used, _) = check_recovered_product(dims, &out);
    assert_eq!(survivors.len(), 5);
    assert_eq!(plan_used.algorithm(), "summa");
}

// ---------------------------------------------------------------------------
// Failure reporting (both engines)
// ---------------------------------------------------------------------------

/// The uncaught-kill program: no `catch_failures` anywhere, so the kill
/// must surface as a typed world-level failure naming the fault-plan
/// entry and the replay seed — never as a deadlock or divergence abort.
fn assert_uncaught_kill_reports_rank_failure(engine: Engine) {
    let err = std::panic::catch_unwind(|| {
        World::new(3, MachineParams::BANDWIDTH_ONLY)
            .with_seed(7)
            .with_faults(FaultPlan::none().with_kill(1, 1))
            .with_engine(engine)
            .run_async(|rank| {
                Box::pin(async move {
                    let wc = rank.world_comm();
                    let partner = (rank.world_rank() + 1) % 3;
                    let from = (rank.world_rank() + 2) % 3;
                    rank.exchange_a(&wc, partner, from, &[1.0]).await.payload[0]
                })
            })
    })
    .expect_err("uncaught kill must fail the run");
    let msg = err.downcast_ref::<String>().expect("panic message is a String");
    // Two reporters can win the race: the verifier (if survivors block on
    // the dead rank first) or the world join loop (if the killed rank's
    // panic surfaces first). Both must name the fault, never a deadlock.
    assert!(msg.contains("rank failure"), "[{engine:?}] {msg}");
    assert!(msg.contains("kill=1@1"), "[{engine:?}] {msg}");
    assert!(
        !msg.contains("deadlock detected"),
        "[{engine:?}] must not misreport as deadlock: {msg}"
    );
    assert!(!msg.contains("diverged"), "[{engine:?}] must not misreport as divergence: {msg}");
    assert!(msg.contains("PMM_SEED=7"), "[{engine:?}] report must carry the replay seed: {msg}");
}

#[test]
fn uncaught_kill_reports_rank_failure_not_deadlock() {
    assert_uncaught_kill_reports_rank_failure(Engine::Threads);
}

#[test]
fn uncaught_kill_reports_rank_failure_not_deadlock_on_event_loop() {
    assert_uncaught_kill_reports_rank_failure(Engine::EventLoop);
}

#[test]
fn straggler_slows_the_clock_without_changing_traffic() {
    let dims = MatMulDims::new(24, 12, 18);
    let grid = Grid3::new(2, 3, 2);
    let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
    let run = |plan: Option<FaultPlan>| {
        let cfg = cfg.clone();
        let mut world = World::new(12, MachineParams::BANDWIDTH_ONLY).with_seed(1);
        if let Some(p) = plan {
            world = world.with_faults(p);
        }
        world.run(move |rank: &mut Rank| {
            let (a, b) = inputs(dims);
            alg1(rank, &cfg, &a, &b).c_chunk
        })
    };
    let clean = run(None);
    let slowed = run(Some(FaultPlan::none().with_straggler(5, 4.0)));
    assert_eq!(clean.values, slowed.values, "straggler must not change results");
    for (c, s) in clean.reports.iter().zip(&slowed.reports) {
        assert_eq!(c.meter, s.meter, "straggler must not change any meter");
    }
    assert!(
        slowed.critical_path_time() > clean.critical_path_time(),
        "a 4× straggler must stretch the critical path ({} vs {})",
        slowed.critical_path_time(),
        clean.critical_path_time()
    );
}
