//! Fault-injection and rank-failure recovery, end to end.
//!
//! The headline scenario (the PR's acceptance criterion): a seeded run
//! with ≥5% message drops plus a kill of one non-root rank mid-All-Gather
//! completes on the surviving grid with a **bitwise-correct** product,
//! replays byte-identically from the printed seed, and its meters separate
//! retry overhead from goodput — with the goodput exactly matching the
//! eq. (3) per-phase prediction on the recovery grid.
//!
//! Around it:
//! * a fault-rate × seed sweep across the three Theorem 3 regimes (1D /
//!   2D / 3D-leaning processor counts), driven by `cargo xtask
//!   fault-sweep` via the `PMM_FAULT_RATE` env knob;
//! * property tests for exactly-once delivery under arbitrary
//!   drop/duplicate/corrupt schedules;
//! * cross-seed schedule invariance (`fuzz_schedules`) with a pinned
//!   fault plan — fault decisions are schedule-independent by
//!   construction, so values *and* retry meters agree across seeds;
//! * SUMMA recovery on its near-square shrunken grid;
//! * the uncaught-kill path: `World::run` reports a typed rank failure,
//!   not a deadlock.

use pmm::prelude::*;
use pmm_simnet::{FaultPlan, RankFailed};
use proptest::prelude::*;

fn inputs(dims: MatMulDims) -> (Matrix, Matrix) {
    (
        random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 11),
        random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 22),
    )
}

fn reference(dims: MatMulDims) -> Matrix {
    let (a, b) = inputs(dims);
    gemm(&a, &b, Kernel::Naive)
}

/// Fault rate for the sweep tests: `PMM_FAULT_RATE` (a float) when set —
/// the `cargo xtask fault-sweep` matrix exports it — else `default`.
fn fault_rate_from_env(default: f64) -> f64 {
    match std::env::var("PMM_FAULT_RATE") {
        Ok(s) => s.trim().parse().unwrap_or_else(|_| panic!("bad PMM_FAULT_RATE: {s:?}")),
        Err(_) => default,
    }
}

/// Run `alg1_with_recovery` on a faulty world and return the per-rank
/// results plus reports.
fn run_recovery(
    dims: MatMulDims,
    p: usize,
    sched_seed: u64,
    plan: FaultPlan,
) -> WorldResult<Result<RecoveryOutput, RankFailed>> {
    World::new(p, MachineParams::BANDWIDTH_ONLY).with_seed(sched_seed).with_faults(plan).run(
        move |rank| {
            let (a, b) = inputs(dims);
            alg1_with_recovery(rank, dims, Kernel::Naive, Assembly::ReduceScatter, &a, &b)
        },
    )
}

/// Assemble C from the survivors' chunks and assert bitwise equality with
/// the serial reference; returns (survivors, recovery grid, attempts).
fn check_recovered_product(
    dims: MatMulDims,
    out: &WorldResult<Result<RecoveryOutput, RankFailed>>,
) -> (Vec<usize>, [usize; 3], usize) {
    let ok = out
        .values
        .iter()
        .find_map(|v| v.as_ref().ok())
        .expect("at least one rank must survive and succeed");
    let survivors = ok.survivors.clone();
    let grid = ok.grid;
    for &w in &survivors {
        let v = out.values[w].as_ref().unwrap_or_else(|e| panic!("survivor {w} failed: {e}"));
        assert_eq!(v.survivors, survivors, "survivors disagree across ranks");
        assert_eq!(v.grid.dims(), grid.dims(), "recovery grids disagree across ranks");
    }
    let chunks: Vec<Vec<f64>> = survivors
        .iter()
        .map(|&w| out.values[w].as_ref().expect("survivor").output.c_chunk.clone())
        .collect();
    let c = assemble_c(dims, grid, &chunks);
    assert_eq!(c, reference(dims), "recovered product must be bitwise-correct");
    (survivors, grid.dims(), ok.attempts())
}

// ---------------------------------------------------------------------------
// The acceptance scenario
// ---------------------------------------------------------------------------

#[test]
fn killed_rank_mid_allgather_recovers_bitwise_on_surviving_grid() {
    // 9 ranks; ops 1–3 are the three fiber splits, so op 5 lands inside
    // the All-Gather phase of the first attempt. Rank 4 is not the root
    // of anything special — a mid-grid casualty.
    let dims = MatMulDims::new(24, 24, 24);
    let plan = FaultPlan::none()
        .with_seed(0xFA)
        .with_drop(0.08)
        .with_duplicate(0.02)
        .with_corrupt(0.02)
        .with_delay(0.03)
        .with_kill(4, 5);
    let out = run_recovery(dims, 9, 7, plan.clone());

    // The killed rank gets a typed error naming the fault-plan entry and
    // the replay seed — not a deadlock, not a panic.
    let failed = out.values[4].as_ref().expect_err("rank 4 was killed");
    assert_eq!(failed.rank, 4);
    assert!(failed.detail.contains("kill=4@5"), "{}", failed.detail);
    assert!(failed.detail.contains("PMM_SEED=7"), "{}", failed.detail);

    // Survivors agree, recover on the §5.2 grid for 8 ranks, and the
    // product is bitwise-correct.
    let (survivors, grid, attempts) = check_recovered_product(dims, &out);
    assert_eq!(survivors, vec![0, 1, 2, 3, 5, 6, 7, 8]);
    assert_eq!(grid, [2, 2, 2], "best grid for 8 ranks on a cube");
    assert_eq!(attempts, 2, "one abandoned attempt, one successful");

    // Retry overhead is real (≥5% drops must retransmit something) and
    // strictly separated from goodput: the successful attempt's per-phase
    // goodput matches eq. (3) on the recovery grid *exactly*.
    let total_retry: u64 = out.reports.iter().map(|r| r.meter.retry_overhead_words()).sum();
    assert!(total_retry > 0, "8% drops over 9 ranks must cause retransmissions");
    let pred = alg1_prediction(dims, grid);
    for &w in &survivors {
        let v = out.values[w].as_ref().expect("survivor");
        for (ph, want) in v.output.phases.iter().zip(pred.phases()) {
            assert_eq!(
                ph.meter.words_sent as f64, want,
                "rank {w} phase {:?}: goodput must equal eq. (3) despite faults",
                ph.label
            );
            assert_eq!(ph.meter.words_recv as f64, want, "rank {w} phase {:?} recv", ph.label);
        }
    }

    // Byte-identical replay from the printed seed: values, meters, times,
    // and schedule traces all reproduce.
    let replay = run_recovery(dims, 9, 7, plan);
    for (w, (x, y)) in out.values.iter().zip(&replay.values).enumerate() {
        match (x, y) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.output.c_chunk, b.output.c_chunk, "rank {w} chunk");
                assert_eq!(a.attempt_grids, b.attempt_grids, "rank {w} attempts");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "rank {w} failure"),
            _ => panic!("rank {w}: replay changed success/failure"),
        }
    }
    for (w, (x, y)) in out.reports.iter().zip(&replay.reports).enumerate() {
        assert_eq!(x.meter, y.meter, "rank {w} meter must replay exactly");
        assert_eq!(x.time, y.time, "rank {w} clock must replay exactly");
    }
    let (ta, tb) = (out.schedule_trace.expect("seeded"), replay.schedule_trace.expect("seeded"));
    assert_eq!(ta.render(), tb.render(), "schedule must replay byte-identically");
}

#[test]
fn recovery_goodput_matches_model_recovery_prediction() {
    let dims = MatMulDims::new(24, 24, 24);
    let plan = FaultPlan::none().with_seed(3).with_kill(4, 5);
    let out = run_recovery(dims, 9, 1, plan);
    let ok = out.values[0].as_ref().expect("rank 0 survives");
    let pred = recovery_prediction(dims, &ok.attempt_grids);
    assert_eq!(pred.attempts.len(), ok.attempts());
    // Final attempt: exact per-phase goodput match.
    for (ph, want) in ok.output.phases.iter().zip(pred.last().phases()) {
        assert_eq!(ph.meter.words_sent as f64, want, "phase {:?}", ph.label);
    }
    // Whole-run goodput (including the abandoned attempt's partial
    // traffic) stays within the model's upper bound.
    for &w in &ok.survivors {
        let words = out.reports[w].meter.words_sent as f64;
        assert!(
            words <= pred.total_upper_bound() + 1e-9,
            "rank {w}: {words} goodput words exceed the recovery upper bound {}",
            pred.total_upper_bound()
        );
    }
}

// ---------------------------------------------------------------------------
// Fault-rate sweep across the Theorem 3 regimes (xtask fault-sweep matrix)
// ---------------------------------------------------------------------------

/// One sweep cell: P ranks, a kill of `kill_rank` at `kill_op`, and
/// message faults at the env-controlled rate, across several seeds.
fn sweep_regime(p: usize, kill_rank: usize, kill_op: u64) {
    let dims = MatMulDims::new(96, 24, 12);
    let rate = fault_rate_from_env(0.05);
    for sched_seed in [1u64, 0xC0FFEE] {
        let mut plan = FaultPlan::none()
            .with_seed(0xBAD5EED ^ p as u64)
            .with_drop(rate * 0.6)
            .with_duplicate(rate * 0.2)
            .with_corrupt(rate * 0.2)
            .with_kill(kill_rank, kill_op);
        plan.timeout = 4.0;
        let out = run_recovery(dims, p, sched_seed, plan);
        let failed = out.values[kill_rank].as_ref().expect_err("killed rank errors");
        assert_eq!(failed.rank, kill_rank);
        let (survivors, grid, _) = check_recovered_product(dims, &out);
        assert_eq!(survivors.len(), p - 1);
        // Goodput exactness on divisible recovery grids (the sweep keeps
        // the oracle sharp wherever the model is exact).
        if dims.divisible_by(grid) {
            let pred = alg1_prediction(dims, grid);
            let v = out.values[survivors[0]].as_ref().expect("survivor");
            for (ph, want) in v.output.phases.iter().zip(pred.phases()) {
                assert_eq!(ph.meter.words_sent as f64, want, "P={p} phase {:?}", ph.label);
            }
        }
    }
}

#[test]
fn fault_sweep_1d_regime() {
    // P = 3 on (96, 24, 12) is the 1D case; killing rank 2 shrinks to 2.
    sweep_regime(3, 2, 4);
}

#[test]
fn fault_sweep_2d_regime() {
    // P = 16 is the 2D case for these dims.
    sweep_regime(16, 5, 5);
}

#[test]
fn fault_sweep_3d_regime() {
    // P = 64 is deep in the 3D case.
    sweep_regime(64, 17, 6);
}

// ---------------------------------------------------------------------------
// Reliable delivery: exactly-once under arbitrary fault schedules
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Whatever mix of drops, duplicates, corruption, and delays the plan
    // throws at a 2-rank pipe, the receiver sees every message exactly
    // once, in order, with uncorrupted payloads — and the goodput meters
    // count each message exactly once while all waste lands in the
    // retry counters. (Plain `//` comment: the shimmed `proptest!` only
    // matches a bare `#[test]`, and a doc comment desugars to `#[doc]`.)
    #[test]
    fn delivery_is_exactly_once_in_order_and_uncorrupted(
        fault_seed in 0u64..1_000_000,
        drop in 0.0f64..0.45,
        dup in 0.0f64..0.15,
        corrupt in 0.0f64..0.15,
        delay in 0.0f64..0.15,
        n_msgs in 1usize..24,
    ) {
        let mut plan = FaultPlan::none()
            .with_seed(fault_seed)
            .with_drop(drop)
            .with_duplicate(dup)
            .with_corrupt(corrupt)
            .with_delay(delay);
        plan.max_retries = 64;
        let out = World::new(2, MachineParams::BANDWIDTH_ONLY)
            .with_seed(9)
            .with_faults(plan)
            .run(move |rank| {
                let wc = rank.world_comm();
                if rank.world_rank() == 0 {
                    for i in 0..n_msgs {
                        // Distinct sizes and values so reordering,
                        // duplication, or corruption cannot cancel out.
                        let w = 1 + (i % 5);
                        rank.send(&wc, 1, &vec![i as f64 + 0.25; w]);
                    }
                    Vec::new()
                } else {
                    (0..n_msgs)
                        .map(|_| rank.recv(&wc, 0).payload)
                        .collect::<Vec<_>>()
                }
            });
        let got = &out.values[1];
        prop_assert_eq!(got.len(), n_msgs);
        let mut goodput_words = 0u64;
        for (i, payload) in got.iter().enumerate() {
            prop_assert_eq!(payload.len(), 1 + (i % 5), "message {} size", i);
            prop_assert!(
                payload.iter().all(|&v| v == i as f64 + 0.25),
                "message {} corrupted: {:?}", i, payload
            );
            goodput_words += payload.len() as u64;
        }
        let m1 = out.reports[1].meter;
        prop_assert_eq!(m1.words_recv, goodput_words, "goodput counts each word once");
        prop_assert_eq!(m1.msgs_recv, n_msgs as u64, "goodput counts each message once");
    }
}

// ---------------------------------------------------------------------------
// Schedule independence with a pinned fault plan
// ---------------------------------------------------------------------------

#[test]
fn fault_decisions_are_schedule_independent_across_seeds() {
    // fuzz_schedules compares values, full meters (including the retry
    // counters), times, and peak memory across schedule seeds. Fault
    // decisions hash (fault seed, channel, seq, attempt) — never
    // arrival order — so a *pinned* fault seed must give identical
    // results under every interleaving.
    let dims = MatMulDims::new(24, 12, 18);
    let grid = Grid3::new(2, 3, 2);
    let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
    let plan = FaultPlan::none()
        .with_seed(0x5EED_FA17)
        .with_drop(0.10)
        .with_duplicate(0.05)
        .with_corrupt(0.05);
    let world = World::new(12, MachineParams::BANDWIDTH_ONLY).with_faults(plan);
    let program = move |rank: &mut Rank| {
        let (a, b) = inputs(dims);
        alg1(rank, &cfg, &a, &b).c_chunk
    };
    fuzz_schedules(&world, &[1, 2, 3, 4], program).unwrap_or_else(|d| panic!("{d}"));
}

// ---------------------------------------------------------------------------
// SUMMA recovery
// ---------------------------------------------------------------------------

#[test]
fn summa_recovers_on_near_square_survivor_grid() {
    let dims = MatMulDims::new(12, 6, 8);
    // 3×2 grid of 6; kill rank 3 early — 5 survivors refactor to 1×5.
    let plan = FaultPlan::none().with_seed(0xF0).with_drop(0.05).with_kill(3, 3);
    let out = World::new(6, MachineParams::BANDWIDTH_ONLY).with_seed(5).with_faults(plan).run(
        move |rank| {
            let (a, b) = inputs(dims);
            summa_with_recovery(rank, dims, Kernel::Naive, &a, &b)
        },
    );
    assert!(out.values[3].is_err(), "killed rank reports failure");
    let ok = out.values[0].as_ref().expect("rank 0 survives");
    assert_eq!((ok.pr, ok.pc), pmm_algs::near_square_factors(5));
    assert_eq!(ok.survivors, vec![0, 1, 2, 4, 5]);
    assert!(ok.attempts >= 2);
    let (pr, pc) = (ok.pr, ok.pc);
    let survivors = ok.survivors.clone();
    let c = assemble_from_blocks(dims.n1 as usize, dims.n3 as usize, pr, pc, |i, j| {
        let w = survivors[i * pc + j];
        out.values[w].as_ref().expect("survivor").output.c_block.clone()
    });
    assert_eq!(c, reference(dims), "SUMMA recovery product must be bitwise-correct");
}

// ---------------------------------------------------------------------------
// Failure reporting
// ---------------------------------------------------------------------------

#[test]
fn uncaught_kill_reports_rank_failure_not_deadlock() {
    let err = std::panic::catch_unwind(|| {
        World::new(3, MachineParams::BANDWIDTH_ONLY)
            .with_seed(7)
            .with_faults(FaultPlan::none().with_kill(1, 1))
            .run(|rank| {
                let wc = rank.world_comm();
                // No catch_failures anywhere: the kill must surface as a
                // typed world-level failure.
                let partner = (rank.world_rank() + 1) % 3;
                let from = (rank.world_rank() + 2) % 3;
                rank.exchange(&wc, partner, from, &[1.0]).payload[0]
            })
    })
    .expect_err("uncaught kill must fail the run");
    let msg = err.downcast_ref::<String>().expect("panic message is a String");
    // Two reporters can win the race: the verifier (if survivors block on
    // the dead rank first) or the world join loop (if the killed rank's
    // panic surfaces first). Both must name the fault, never a deadlock.
    assert!(msg.contains("rank failure"), "{msg}");
    assert!(msg.contains("kill=1@1"), "{msg}");
    assert!(!msg.contains("deadlock detected"), "must not misreport as deadlock: {msg}");
    assert!(msg.contains("PMM_SEED=7"), "report must carry the replay seed: {msg}");
}

#[test]
fn straggler_slows_the_clock_without_changing_traffic() {
    let dims = MatMulDims::new(24, 12, 18);
    let grid = Grid3::new(2, 3, 2);
    let cfg = Alg1Config { dims, grid, kernel: Kernel::Naive, assembly: Assembly::ReduceScatter };
    let run = |plan: Option<FaultPlan>| {
        let cfg = cfg.clone();
        let mut world = World::new(12, MachineParams::BANDWIDTH_ONLY).with_seed(1);
        if let Some(p) = plan {
            world = world.with_faults(p);
        }
        world.run(move |rank: &mut Rank| {
            let (a, b) = inputs(dims);
            alg1(rank, &cfg, &a, &b).c_chunk
        })
    };
    let clean = run(None);
    let slowed = run(Some(FaultPlan::none().with_straggler(5, 4.0)));
    assert_eq!(clean.values, slowed.values, "straggler must not change results");
    for (c, s) in clean.reports.iter().zip(&slowed.reports) {
        assert_eq!(c.meter, s.meter, "straggler must not change any meter");
    }
    assert!(
        slowed.critical_path_time() > clean.critical_path_time(),
        "a 4× straggler must stretch the critical path ({} vs {})",
        slowed.critical_path_time(),
        clean.critical_path_time()
    );
}
