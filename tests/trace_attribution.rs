//! Structured-trace attribution gate (`cargo xtask trace-check`).
//!
//! Runs Algorithm 1 with tracing enabled over the same pinned sweep the
//! conformance suite uses ((m, n, k, P) points spanning all three
//! Theorem 3 regimes plus both boundaries) and asserts that the trace is
//! a faithful, deterministic account of the run:
//!
//! (a) per-phase word totals extracted from the event trace equal the
//!     meter-diff phase accounting the algorithm itself reports, and on
//!     evenly-chunked grids equal the eq. (3) prediction **exactly**
//!     (`Tracer::attribution` reports no divergent phase);
//! (b) the trace's critical-path total reproduces the simulator's clock
//!     (`WorldResult::critical_path_time`) and is never below any rank's
//!     duplex goodput words;
//! (c) the Chrome trace_event JSON export is byte-stable for a pinned
//!     `(program, seed)` — goldens and CI diffs can rely on it.
//!
//! Every run is seeded via `PMM_SEED` (see `pmm_simnet::seed_from_env`),
//! so `cargo xtask trace-check` can sweep the pinned replay seeds.

use pmm::prelude::*;

/// Default schedule seed; override with `PMM_SEED`.
const DEFAULT_SEED: u64 = 0x00C0_FFEE;

fn seed() -> u64 {
    let s = seed_from_env(DEFAULT_SEED);
    eprintln!("trace_attribution: schedule seed {s} (replay with PMM_SEED={s})");
    s
}

fn inputs(dims: MatMulDims) -> (Matrix, Matrix) {
    (
        random_int_matrix(dims.n1 as usize, dims.n2 as usize, -3..4, 11),
        random_int_matrix(dims.n2 as usize, dims.n3 as usize, -3..4, 22),
    )
}

/// The conformance sweep's (dims, P) points: instance A walks
/// 1D-interior → boundary → 2D-interior → boundary → 3D-interior,
/// instance B adds a 3D point whose §5.2 optimal grid is integral.
fn sweep() -> Vec<(MatMulDims, usize)> {
    let a = MatMulDims::new(96, 24, 12);
    let b = MatMulDims::new(32, 16, 8);
    vec![(a, 2), (a, 4), (a, 8), (a, 16), (a, 64), (b, 64)]
}

/// The grid a sweep point runs on: the best factorization that divides
/// the dimensions (always exists for these points).
fn divisible_grid(dims: MatMulDims, p: usize) -> [usize; 3] {
    best_divisible_grid(dims, p)
        .unwrap_or_else(|| panic!("no divisible factorization of {p} for {dims}"))
        .grid
}

/// Eq. (3) is phase-by-phase exact iff every fiber collective works on
/// even chunks (same predicate as the conformance suite).
fn phase_exact(dims: MatMulDims, grid: [usize; 3]) -> bool {
    let [p1, p2, p3] = grid;
    if !dims.divisible_by(grid) {
        return false;
    }
    let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
    let a_block = (n1 / p1) * (n2 / p2);
    let b_block = (n2 / p2) * (n3 / p3);
    let c_block = (n1 / p1) * (n3 / p3);
    a_block % p3 == 0 && b_block % p1 == 0 && c_block % p2 == 0
}

fn traced_run(
    dims: MatMulDims,
    grid: [usize; 3],
    seed: u64,
) -> pmm::simnet::WorldResult<Alg1Output> {
    let g = Grid3::from_dims(grid);
    let cfg = Alg1Config::new(dims, g);
    World::new(g.size(), MachineParams::BANDWIDTH_ONLY).with_seed(seed).with_trace(true).run(
        move |rank| {
            let (a, b) = inputs(dims);
            alg1(rank, &cfg, &a, &b)
        },
    )
}

#[test]
fn trace_phase_words_match_the_meter_diff_accounting() {
    let seed = seed();
    for (dims, p) in sweep() {
        let grid = divisible_grid(dims, p);
        let out = traced_run(dims, grid, seed);
        let tracer = out.tracer().expect("tracing was on");
        let totals = tracer.phase_totals();
        // Every meter-diff phase the algorithm reports must appear in the
        // trace with identical per-rank sent/received words.
        for (r, v) in out.values.iter().enumerate() {
            for ph in &v.phases {
                let t = totals
                    .iter()
                    .find(|t| t.label == ph.label)
                    .unwrap_or_else(|| panic!("phase '{}' missing from trace", ph.label));
                assert_eq!(
                    (t.sent[r], t.recv[r]),
                    (ph.meter.words_sent, ph.meter.words_recv),
                    "{dims} P={p} grid {grid:?}: rank {r} phase '{}' [PMM_SEED={seed}]",
                    ph.label
                );
            }
        }
    }
}

#[test]
fn attribution_is_exact_on_evenly_chunked_grids() {
    let seed = seed();
    let mut exact_points = 0;
    for (dims, p) in sweep() {
        let grid = divisible_grid(dims, p);
        if !phase_exact(dims, grid) {
            continue;
        }
        exact_points += 1;
        let out = traced_run(dims, grid, seed);
        let tracer = out.tracer().expect("tracing was on");
        let pred = alg1_prediction(dims, grid);
        let attribution = tracer.attribution(&[
            ("all-gather A", pred.allgather_a),
            ("all-gather B", pred.allgather_b),
            ("reduce-scatter C", pred.reduce_c),
        ]);
        assert!(
            attribution.matches(),
            "{dims} P={p} grid {grid:?} [PMM_SEED={seed}]:\n{attribution}"
        );
    }
    assert!(exact_points >= 3, "sweep must retain enough evenly-chunked points");
}

#[test]
fn critical_path_reproduces_the_clock_and_dominates_goodput() {
    let seed = seed();
    for (dims, p) in sweep() {
        let grid = divisible_grid(dims, p);
        let out = traced_run(dims, grid, seed);
        let tracer = out.tracer().expect("tracing was on");
        let cp = tracer.critical_path();
        let clock = out.critical_path_time();
        assert!(
            (cp.total - clock).abs() <= 1e-9 * clock.max(1.0),
            "{dims} P={p} grid {grid:?}: trace critical path {} vs clock {clock} \
             [PMM_SEED={seed}]",
            cp.total
        );
        // On a bandwidth-only machine with blocking collectives, no
        // rank's duplex goodput can exceed the end-to-end critical path.
        for (r, rep) in out.reports.iter().enumerate() {
            let duplex = rep.meter.duplex_words();
            assert!(
                cp.total >= duplex as f64 - 1e-9,
                "{dims} P={p} grid {grid:?}: critical path {} < rank {r} duplex goodput \
                 {duplex} [PMM_SEED={seed}]",
                cp.total
            );
        }
    }
}

#[test]
fn chrome_json_export_is_byte_stable_for_a_pinned_run() {
    // Golden stability: the same (program, seed) must serialize to the
    // same bytes, run to run — CI and goldens diff this output.
    let dims = MatMulDims::new(96, 24, 12);
    let grid = divisible_grid(dims, 8);
    let seed = seed();
    let first = traced_run(dims, grid, seed).tracer().expect("tracing was on").chrome_json();
    let second = traced_run(dims, grid, seed).tracer().expect("tracing was on").chrome_json();
    assert_eq!(first, second, "chrome export must be byte-stable [PMM_SEED={seed}]");
    assert!(first.starts_with("{\"traceEvents\":["), "export must be a trace_event document");
    assert!(first.ends_with("]}\n") || first.ends_with("]}"), "export must close the document");
    // Loadability essentials: begin/end phase scopes and complete events
    // with timestamps and durations on every rank's track.
    for needle in ["\"ph\":\"B\"", "\"ph\":\"E\"", "\"ph\":\"X\"", "\"ts\":", "\"dur\":"] {
        assert!(first.contains(needle), "export missing {needle}");
    }
    for rank in 0..8 {
        assert!(first.contains(&format!("\"tid\":{rank}")), "export missing rank {rank} track");
    }
}
