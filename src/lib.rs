//! # pmm — tight memory-independent parallel matmul communication bounds
//!
//! A full implementation of
//!
//! > H. Al Daas, G. Ballard, L. Grigori, S. Kumar, K. Rouse.
//! > *Brief Announcement: Tight Memory-Independent Parallel Matrix
//! > Multiplication Communication Lower Bounds.* SPAA 2022.
//!
//! together with everything needed to *exercise* it: a metered simulated
//! distributed-memory machine, bandwidth-optimal collectives, a dense
//! matrix substrate, the paper's Algorithm 1 plus classic baselines
//! (Cannon, SUMMA, 2.5D, recursive), and experiment harnesses that
//! regenerate every table and figure.
//!
//! ## Quick start
//!
//! ```
//! use pmm::prelude::*;
//!
//! // 1. What does Theorem 3 say for this problem? (The paper's §5.3
//! //    instance scaled 12.5× down; same aspect ratios, same grids.)
//! let dims = MatMulDims::new(768, 192, 48);
//! let report = lower_bound(dims, 36.0);
//! assert_eq!(report.case, Case::TwoD);
//!
//! // 2. Which processor grid attains it?
//! let grid = best_grid(dims, 36);
//! assert_eq!(grid.grid, [12, 3, 1]);
//!
//! // 3. Run Algorithm 1 on a simulated 36-rank machine and check that the
//! //    measured communication equals the bound exactly.
//! let cfg = Alg1Config::new(dims, grid.grid3());
//! let out = World::new(36, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
//!     let a = random_matrix(768, 192, 1);
//!     let b = random_matrix(192, 48, 2);
//!     alg1(rank, &cfg, &a, &b)
//! });
//! let measured = out.critical_path_time();
//! assert!((measured - report.bound).abs() < 1e-6 * report.bound);
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |-------|------|
//! | [`model`] (`pmm-model`) | α-β-γ cost algebra, grids, dimensions |
//! | [`simnet`] (`pmm-simnet`) | metered simulated distributed machine |
//! | [`collectives`] (`pmm-collectives`) | All-Gather, Reduce-Scatter, … |
//! | [`dense`] (`pmm-dense`) | matrices, partitioning, local kernels |
//! | [`bounds`] (`pmm-core`) | **the paper**: Lemma 2, Theorem 3, grids |
//! | [`algs`] (`pmm-algs`) | Algorithm 1 + Cannon/SUMMA/2.5D baselines |
//! | [`explore`] (`pmm-explore`) | schedule-space exploration + program synthesis |
//! | [`serve`] (`pmm-serve`) | hardened line-protocol advisor service (`pmm serve`) |

pub use pmm_algs as algs;
pub use pmm_collectives as collectives;
pub use pmm_core as bounds;
pub use pmm_dense as dense;
pub use pmm_explore as explore;
pub use pmm_model as model;
pub use pmm_serve as serve;
pub use pmm_simnet as simnet;

/// One-stop imports for the common workflow (bounds → grid → simulated
/// run).
pub mod prelude {
    pub use pmm_algs::{
        alg1, alg1_a, alg1_streamed, alg1_streamed_a, assemble_c, assemble_from_blocks,
        assemble_recovered, cannon, cannon_a, carma, carma_a, carma_assemble_c, carma_cost_words,
        carma_shares, near_square_factors, plan_for, run_recoverable, run_recoverable_a, summa,
        summa_a, twofived, twofived_a, Alg1Config, Alg1Output, Assembly, CShare, CannonConfig,
        Recoverable, Recovered, SummaConfig, TwoFiveDConfig,
    };
    pub use pmm_collectives::{
        all_gather, all_gather_a, all_reduce, all_reduce_a, bcast, bcast_a, reduce_scatter,
        reduce_scatter_a, AllGatherAlgo, AllReduceAlgo, BcastAlgo, ReduceScatterAlgo,
    };
    // `Strategy` is aliased so the prelude can coexist with proptest's
    // `Strategy` trait in downstream glob imports.
    pub use pmm_core::advisor::{recommend, Recommendation, Strategy as AdvisorStrategy};
    pub use pmm_core::genbound::{GenBoundProblem, GenBoundSolution};
    pub use pmm_core::gridopt::{alg1_cost_words, best_divisible_grid, best_grid};
    pub use pmm_core::memlimit::{alg1_memory_words, limited_memory_report, min_memory_words};
    pub use pmm_core::optproblem::{OptProblem, OptSolution};
    pub use pmm_core::prior::{MemDependentBound, PriorBound};
    pub use pmm_core::theorem3::{corollary4, lower_bound, BoundReport};
    pub use pmm_dense::{gemm, random_int_matrix, random_matrix, Kernel, Matrix};
    pub use pmm_model::{
        alg1_prediction, recovery_prediction, restore_words_total, run_words_total, Alg1Prediction,
        AlgPlan, AttemptPrediction, Case, Cost, Grid3, MachineParams, MatMulDims, MatrixId,
        RecoveryPrediction, SortedDims,
    };
    // `Strategy` is aliased here for the same reason as the advisor's.
    pub use pmm_explore::{
        explore, explore_async, explore_checked, explore_checked_async, explore_outcomes,
        explore_outcomes_async, ExploreConfig, ExploreReport, ScheduleFailure,
        Strategy as ExploreStrategy,
    };
    pub use pmm_simnet::{
        engine_from_env, fuzz_schedules, poll_now, schedule_from_env, seed_from_env, Attribution,
        ChoicePoint, Comm, CriticalPath, Engine, FaultPlan, LocalBoxFuture, Meter, Rank,
        RankFailed, Repro, Resource, RunFailure, Schedule, ScheduleTrace, TraceEvent, TraceOp,
        Tracer, World, WorldResult, ENGINE_ENV, SCHEDULE_ENV,
    };
}
