//! # pmm-dense — dense matrix substrate
//!
//! Row-major `f64` matrices, block partitioning, and local matmul kernels:
//! the "γ side" of the α-β-γ model. Every parallel algorithm in
//! `pmm-algs` stores its local blocks as [`Matrix`] values, extracts and
//! inserts sub-blocks with the [`partition`] helpers, and multiplies them
//! with a [`kernels`] kernel.
//!
//! The kernels form a tiered stack selected by [`Kernel`] (or the
//! `PMM_KERNEL` environment variable via [`kernel_from_env`]): the pinned
//! naive oracle, a cache-tiled loop, a packed-panel register-tiled
//! microkernel GEMM, a cache-oblivious recursive variant,
//! a Rayon row-stripe parallel driver, and an `Auto`
//! tier that picks by problem volume. All tiers accumulate each output
//! element over the contracted index in the same order, so their products
//! are **bitwise identical** — tier choice can never alter a simulated
//! run's verified product, meters, or traces. Measured GFLOP/s per tier
//! and the fitted γ live in `BENCH_kernels.json` (see
//! `docs/PERFORMANCE.md`).

#![warn(missing_docs)]

mod blocked;
mod recursive;

pub mod gen;
pub mod kernels;
pub mod matrix;
pub mod partition;
pub mod views;

pub use gen::{constant_matrix, identity, random_int_matrix, random_matrix};
pub use kernels::{gemm, gemm_acc, kernel_from_env, Kernel, KERNEL_ENV};
pub use matrix::Matrix;
pub use partition::{block_len, block_range, chunk_of_block, Block2};
pub use views::{gemm_view, gemm_view_acc, MatrixView};
