//! # pmm-dense — dense matrix substrate
//!
//! Row-major `f64` matrices, block partitioning, and local matmul kernels:
//! the "γ side" of the α-β-γ model. Every parallel algorithm in
//! `pmm-algs` stores its local blocks as [`Matrix`] values, extracts and
//! inserts sub-blocks with the [`partition`] helpers, and multiplies them
//! with a [`kernels`] kernel.
//!
//! The kernels are deliberately simple (naive / cache-tiled /
//! Rayon-parallel tiled): the paper's subject is communication, and the
//! benches only need local compute that is correct, deterministic, and
//! fast enough. The tiled kernel exists so `cargo bench local_matmul` can
//! ablate the local-compute choice.

pub mod gen;
pub mod kernels;
pub mod matrix;
pub mod partition;
pub mod views;

pub use gen::{constant_matrix, identity, random_int_matrix, random_matrix};
pub use kernels::{gemm, gemm_acc, Kernel};
pub use matrix::Matrix;
pub use partition::{block_len, block_range, chunk_of_block, Block2};
pub use views::{gemm_view, gemm_view_acc, MatrixView};
