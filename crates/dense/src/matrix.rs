//! Row-major dense matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix of `f64`, row-major.
///
/// ```
/// use pmm_dense::Matrix;
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
/// assert_eq!(m[(1, 2)], 12.0);
/// assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer (`data.len() == rows·cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer length disagrees with shape");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements (`rows·cols`) — the word count of this
    /// matrix in the communication model.
    #[inline]
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy out the sub-block at rows `r0..r0+h`, cols `c0..c0+w`.
    pub fn sub(&self, r0: usize, c0: usize, h: usize, w: usize) -> Matrix {
        assert!(r0 + h <= self.rows && c0 + w <= self.cols, "sub-block out of range");
        let mut out = Matrix::zeros(h, w);
        for r in 0..h {
            out.row_mut(r).copy_from_slice(&self.data[(r0 + r) * self.cols + c0..][..w]);
        }
        out
    }

    /// Paste `block` at position `(r0, c0)`.
    pub fn set_sub(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "sub-block out of range"
        );
        for r in 0..block.rows {
            self.data[(r0 + r) * self.cols + c0..][..block.cols].copy_from_slice(block.row(r));
        }
    }

    /// Element-wise addition of `block` into position `(r0, c0)`.
    pub fn add_sub(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "sub-block out of range"
        );
        for r in 0..block.rows {
            let dst = &mut self.data[(r0 + r) * self.cols + c0..][..block.cols];
            for (d, &s) in dst.iter_mut().zip(block.row(r)) {
                *d += s;
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element-wise difference to `other` (must have the
    /// same shape).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// True if every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            write!(f, "  ")?;
            let show_cols = self.cols.min(8);
            for c in 0..show_cols {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            if self.cols > show_cols {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ⋮")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_indexing() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.words(), 12);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(2, 3)], 11.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn sub_and_set_sub_roundtrip() {
        let m = Matrix::from_fn(5, 6, |r, c| (r * 6 + c) as f64);
        let b = m.sub(1, 2, 3, 2);
        assert_eq!(b.rows(), 3);
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        assert_eq!(b[(2, 1)], m[(3, 3)]);
        let mut z = Matrix::zeros(5, 6);
        z.set_sub(1, 2, &b);
        assert_eq!(z[(2, 3)], m[(2, 3)]);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn add_sub_accumulates() {
        let mut m = Matrix::from_fn(2, 2, |_, _| 1.0);
        let b = Matrix::from_fn(2, 1, |r, _| (r + 1) as f64);
        m.add_sub(0, 1, &b);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 1)], 3.0);
        assert_eq!(m[(0, 0)], 1.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 7 + c * 3) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn norms_and_diffs() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.frob_norm(), 5.0);
        let b = Matrix::from_vec(1, 2, vec![3.0, 4.5]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.approx_eq(&b, 0.5));
        assert!(!a.approx_eq(&b, 0.4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sub_out_of_range_panics() {
        Matrix::zeros(2, 2).sub(1, 1, 2, 1);
    }

    #[test]
    #[should_panic(expected = "disagrees with shape")]
    fn from_vec_checks_length() {
        Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
