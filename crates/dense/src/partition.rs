//! Block partitioning of index ranges and matrices.
//!
//! Everything the parallel algorithms need to agree on ownership without
//! communicating: which rows/columns of a global matrix belong to which
//! grid coordinate, and how a 2D block is further chopped into the
//! per-rank chunks of the initial/final data distributions of
//! Algorithm 1.
//!
//! Conventions: `block_range(n, parts, i)` splits `0..n` into `parts`
//! nearly-equal contiguous ranges, giving the first `n % parts` ranges one
//! extra element. When `parts` divides `n` this is the exact uniform
//! partition assumed by the paper's §5 analysis.

use std::ops::Range;

use crate::matrix::Matrix;

/// The contiguous index range of part `i` of `0..n` split into `parts`.
pub fn block_range(n: usize, parts: usize, i: usize) -> Range<usize> {
    assert!(parts >= 1, "parts must be >= 1");
    assert!(i < parts, "part index out of range");
    let base = n / parts;
    let rem = n % parts;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    start..start + len
}

/// Length of part `i` of `0..n` split into `parts`.
pub fn block_len(n: usize, parts: usize, i: usize) -> usize {
    block_range(n, parts, i).len()
}

/// A 2D block of a global matrix: row and column ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block2 {
    /// Global row range.
    pub rows: Range<usize>,
    /// Global column range.
    pub cols: Range<usize>,
}

impl Block2 {
    /// The `(i, j)` block of an `rows × cols` matrix partitioned into
    /// `pr × pc` blocks.
    pub fn of(rows: usize, cols: usize, pr: usize, pc: usize, i: usize, j: usize) -> Block2 {
        Block2 { rows: block_range(rows, pr, i), cols: block_range(cols, pc, j) }
    }

    /// Block height.
    pub fn height(&self) -> usize {
        self.rows.len()
    }

    /// Block width.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Words in the block.
    pub fn words(&self) -> usize {
        self.height() * self.width()
    }

    /// Extract this block from `m` as an owned matrix.
    pub fn extract(&self, m: &Matrix) -> Matrix {
        m.sub(self.rows.start, self.cols.start, self.height(), self.width())
    }

    /// Paste `block` into `m` at this block's position.
    pub fn insert(&self, m: &mut Matrix, block: &Matrix) {
        assert_eq!((block.rows(), block.cols()), (self.height(), self.width()));
        m.set_sub(self.rows.start, self.cols.start, block);
    }
}

/// The chunk of a flattened (row-major) 2D block assigned to member
/// `chunk_idx` of `chunks` — the initial distribution of Algorithm 1, in
/// which block `A_{p1',p2'}` is "distributed evenly across processors
/// `(p1', p2', :)`" (§5): each fiber member holds a contiguous run of the
/// block's row-major elements.
pub fn chunk_of_block(block_words: usize, chunks: usize, chunk_idx: usize) -> Range<usize> {
    block_range(block_words, chunks, chunk_idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_exact_division() {
        assert_eq!(block_range(12, 3, 0), 0..4);
        assert_eq!(block_range(12, 3, 1), 4..8);
        assert_eq!(block_range(12, 3, 2), 8..12);
    }

    #[test]
    fn block_range_with_remainder_spreads_extras_first() {
        // 10 into 3: 4, 3, 3
        assert_eq!(block_range(10, 3, 0), 0..4);
        assert_eq!(block_range(10, 3, 1), 4..7);
        assert_eq!(block_range(10, 3, 2), 7..10);
    }

    #[test]
    fn block_ranges_tile_the_interval() {
        for n in [0usize, 1, 7, 12, 100] {
            for parts in [1usize, 2, 3, 5, 12] {
                let mut next = 0usize;
                for i in 0..parts {
                    let r = block_range(n, parts, i);
                    assert_eq!(r.start, next, "n={n} parts={parts} i={i}");
                    next = r.end;
                    assert!(r.len() >= n / parts && r.len() <= n / parts + 1);
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn more_parts_than_elements_gives_empty_tail() {
        assert_eq!(block_range(2, 4, 0), 0..1);
        assert_eq!(block_range(2, 4, 1), 1..2);
        assert_eq!(block_range(2, 4, 2), 2..2);
        assert_eq!(block_len(2, 4, 3), 0);
    }

    #[test]
    fn block2_extract_insert_roundtrip() {
        let m = Matrix::from_fn(6, 8, |r, c| (r * 8 + c) as f64);
        let b = Block2::of(6, 8, 2, 2, 1, 0);
        assert_eq!(b.rows, 3..6);
        assert_eq!(b.cols, 0..4);
        assert_eq!(b.words(), 12);
        let sub = b.extract(&m);
        assert_eq!(sub[(0, 0)], m[(3, 0)]);
        let mut z = Matrix::zeros(6, 8);
        b.insert(&mut z, &sub);
        assert_eq!(z[(4, 2)], m[(4, 2)]);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn blocks_tile_the_matrix() {
        let (rows, cols, pr, pc) = (10usize, 7usize, 3usize, 2usize);
        let mut covered = vec![vec![0u32; cols]; rows];
        for i in 0..pr {
            for j in 0..pc {
                let b = Block2::of(rows, cols, pr, pc, i, j);
                for r in b.rows.clone() {
                    for c in b.cols.clone() {
                        covered[r][c] += 1;
                    }
                }
            }
        }
        assert!(covered.iter().flatten().all(|&x| x == 1));
    }

    #[test]
    fn chunks_tile_a_block() {
        let total = 17usize;
        let chunks = 5usize;
        let mut next = 0;
        for i in 0..chunks {
            let r = chunk_of_block(total, chunks, i);
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, total);
    }
}
