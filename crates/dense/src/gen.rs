//! Deterministic matrix generators for tests and benchmarks.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::matrix::Matrix;

/// Uniform random matrix in `[0, 1)`, deterministic in `seed`.
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random::<f64>())
}

/// Random *integer-valued* matrix with entries drawn uniformly from
/// `range`. Integer-valued f64 arithmetic is exact for the magnitudes used
/// in tests, so distributed results can be compared with `==` instead of
/// tolerances.
pub fn random_int_matrix(rows: usize, cols: usize, range: Range<i64>, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(range.clone()) as f64)
}

/// The `n × n` identity.
pub fn identity(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
}

/// A constant matrix.
pub fn constant_matrix(rows: usize, cols: usize, value: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{gemm, Kernel};

    #[test]
    fn random_is_deterministic_in_seed() {
        let a = random_matrix(4, 4, 42);
        let b = random_matrix(4, 4, 42);
        let c = random_matrix(4, 4, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn int_matrix_has_integer_values_in_range() {
        let m = random_int_matrix(10, 10, -3..4, 7);
        for &x in m.as_slice() {
            assert_eq!(x, x.trunc());
            assert!((-3.0..4.0).contains(&x));
        }
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = random_int_matrix(6, 6, -5..6, 1);
        let i = identity(6);
        assert_eq!(gemm(&a, &i, Kernel::Naive), a);
        assert_eq!(gemm(&i, &a, Kernel::Naive), a);
    }

    #[test]
    fn constant_matrix_values() {
        let m = constant_matrix(2, 3, 2.5);
        assert!(m.as_slice().iter().all(|&x| x == 2.5));
        assert_eq!(m.words(), 6);
    }
}
