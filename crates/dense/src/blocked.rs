//! Packed-panel GEMM with a register-tiled microkernel
//! ([`Kernel::Blocked`](crate::Kernel::Blocked)).
//!
//! Classic three-level blocking (the BLIS/GotoBLAS loop nest), in safe
//! Rust the autovectorizer handles well:
//!
//! * `jc` walks `NC`-column panels of `B`/`C`;
//! * `pc` walks `KC`-deep slabs of the contracted dimension — each slab
//!   of `B` is packed once into micro-panels of `NR` columns;
//! * `ic` walks `MC`-row panels of `A`/`C` — each panel of `A` is packed
//!   into micro-panels of `MR` rows;
//! * `jr`/`ir` walk the packed micro-panels and hand each `MR × NR`
//!   output tile to the microkernel, which keeps the whole tile in
//!   registers (4×16 = 8 zmm accumulators with AVX-512, 6×8 = 12 ymm
//!   with AVX2) and streams the packed panels with unit stride.
//!
//! Edge tiles are zero-padded at pack time, so the microkernel is the
//! only compute path; padded lanes are discarded at store time.
//!
//! **Bitwise contract** (shared by every tier, see
//! [`kernels`](crate::kernels)): the microkernel loads the live `C` tile
//! into its accumulators before the `k` loop and stores it back after,
//! and the `pc` loop visits `k` slabs in increasing order — so each
//! output element sees exactly the same IEEE `mul`-then-`add` sequence,
//! in the same order, as the naive oracle.

use crate::kernels::madd;

/// Microkernel tile height (rows of `C` per register tile). With
/// AVX-512 a 4×16 tile keeps 8 zmm accumulators live — the measured
/// sweet spot on this class of core (wider tiles spill); narrower ISAs
/// get a 6×8 tile (12 ymm accumulators of 16, the classic f64 AVX2
/// shape).
#[cfg(target_feature = "avx512f")]
const MR: usize = 4;
#[cfg(not(target_feature = "avx512f"))]
const MR: usize = 6;
/// Microkernel tile width (columns of `C` per register tile): a small
/// multiple of the widest vector so the inner loop vectorizes cleanly.
#[cfg(target_feature = "avx512f")]
const NR: usize = 16;
#[cfg(not(target_feature = "avx512f"))]
const NR: usize = 8;
/// Rows of `A` packed per `ic` panel (sized so a packed `MC × KC` panel
/// of `A` sits in L2).
const MC: usize = 128;
/// Depth of the contracted-dimension slab packed per `pc` step.
const KC: usize = 512;
/// Columns of `B` packed per `jc` panel.
const NC: usize = 2048;

/// `C += A·B` on raw row-major slices: `c` is `m × n`, `a` is `m × k`,
/// `b` is `k × n`, all densely packed (row stride = column count).
///
/// This is the engine behind [`Kernel::Blocked`](crate::Kernel::Blocked)
/// and the per-stripe worker of
/// [`Kernel::Parallel`](crate::Kernel::Parallel).
pub(crate) fn gemm_blocked(c: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let kc_max = KC.min(k);
    let mc_max = MC.min(m);
    let nc_max = NC.min(n);
    let mut apack = vec![0.0f64; kc_max * mc_max.div_ceil(MR) * MR];
    let mut bpack = vec![0.0f64; kc_max * nc_max.div_ceil(NR) * NR];

    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&mut bpack, b, n, pc, jc, kc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(&mut apack, a, k, ic, pc, mc, kc);
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let bp = &bpack[(jr / NR) * kc * NR..][..kc * NR];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let ap = &apack[(ir / MR) * kc * MR..][..kc * MR];
                        // Load the live C tile (zero-padded lanes are
                        // discarded at store time).
                        let mut acc = [[0.0f64; NR]; MR];
                        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                            let row = &c[(ic + ir + r) * n + jc + jr..][..nr];
                            accr[..nr].copy_from_slice(row);
                        }
                        let acc = microkernel(kc, ap, bp, acc);
                        for (r, accr) in acc.iter().enumerate().take(mr) {
                            let row = &mut c[(ic + ir + r) * n + jc + jr..][..nr];
                            row.copy_from_slice(&accr[..nr]);
                        }
                    }
                }
            }
        }
    }
}

/// The register tile: `acc[r][c] += ap[·][r] · bp[·][c]` over `kc` steps.
/// Taking and returning `acc` by value keeps it in registers.
#[inline]
fn microkernel(kc: usize, ap: &[f64], bp: &[f64], mut acc: [[f64; NR]; MR]) -> [[f64; NR]; MR] {
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for r in 0..MR {
            let ar = av[r];
            for (accv, &bc) in acc[r].iter_mut().zip(bv) {
                *accv = madd(ar, bc, *accv);
            }
        }
    }
    acc
}

/// Pack the `mc × kc` block of `A` at `(ic, pc)` into micro-panels of
/// `MR` rows, k-major within each panel (`apack[q·kc·MR + l·MR + r]` =
/// `A[ic + q·MR + r][pc + l]`), zero-padding rows past `mc`.
fn pack_a(apack: &mut [f64], a: &[f64], k: usize, ic: usize, pc: usize, mc: usize, kc: usize) {
    for q in 0..mc.div_ceil(MR) {
        let panel = &mut apack[q * kc * MR..][..kc * MR];
        let rows = MR.min(mc - q * MR);
        for r in 0..MR {
            if r < rows {
                let arow = &a[(ic + q * MR + r) * k + pc..][..kc];
                for (l, &v) in arow.iter().enumerate() {
                    panel[l * MR + r] = v;
                }
            } else {
                for l in 0..kc {
                    panel[l * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Pack the `kc × nc` block of `B` at `(pc, jc)` into micro-panels of
/// `NR` columns (`bpack[q·kc·NR + l·NR + c]` = `B[pc + l][jc + q·NR + c]`),
/// zero-padding columns past `nc`.
fn pack_b(bpack: &mut [f64], b: &[f64], n: usize, pc: usize, jc: usize, kc: usize, nc: usize) {
    for q in 0..nc.div_ceil(NR) {
        let panel = &mut bpack[q * kc * NR..][..kc * NR];
        let cols = NR.min(nc - q * NR);
        for l in 0..kc {
            let brow = &b[(pc + l) * n + jc + q * NR..][..cols];
            let dst = &mut panel[l * NR..][..NR];
            dst[..cols].copy_from_slice(brow);
            for d in dst.iter_mut().skip(cols) {
                *d = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;
    use crate::matrix::Matrix;

    /// Direct strided oracle for the raw-slice entry point.
    fn oracle(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for l in 0..a.cols() {
                let ail = a[(i, l)];
                for j in 0..b.cols() {
                    c[(i, j)] = madd(ail, b[(l, j)], c[(i, j)]);
                }
            }
        }
        c
    }

    #[test]
    fn matches_oracle_bitwise_across_edge_shapes() {
        // Shapes straddling every blocking boundary: MR/NR edges, exact
        // multiples, single rows/cols, and > KC depth.
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (5, 9, 7),
            (128, 256, 8),
            (129, 257, 9),
            (3, 300, 11),
            (131, 2, 259),
        ] {
            let a = random_matrix(m, k, 11);
            let b = random_matrix(k, n, 13);
            let want = oracle(&a, &b);
            let mut c = Matrix::zeros(m, n);
            gemm_blocked(c.as_mut_slice(), a.as_slice(), b.as_slice(), m, k, n);
            assert_eq!(c, want, "blocked diverges for {m}x{k}x{n}");
        }
    }

    #[test]
    fn accumulates_into_live_c() {
        let (m, k, n) = (37, 65, 33);
        let a = random_matrix(m, k, 1);
        let b = random_matrix(k, n, 2);
        let mut c = random_matrix(m, n, 3);
        let mut want = c.clone();
        for i in 0..m {
            for l in 0..k {
                let ail = a[(i, l)];
                for j in 0..n {
                    want[(i, j)] = madd(ail, b[(l, j)], want[(i, j)]);
                }
            }
        }
        gemm_blocked(c.as_mut_slice(), a.as_slice(), b.as_slice(), m, k, n);
        assert_eq!(c, want);
    }
}
