//! Cache-oblivious recursive GEMM
//! ([`Kernel::Recursive`](crate::Kernel::Recursive)).
//!
//! Recursively halves the largest of `(m, k, n)` until every dimension
//! fits [`BASE`], then runs a direct strided `i-k-j` base case. No tuning
//! constants beyond the base size: each recursion level roughly halves
//! the working set, so some level fits each cache level regardless of the
//! cache hierarchy (Frigo et al.'s cache-oblivious argument — the same
//! recursion CARMA applies *across* processors in `pmm-algs`).
//!
//! **Bitwise contract**: `m`/`n` splits touch disjoint halves of `C`;
//! a `k` split runs the low half *to completion* before the high half, so
//! every output element still accumulates its `k` terms in increasing
//! order, one `mul`-then-`add` per term — identical to the naive oracle.

use crate::kernels::madd;

/// Largest dimension at which recursion bottoms out into the direct
/// strided triple loop (a `BASE³` working set is ≈ 96 KiB, safely inside
/// L2 on anything current).
const BASE: usize = 64;

/// `C += A·B` on row-major slices with explicit row strides: `c` is
/// `m × n` with stride `sc`, `a` is `m × k` with stride `sa`, `b` is
/// `k × n` with stride `sb`. Slices start at the submatrix origin; rows
/// beyond the first are addressed through the stride, so recursion can
/// pass column offsets without copying.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_recursive(
    c: &mut [f64],
    sc: usize,
    a: &[f64],
    sa: usize,
    b: &[f64],
    sb: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let largest = m.max(k).max(n);
    if largest <= BASE {
        base_case(c, sc, a, sa, b, sb, m, k, n);
    } else if largest == m {
        let mh = m / 2;
        gemm_recursive(c, sc, a, sa, b, sb, mh, k, n);
        gemm_recursive(&mut c[mh * sc..], sc, &a[mh * sa..], sa, b, sb, m - mh, k, n);
    } else if largest == n {
        let nh = n / 2;
        gemm_recursive(c, sc, a, sa, b, sb, m, k, nh);
        gemm_recursive(&mut c[nh..], sc, a, sa, &b[nh..], sb, m, k, n - nh);
    } else {
        // k split: sequential, low half first, to preserve per-element
        // accumulation order.
        let kh = k / 2;
        gemm_recursive(c, sc, a, sa, b, sb, m, kh, n);
        gemm_recursive(c, sc, &a[kh..], sa, &b[kh * sb..], sb, m, k - kh, n);
    }
}

#[allow(clippy::too_many_arguments)]
fn base_case(
    c: &mut [f64],
    sc: usize,
    a: &[f64],
    sa: usize,
    b: &[f64],
    sb: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        for l in 0..k {
            let ail = a[i * sa + l];
            let brow = &b[l * sb..l * sb + n];
            let crow = &mut c[i * sc..i * sc + n];
            for j in 0..n {
                crow[j] = madd(ail, brow[j], crow[j]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;
    use crate::matrix::Matrix;

    #[test]
    fn matches_direct_accumulation_bitwise() {
        for (m, k, n) in
            [(1usize, 1usize, 1usize), (65, 64, 63), (7, 200, 5), (200, 7, 130), (100, 100, 100)]
        {
            let a = random_matrix(m, k, 5);
            let b = random_matrix(k, n, 6);
            let mut want = Matrix::zeros(m, n);
            for i in 0..m {
                for l in 0..k {
                    let ail = a[(i, l)];
                    for j in 0..n {
                        want[(i, j)] = madd(ail, b[(l, j)], want[(i, j)]);
                    }
                }
            }
            let mut c = Matrix::zeros(m, n);
            gemm_recursive(c.as_mut_slice(), n, a.as_slice(), k, b.as_slice(), n, m, k, n);
            assert_eq!(c, want, "recursive diverges for {m}x{k}x{n}");
        }
    }
}
