//! Borrowed, strided matrix views — zero-copy sub-matrix access.
//!
//! The distributed algorithms frequently multiply *blocks* of larger
//! matrices. [`Matrix::sub`] copies the block; a [`MatrixView`] borrows it
//! in place (row stride = the parent's column count), and
//! [`gemm_view_acc`] runs the tiled kernel directly on views. The
//! `local_matmul` criterion bench quantifies the copy-vs-view trade-off.

use crate::kernels::madd;
use crate::matrix::Matrix;

/// An immutable view of an `rows × cols` region inside a larger row-major
/// buffer, with an arbitrary row stride (`row_stride ≥ cols`).
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    row_stride: usize,
}

impl<'a> MatrixView<'a> {
    /// View over a raw buffer. `data` must hold at least
    /// `(rows−1)·row_stride + cols` elements.
    pub fn new(data: &'a [f64], rows: usize, cols: usize, row_stride: usize) -> MatrixView<'a> {
        assert!(row_stride >= cols, "row stride must cover the row");
        if rows > 0 {
            assert!(data.len() >= (rows - 1) * row_stride + cols, "buffer too short for the view");
        }
        MatrixView { data, rows, cols, row_stride }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.row_stride..][..self.cols]
    }

    /// Element access.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.row_stride + c]
    }

    /// A sub-view of this view (no copy).
    pub fn subview(&self, r0: usize, c0: usize, h: usize, w: usize) -> MatrixView<'a> {
        assert!(r0 + h <= self.rows && c0 + w <= self.cols, "subview out of range");
        MatrixView {
            data: &self.data[r0 * self.row_stride + c0..],
            rows: h,
            cols: w,
            row_stride: self.row_stride,
        }
    }

    /// Materialize into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| self.at(r, c))
    }
}

impl Matrix {
    /// A borrowed view of the whole matrix.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView::new(self.as_slice(), self.rows(), self.cols(), self.cols())
    }

    /// A borrowed view of the sub-block at `(r0, c0)` of shape `h × w`
    /// (the zero-copy counterpart of [`Matrix::sub`]).
    pub fn subview(&self, r0: usize, c0: usize, h: usize, w: usize) -> MatrixView<'_> {
        self.view().subview(r0, c0, h, w)
    }
}

/// Tile edge for the view kernel (matches the owned-kernel tiling).
const TILE: usize = 64;

/// `C += A·B` where `A` and `B` are (possibly strided) views and `C` is
/// owned. Cache-tiled, same loop structure as the owned `Kernel::Tiled`.
pub fn gemm_view_acc(c: &mut Matrix, a: MatrixView<'_>, b: MatrixView<'_>) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions disagree");
    assert_eq!(c.rows(), a.rows(), "C rows disagree");
    assert_eq!(c.cols(), b.cols(), "C cols disagree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        for l0 in (0..k).step_by(TILE) {
            let l1 = (l0 + TILE).min(k);
            for j0 in (0..n).step_by(TILE) {
                let j1 = (j0 + TILE).min(n);
                for i in i0..i1 {
                    let arow = a.row(i);
                    let crow = c.row_mut(i);
                    for (l, &ail) in arow.iter().enumerate().take(l1).skip(l0) {
                        let brow = b.row(l);
                        for j in j0..j1 {
                            crow[j] = madd(ail, brow[j], crow[j]);
                        }
                    }
                }
            }
        }
    }
}

/// `C = A·B` on views (allocates the result).
pub fn gemm_view(a: MatrixView<'_>, b: MatrixView<'_>) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_view_acc(&mut c, a, b);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_int_matrix;
    use crate::kernels::{gemm, Kernel};

    #[test]
    fn view_reads_match_the_matrix() {
        let m = random_int_matrix(7, 9, -9..10, 1);
        let v = m.view();
        for r in 0..7 {
            for c in 0..9 {
                assert_eq!(v.at(r, c), m[(r, c)]);
            }
            assert_eq!(v.row(r), m.row(r));
        }
    }

    #[test]
    fn subview_matches_sub_copy() {
        let m = random_int_matrix(10, 12, -9..10, 2);
        let v = m.subview(2, 3, 5, 6);
        let copy = m.sub(2, 3, 5, 6);
        assert_eq!(v.to_matrix(), copy);
        // nested subviews compose
        let vv = v.subview(1, 2, 3, 3);
        assert_eq!(vv.to_matrix(), m.sub(3, 5, 3, 3));
    }

    #[test]
    fn gemm_on_views_equals_gemm_on_copies() {
        let a = random_int_matrix(20, 16, -3..4, 3);
        let b = random_int_matrix(16, 12, -3..4, 4);
        // whole-matrix views
        assert_eq!(gemm_view(a.view(), b.view()), gemm(&a, &b, Kernel::Tiled));
        // block views: multiply interior blocks without copying
        let av = a.subview(4, 2, 9, 10);
        let bv = b.subview(2, 1, 10, 7);
        let want = gemm(&a.sub(4, 2, 9, 10), &b.sub(2, 1, 10, 7), Kernel::Naive);
        assert_eq!(gemm_view(av, bv), want);
    }

    #[test]
    fn gemm_view_acc_accumulates() {
        let a = random_int_matrix(8, 8, -2..3, 5);
        let b = random_int_matrix(8, 8, -2..3, 6);
        let mut c = random_int_matrix(8, 8, -2..3, 7);
        let init = c.clone();
        gemm_view_acc(&mut c, a.view(), b.view());
        let prod = gemm(&a, &b, Kernel::Naive);
        for r in 0..8 {
            for q in 0..8 {
                assert_eq!(c[(r, q)], init[(r, q)] + prod[(r, q)]);
            }
        }
    }

    #[test]
    fn degenerate_views() {
        let m = Matrix::zeros(3, 3);
        let v = m.subview(1, 1, 0, 0);
        assert_eq!(v.rows(), 0);
        let empty = gemm_view(m.subview(0, 0, 0, 3), m.subview(0, 0, 3, 2));
        assert_eq!((empty.rows(), empty.cols()), (0, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subview_bounds_checked() {
        let m = Matrix::zeros(3, 3);
        m.subview(1, 1, 3, 3);
    }

    #[test]
    #[should_panic(expected = "buffer too short")]
    fn raw_view_bounds_checked() {
        MatrixView::new(&[0.0; 10], 3, 4, 4);
    }
}
