//! Local matmul kernels: the tiered dispatch.
//!
//! These perform the per-processor computation of every parallel algorithm
//! (line 6 of Algorithm 1). The tiers, from pinned oracle to fastest:
//!
//! * [`Kernel::Naive`] — textbook `i-k-j` triple loop (the `k` middle loop
//!   keeps the inner loop streaming over contiguous rows of `B` and `C`).
//!   This is the **pinned oracle**: every other tier must produce a
//!   bitwise-identical product (see below).
//! * [`Kernel::Tiled`] — cache-blocked over all three loops (64×64 tiles).
//! * [`Kernel::Blocked`] — packed-panel GEMM with a register-tiled,
//!   autovectorizable microkernel (BLIS-style `jc`/`pc`/`ic`/`jr`/`ir`
//!   loop nest in the `blocked` module). The fast tier.
//! * [`Kernel::Recursive`] — cache-oblivious recursive splitting of the
//!   largest dimension down to a small base case (the `recursive`
//!   module).
//! * [`Kernel::Parallel`] — the blocked kernel with row stripes
//!   parallelized via Rayon (shared-memory, *within* one simulated rank;
//!   does not touch the communication accounting).
//! * [`Kernel::Auto`] — runtime selection by problem volume: `Naive` for
//!   tiny products, `Tiled` for small ones, `Blocked` beyond
//!   [`AUTO_BLOCKED_MIN_FLOPS`].
//!
//! # Bitwise identity across tiers
//!
//! Every tier accumulates each output element `C[i][j]` over the
//! contracted index `k` in **strictly increasing order**, one
//! `mul`-then-`add` per term, with no FMA contraction and no private
//! re-associated partial sums (the blocked microkernel loads the live `C`
//! tile into its accumulator registers before the `k` loop and stores it
//! back after). IEEE-754 arithmetic is deterministic, so all tiers
//! produce **bitwise-identical** products for arbitrary `f64` inputs —
//! not merely for the exact integer matrices used by the conformance
//! tests. `tests/proptests.rs` pins this on fractional inputs and the
//! kernel-invariance suite pins that tier choice never alters simulator
//! meters or traces.
//!
//! # Selecting a tier
//!
//! Algorithm configs carry a `Kernel`; the CLI resolves the default from
//! the [`KERNEL_ENV`] (`PMM_KERNEL`) environment variable via
//! [`kernel_from_env`].
//!
//! ```
//! use pmm_dense::{gemm, random_matrix, Kernel};
//!
//! let a = random_matrix(33, 65, 1); // fractional entries
//! let b = random_matrix(65, 17, 2);
//! let oracle = gemm(&a, &b, Kernel::Naive);
//! for tier in Kernel::ALL {
//!     assert_eq!(gemm(&a, &b, tier), oracle); // bitwise, not approximate
//! }
//! assert_eq!("blocked".parse::<Kernel>(), Ok(Kernel::Blocked));
//! assert_eq!(Kernel::Recursive.to_string(), "recursive");
//! ```

use std::fmt;
use std::str::FromStr;

use rayon::prelude::*;

use crate::blocked::gemm_blocked;
use crate::matrix::Matrix;
use crate::recursive::gemm_recursive;

/// Tile edge (in elements) for the [`Kernel::Tiled`] kernel; 64×64 f64
/// tiles ≈ 32 KiB per operand, a reasonable L1/L2 compromise.
const TILE: usize = 64;

/// Row-stripe height (in rows of `C`) handed to each Rayon worker by
/// [`Kernel::Parallel`]. Matches the blocked kernel's `MC` so each stripe
/// is exactly one packed row panel.
const STRIPE: usize = 128;

/// [`Kernel::Auto`] switches from `Naive` to `Tiled` at this many
/// multiply-adds (`m·k·n`)…
pub const AUTO_TILED_MIN_FLOPS: usize = 32 * 32 * 32;

/// …and from `Tiled` to `Blocked` (which pays two pack-buffer
/// allocations per call) at this many.
pub const AUTO_BLOCKED_MIN_FLOPS: usize = 96 * 96 * 96;

/// Environment variable selecting the default kernel tier
/// (`naive | tiled | blocked | recursive | parallel | auto`), consulted
/// by [`kernel_from_env`]. An explicit `Kernel` in an algorithm config
/// always wins.
pub const KERNEL_ENV: &str = "PMM_KERNEL";

/// The one multiply-add every kernel tier (and the view kernel) uses per
/// accumulated term. On targets with hardware FMA it compiles to a single
/// fused `vfmadd` (one rounding); elsewhere it is a plain IEEE
/// `mul`-then-`add` (two roundings) — `f64::mul_add` without hardware
/// support would fall back to a slow soft-float routine, so the `cfg!`
/// (resolved at compile time) keeps that path out. Because every tier
/// funnels through this helper, products stay bitwise identical across
/// tiers on *any* build; the exact bits depend on the build target's FMA
/// capability.
#[inline(always)]
pub(crate) fn madd(a: f64, b: f64, c: f64) -> f64 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

/// Kernel selector. See the [module docs](self) for the tier guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Kernel {
    /// Triple loop, `i-k-j` order — the pinned oracle.
    Naive,
    /// Cache-tiled triple loop.
    Tiled,
    /// Packed-panel microkernel GEMM (the fast tier).
    Blocked,
    /// Cache-oblivious recursive splitting.
    Recursive,
    /// Blocked with Rayon row-stripe parallelism.
    Parallel,
    /// Pick `Naive`/`Tiled`/`Blocked` from the problem volume at run
    /// time.
    #[default]
    Auto,
}

impl Kernel {
    /// Every selectable tier, oracle first (handy for sweeps and
    /// conformance loops).
    pub const ALL: [Kernel; 6] = [
        Kernel::Naive,
        Kernel::Tiled,
        Kernel::Blocked,
        Kernel::Recursive,
        Kernel::Parallel,
        Kernel::Auto,
    ];

    /// The concrete tier `Auto` resolves to for an `m·k·n`-flop product.
    pub fn resolve(self, m: usize, k: usize, n: usize) -> Kernel {
        match self {
            Kernel::Auto => {
                let flops = m.saturating_mul(k).saturating_mul(n);
                if flops < AUTO_TILED_MIN_FLOPS {
                    Kernel::Naive
                } else if flops < AUTO_BLOCKED_MIN_FLOPS {
                    Kernel::Tiled
                } else {
                    Kernel::Blocked
                }
            }
            other => other,
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kernel::Naive => "naive",
            Kernel::Tiled => "tiled",
            Kernel::Blocked => "blocked",
            Kernel::Recursive => "recursive",
            Kernel::Parallel => "parallel",
            Kernel::Auto => "auto",
        })
    }
}

impl FromStr for Kernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Kernel, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "naive" => Ok(Kernel::Naive),
            "tiled" => Ok(Kernel::Tiled),
            "blocked" | "micro" | "microkernel" => Ok(Kernel::Blocked),
            "recursive" | "oblivious" => Ok(Kernel::Recursive),
            "parallel" | "rayon" => Ok(Kernel::Parallel),
            "auto" => Ok(Kernel::Auto),
            other => Err(format!(
                "unrecognized kernel {other:?}: expected one of \
                 naive|tiled|blocked|recursive|parallel|auto"
            )),
        }
    }
}

/// Resolve the kernel tier from [`KERNEL_ENV`], falling back to
/// `default`. Malformed values fall back to `default` (matching
/// `engine_from_env`'s forgiving behavior in `pmm-simnet`).
pub fn kernel_from_env(default: Kernel) -> Kernel {
    match std::env::var(KERNEL_ENV) {
        Ok(s) => s.parse().unwrap_or(default),
        Err(_) => default,
    }
}

/// `C = A·B` (allocates the result).
pub fn gemm(a: &Matrix, b: &Matrix, kernel: Kernel) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_acc(&mut c, a, b, kernel);
    c
}

/// `C += A·B`.
///
/// Panics if shapes are incompatible.
pub fn gemm_acc(c: &mut Matrix, a: &Matrix, b: &Matrix, kernel: Kernel) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions disagree");
    assert_eq!(c.rows(), a.rows(), "C rows disagree");
    assert_eq!(c.cols(), b.cols(), "C cols disagree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    match kernel.resolve(m, k, n) {
        Kernel::Naive | Kernel::Auto => naive(c, a, b),
        Kernel::Tiled => tiled(c, a, b),
        Kernel::Blocked => gemm_blocked(c.as_mut_slice(), a.as_slice(), b.as_slice(), m, k, n),
        Kernel::Recursive => {
            gemm_recursive(c.as_mut_slice(), n, a.as_slice(), k, b.as_slice(), n, m, k, n);
        }
        Kernel::Parallel => parallel(c, a, b),
    }
}

fn naive(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for l in 0..k {
            let aik = a[(i, l)];
            let brow = b.row(l);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] = madd(aik, brow[j], crow[j]);
            }
        }
    }
}

fn tiled(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        tiled_rows(c, a, b, i0, i1, k, n);
    }
}

/// One horizontal stripe `[i0, i1)` of the tiled kernel.
fn tiled_stripe(crows: &mut [f64], a: &Matrix, b: &Matrix, i0: usize, i1: usize) {
    let (k, n) = (a.cols(), b.cols());
    let ncols = n;
    for l0 in (0..k).step_by(TILE) {
        let l1 = (l0 + TILE).min(k);
        for j0 in (0..n).step_by(TILE) {
            let j1 = (j0 + TILE).min(n);
            for i in i0..i1 {
                let arow = a.row(i);
                let crow = &mut crows[(i - i0) * ncols..][..ncols];
                for (l, &ail) in arow.iter().enumerate().take(l1).skip(l0) {
                    let brow = b.row(l);
                    for j in j0..j1 {
                        crow[j] = madd(ail, brow[j], crow[j]);
                    }
                }
            }
        }
    }
}

fn tiled_rows(c: &mut Matrix, a: &Matrix, b: &Matrix, i0: usize, i1: usize, _k: usize, n: usize) {
    let crows = &mut c.as_mut_slice()[i0 * n..i1 * n];
    tiled_stripe(crows, a, b, i0, i1);
}

/// Row-stripe parallel driver: each worker runs the packed blocked kernel
/// on a disjoint stripe of `C` rows (and the matching rows of `A`), so
/// per-element accumulation order — and therefore the bitwise result —
/// is independent of the worker count and schedule.
fn parallel(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let a_slice = a.as_slice();
    let b_slice = b.as_slice();
    c.as_mut_slice().par_chunks_mut(STRIPE * n).enumerate().for_each(|(chunk, crows)| {
        let i0 = chunk * STRIPE;
        let i1 = (i0 + STRIPE).min(m);
        gemm_blocked(crows, &a_slice[i0 * k..i1 * k], b_slice, i1 - i0, k, n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_int_matrix, random_matrix};

    fn reference(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|l| a[(i, l)] * b[(l, j)]).sum()
        })
    }

    #[test]
    fn tiny_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = gemm(&a, &b, Kernel::Naive);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn kernels_agree_with_reference_on_integer_matrices() {
        // Integer-valued entries ⇒ exact f64 arithmetic ⇒ strict equality.
        for (m, k, n, seed) in
            [(5usize, 7usize, 3usize, 1u64), (64, 64, 64, 2), (65, 130, 67, 3), (1, 100, 1, 4)]
        {
            let a = random_int_matrix(m, k, -4..5, seed);
            let b = random_int_matrix(k, n, -4..5, seed + 100);
            let want = reference(&a, &b);
            for kern in Kernel::ALL {
                let got = gemm(&a, &b, kern);
                assert_eq!(got, want, "{kern:?} disagrees for {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn all_tiers_bitwise_identical_on_fractional_matrices() {
        // The stronger guarantee: identical accumulation order makes the
        // tiers agree bitwise even where f64 arithmetic rounds.
        for (m, k, n, seed) in [
            (130usize, 257usize, 129usize, 1u64),
            (97, 301, 64, 2),
            (1, 500, 9, 3),
            (260, 3, 260, 4),
        ] {
            let a = random_matrix(m, k, seed);
            let b = random_matrix(k, n, seed + 100);
            let oracle = gemm(&a, &b, Kernel::Naive);
            for kern in Kernel::ALL {
                let got = gemm(&a, &b, kern);
                assert_eq!(got, oracle, "{kern:?} not bitwise for {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = random_int_matrix(10, 10, 0..3, 7);
        let b = random_int_matrix(10, 10, 0..3, 8);
        let mut c = Matrix::from_fn(10, 10, |_, _| 1.0);
        gemm_acc(&mut c, &a, &b, Kernel::Tiled);
        let mut want = reference(&a, &b);
        for x in want.as_mut_slice() {
            *x += 1.0;
        }
        assert_eq!(c, want);
    }

    #[test]
    fn gemm_acc_starts_from_live_c_in_every_tier() {
        // The blocked microkernel must load the live C tile before its k
        // loop — seed C with fractional values so a kernel that zeroes or
        // re-associates would diverge bitwise.
        let a = random_matrix(150, 70, 1);
        let b = random_matrix(70, 140, 2);
        let init = random_matrix(150, 140, 3);
        let mut oracle = init.clone();
        gemm_acc(&mut oracle, &a, &b, Kernel::Naive);
        for kern in Kernel::ALL {
            let mut c = init.clone();
            gemm_acc(&mut c, &a, &b, kern);
            assert_eq!(c, oracle, "{kern:?} diverges when accumulating into live C");
        }
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        for kern in Kernel::ALL {
            let c = gemm(&a, &b, kern);
            assert_eq!((c.rows(), c.cols()), (0, 3));
        }

        let a = Matrix::from_vec(1, 1, vec![3.0]);
        let b = Matrix::from_vec(1, 1, vec![4.0]);
        for kern in Kernel::ALL {
            assert_eq!(gemm(&a, &b, kern).as_slice(), &[12.0]);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        gemm(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2), Kernel::Naive);
    }

    #[test]
    fn display_from_str_round_trip() {
        for kern in Kernel::ALL {
            assert_eq!(kern.to_string().parse::<Kernel>(), Ok(kern));
        }
        assert!("fused".parse::<Kernel>().is_err());
    }

    #[test]
    fn auto_resolves_by_volume() {
        assert_eq!(Kernel::Auto.resolve(8, 8, 8), Kernel::Naive);
        assert_eq!(Kernel::Auto.resolve(64, 64, 64), Kernel::Tiled);
        assert_eq!(Kernel::Auto.resolve(512, 512, 512), Kernel::Blocked);
        // Non-auto tiers resolve to themselves.
        assert_eq!(Kernel::Recursive.resolve(8, 8, 8), Kernel::Recursive);
    }

    #[test]
    fn env_selection_parses_all_names() {
        // `kernel_from_env` itself reads the process environment (covered
        // by the CLI tests); here pin the parser it relies on.
        for (name, want) in [
            ("naive", Kernel::Naive),
            ("BLOCKED", Kernel::Blocked),
            (" recursive ", Kernel::Recursive),
            ("rayon", Kernel::Parallel),
            ("auto", Kernel::Auto),
        ] {
            assert_eq!(name.parse::<Kernel>(), Ok(want));
        }
    }
}
