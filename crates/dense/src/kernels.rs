//! Local matmul kernels.
//!
//! These perform the per-processor computation of every parallel algorithm
//! (line 6 of Algorithm 1). Three implementations:
//!
//! * [`Kernel::Naive`] — textbook `i-k-j` triple loop (the `k` middle loop
//!   keeps the inner loop streaming over contiguous rows of `B` and `C`);
//! * [`Kernel::Tiled`] — cache-blocked over all three loops;
//! * [`Kernel::Parallel`] — the tiled kernel with rows parallelized via
//!   Rayon (shared-memory, *within* one simulated rank; does not touch
//!   the communication accounting).

use rayon::prelude::*;

use crate::matrix::Matrix;

/// Tile edge (in elements) for the blocked kernels; 64×64 f64 tiles ≈ 32
/// KiB per operand, a reasonable L1/L2 compromise.
const TILE: usize = 64;

/// Kernel selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Triple loop, `i-k-j` order.
    Naive,
    /// Cache-tiled triple loop.
    #[default]
    Tiled,
    /// Tiled with Rayon row-parallelism.
    Parallel,
}

/// `C = A·B` (allocates the result).
pub fn gemm(a: &Matrix, b: &Matrix, kernel: Kernel) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_acc(&mut c, a, b, kernel);
    c
}

/// `C += A·B`.
///
/// Panics if shapes are incompatible.
pub fn gemm_acc(c: &mut Matrix, a: &Matrix, b: &Matrix, kernel: Kernel) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions disagree");
    assert_eq!(c.rows(), a.rows(), "C rows disagree");
    assert_eq!(c.cols(), b.cols(), "C cols disagree");
    match kernel {
        Kernel::Naive => naive(c, a, b),
        Kernel::Tiled => tiled(c, a, b),
        Kernel::Parallel => parallel(c, a, b),
    }
}

fn naive(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for l in 0..k {
            let aik = a[(i, l)];
            if aik == 0.0 {
                continue;
            }
            let brow = b.row(l);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
}

fn tiled(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        tiled_rows(c, a, b, i0, i1, k, n);
    }
}

/// One horizontal stripe `[i0, i1)` of the tiled kernel; shared by the
/// serial and parallel drivers.
fn tiled_stripe(crows: &mut [f64], a: &Matrix, b: &Matrix, i0: usize, i1: usize) {
    let (k, n) = (a.cols(), b.cols());
    let ncols = n;
    for l0 in (0..k).step_by(TILE) {
        let l1 = (l0 + TILE).min(k);
        for j0 in (0..n).step_by(TILE) {
            let j1 = (j0 + TILE).min(n);
            for i in i0..i1 {
                let arow = a.row(i);
                let crow = &mut crows[(i - i0) * ncols..][..ncols];
                for (l, &ail) in arow.iter().enumerate().take(l1).skip(l0) {
                    if ail == 0.0 {
                        continue;
                    }
                    let brow = b.row(l);
                    for j in j0..j1 {
                        crow[j] += ail * brow[j];
                    }
                }
            }
        }
    }
}

fn tiled_rows(c: &mut Matrix, a: &Matrix, b: &Matrix, i0: usize, i1: usize, _k: usize, n: usize) {
    let crows = &mut c.as_mut_slice()[i0 * n..i1 * n];
    tiled_stripe(crows, a, b, i0, i1);
}

fn parallel(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let n = b.cols();
    let m = a.rows();
    c.as_mut_slice().par_chunks_mut(TILE * n).enumerate().for_each(|(chunk, crows)| {
        let i0 = chunk * TILE;
        let i1 = (i0 + TILE).min(m);
        tiled_stripe(crows, a, b, i0, i1);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_int_matrix;

    fn reference(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|l| a[(i, l)] * b[(l, j)]).sum()
        })
    }

    #[test]
    fn tiny_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = gemm(&a, &b, Kernel::Naive);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn kernels_agree_with_reference_on_integer_matrices() {
        // Integer-valued entries ⇒ exact f64 arithmetic ⇒ strict equality.
        for (m, k, n, seed) in
            [(5usize, 7usize, 3usize, 1u64), (64, 64, 64, 2), (65, 130, 67, 3), (1, 100, 1, 4)]
        {
            let a = random_int_matrix(m, k, -4..5, seed);
            let b = random_int_matrix(k, n, -4..5, seed + 100);
            let want = reference(&a, &b);
            for kern in [Kernel::Naive, Kernel::Tiled, Kernel::Parallel] {
                let got = gemm(&a, &b, kern);
                assert_eq!(got, want, "{kern:?} disagrees for {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = random_int_matrix(10, 10, 0..3, 7);
        let b = random_int_matrix(10, 10, 0..3, 8);
        let mut c = Matrix::from_fn(10, 10, |_, _| 1.0);
        gemm_acc(&mut c, &a, &b, Kernel::Tiled);
        let mut want = reference(&a, &b);
        for x in want.as_mut_slice() {
            *x += 1.0;
        }
        assert_eq!(c, want);
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let c = gemm(&a, &b, Kernel::Tiled);
        assert_eq!((c.rows(), c.cols()), (0, 3));

        let a = Matrix::from_vec(1, 1, vec![3.0]);
        let b = Matrix::from_vec(1, 1, vec![4.0]);
        assert_eq!(gemm(&a, &b, Kernel::Parallel).as_slice(), &[12.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        gemm(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2), Kernel::Naive);
    }
}
