//! Property-based tests for the dense substrate: exact algebraic
//! identities on integer-valued matrices (f64 arithmetic on small
//! integers is exact, so all assertions are bitwise).

use pmm_dense::{block_range, gemm, gemm_acc, identity, random_int_matrix, Block2, Kernel, Matrix};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..40, 1usize..40, 1usize..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernels_agree((m, k, n) in dims(), seed in 0u64..1000) {
        let a = random_int_matrix(m, k, -3..4, seed);
        let b = random_int_matrix(k, n, -3..4, seed + 1);
        let naive = gemm(&a, &b, Kernel::Naive);
        prop_assert_eq!(&naive, &gemm(&a, &b, Kernel::Tiled));
        prop_assert_eq!(&naive, &gemm(&a, &b, Kernel::Parallel));
    }

    #[test]
    fn identity_is_neutral((m, _k, n) in dims(), seed in 0u64..1000) {
        let a = random_int_matrix(m, n, -5..6, seed);
        prop_assert_eq!(&gemm(&a, &identity(n), Kernel::Tiled), &a);
        prop_assert_eq!(&gemm(&identity(m), &a, Kernel::Tiled), &a);
    }

    #[test]
    fn multiplication_distributes((m, k, n) in dims(), seed in 0u64..1000) {
        // A·(B + C) == A·B + A·C, exactly, on integer matrices.
        let a = random_int_matrix(m, k, -3..4, seed);
        let b = random_int_matrix(k, n, -3..4, seed + 1);
        let c = random_int_matrix(k, n, -3..4, seed + 2);
        let bc = Matrix::from_fn(k, n, |r, q| b[(r, q)] + c[(r, q)]);
        let left = gemm(&a, &bc, Kernel::Tiled);
        let mut right = gemm(&a, &b, Kernel::Tiled);
        let ac = gemm(&a, &c, Kernel::Tiled);
        for (x, y) in right.as_mut_slice().iter_mut().zip(ac.as_slice()) {
            *x += y;
        }
        prop_assert_eq!(left, right);
    }

    #[test]
    fn multiplication_is_associative(
        (m, k, n) in (1usize..12, 1usize..12, 1usize..12),
        l in 1usize..12,
        seed in 0u64..1000,
    ) {
        // (A·B)·C == A·(B·C) — exact for small integer entries.
        let a = random_int_matrix(m, k, -2..3, seed);
        let b = random_int_matrix(k, n, -2..3, seed + 1);
        let c = random_int_matrix(n, l, -2..3, seed + 2);
        let left = gemm(&gemm(&a, &b, Kernel::Naive), &c, Kernel::Naive);
        let right = gemm(&a, &gemm(&b, &c, Kernel::Naive), Kernel::Naive);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn transpose_reverses_products((m, k, n) in (1usize..15, 1usize..15, 1usize..15), seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ.
        let a = random_int_matrix(m, k, -3..4, seed);
        let b = random_int_matrix(k, n, -3..4, seed + 1);
        let left = gemm(&a, &b, Kernel::Naive).transpose();
        let right = gemm(&b.transpose(), &a.transpose(), Kernel::Naive);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn gemm_acc_equals_gemm_plus_initial((m, k, n) in dims(), seed in 0u64..1000) {
        let a = random_int_matrix(m, k, -3..4, seed);
        let b = random_int_matrix(k, n, -3..4, seed + 1);
        let init = random_int_matrix(m, n, -9..10, seed + 2);
        let mut acc = init.clone();
        gemm_acc(&mut acc, &a, &b, Kernel::Tiled);
        let prod = gemm(&a, &b, Kernel::Tiled);
        let want = Matrix::from_fn(m, n, |r, q| init[(r, q)] + prod[(r, q)]);
        prop_assert_eq!(acc, want);
    }

    #[test]
    fn blocks_reassemble_exactly(
        rows in 1usize..30, cols in 1usize..30,
        pr in 1usize..6, pc in 1usize..6,
        seed in 0u64..1000,
    ) {
        let m = random_int_matrix(rows, cols, -9..10, seed);
        let mut re = Matrix::zeros(rows, cols);
        for i in 0..pr {
            for j in 0..pc {
                let blk = Block2::of(rows, cols, pr, pc, i, j);
                let sub = blk.extract(&m);
                blk.insert(&mut re, &sub);
            }
        }
        prop_assert_eq!(re, m);
    }

    #[test]
    fn block_ranges_are_balanced(n in 0usize..500, parts in 1usize..20) {
        let lens: Vec<usize> = (0..parts).map(|i| block_range(n, parts, i).len()).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        prop_assert!(max - min <= 1, "uneven split: {lens:?}");
        prop_assert_eq!(lens.iter().sum::<usize>(), n);
    }

    #[test]
    fn sub_matches_direct_indexing(
        rows in 1usize..20, cols in 1usize..20, seed in 0u64..1000,
    ) {
        let m = random_int_matrix(rows, cols, -9..10, seed);
        let r0 = seed as usize % rows;
        let c0 = (seed as usize / 7) % cols;
        let h = rows - r0;
        let w = cols - c0;
        let s = m.sub(r0, c0, h, w);
        for r in 0..h {
            for c in 0..w {
                prop_assert_eq!(s[(r, c)], m[(r0 + r, c0 + c)]);
            }
        }
    }
}

// ---- kernel-tier bitwise equivalence -----------------------------------
//
// Every tier must produce the *bitwise identical* product to the naive
// oracle on real floating-point data: all kernels accumulate each C[i][j]
// over k in increasing order through the shared fused-multiply-add
// helper, so reassociation never occurs and f64 equality is exact — not
// merely within tolerance (see docs/PERFORMANCE.md).

use pmm_dense::random_matrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_tier_is_bitwise_identical_on_float_data(
        (m, k, n) in (1usize..48, 1usize..48, 1usize..48),
        seed in 0u64..1000,
    ) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 1);
        let oracle = gemm(&a, &b, Kernel::Naive);
        for kernel in Kernel::ALL {
            prop_assert_eq!(&oracle, &gemm(&a, &b, kernel), "tier {} diverged", kernel);
        }
    }

    #[test]
    fn every_tier_is_bitwise_identical_on_degenerate_shapes(
        sel in 0usize..4,
        x in 1usize..80,
        y in 1usize..80,
        seed in 0u64..1000,
    ) {
        // Row vectors, column outputs, outer products, and odd sizes
        // crossing the blocked kernel's microtile edges — the shapes
        // where packing/edge-case code earns its keep.
        let (m, k, n) = match sel {
            0 => (1, x, y),          // (1×k)·(k×n)
            1 => (x, y, 1),          // (m×k)·(k×1)
            2 => (x, 1, y),          // outer product
            _ => (x + 32, y + 32, 65), // odd, larger than one microtile
        };
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 1);
        let oracle = gemm(&a, &b, Kernel::Naive);
        for kernel in Kernel::ALL {
            prop_assert_eq!(&oracle, &gemm(&a, &b, kernel), "tier {} diverged", kernel);
        }
    }

    #[test]
    fn every_tier_accumulates_identically(
        (m, k, n) in (1usize..32, 1usize..32, 1usize..32),
        seed in 0u64..1000,
    ) {
        // gemm_acc must add the identical product into C for every tier.
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 1);
        let init = random_matrix(m, n, seed + 2);
        let mut oracle = init.clone();
        gemm_acc(&mut oracle, &a, &b, Kernel::Naive);
        for kernel in Kernel::ALL {
            let mut acc = init.clone();
            gemm_acc(&mut acc, &a, &b, kernel);
            prop_assert_eq!(&oracle, &acc, "tier {} diverged in gemm_acc", kernel);
        }
    }
}

#[test]
fn every_tier_handles_empty_matrices() {
    // 0×n, n×0, and inner-dimension-0 products are all defined (an empty
    // or all-zero result) and must not panic in any tier.
    for (m, k, n) in [(0usize, 5usize, 5usize), (5, 0, 5), (5, 5, 0), (0, 0, 0)] {
        let a = random_matrix(m, k, 1);
        let b = random_matrix(k, n, 2);
        let oracle = gemm(&a, &b, Kernel::Naive);
        assert_eq!((oracle.rows(), oracle.cols()), (m, n));
        for kernel in Kernel::ALL {
            assert_eq!(oracle, gemm(&a, &b, kernel), "tier {kernel} diverged on empty shape");
        }
    }
}
