//! DPOR-lite: depth-first exploration of the deterministic scheduler's
//! choice tree with sleep-set pruning.
//!
//! ## The choice tree
//!
//! A deterministic [`World`] run is fully determined by the sequence of
//! scheduler picks — the [`ChoicePoint`] stream the fabric records. The
//! schedule space of a program is therefore a tree: each node is a choice
//! prefix (the ranks picked so far), each edge one runnable rank picked
//! next. [`Schedule::Prefix`] replays any prefix exactly and then
//! completes *canonically* (always the smallest runnable rank), so every
//! node of the tree can be visited by an ordinary `World` run — including
//! nodes whose subtree ends in a deadlock or verifier abort, because
//! [`World::try_run`] hands back the recorded choice points even when the
//! run fails.
//!
//! ## Pruning
//!
//! Exploring *every* interleaving ([`Strategy::Exhaustive`]) is the
//! certificate mode: the reported schedule count is exactly the number of
//! maximal schedules of the program. For bigger worlds,
//! [`Strategy::SleepSets`] prunes Godefroid-style: when an alternative
//! `t` at a state has been fully explored, `t` goes to sleep in the
//! sibling branches and is woken only by a step whose *resource
//! footprint* overlaps `t`'s — two segments with disjoint footprints
//! commute, so re-exploring `t` before a dependent step would only
//! reproduce an already-explored Mazurkiewicz trace. Footprints come from
//! the fabric's own instrumentation ([`ChoicePoint::touched`]): mailbox
//! posts/pops (including failed emptiness checks), split-cell deposits,
//! barrier arrivals, and collective-ledger registrations.
//!
//! Every explored schedule is handed to a caller-supplied check; the
//! convenience wrappers assert bitwise schedule-independence of results
//! and meters against the first explored schedule. Failures carry the
//! choice prefix in canonical `PMM_SCHEDULE=prefix:...` form.
//!
//! [`World`]: pmm_simnet::World
//! [`World::try_run`]: pmm_simnet::World::try_run
//! [`Schedule::Prefix`]: pmm_simnet::Schedule

use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

use pmm_simnet::{
    ChoicePoint, LocalBoxFuture, Rank, Repro, Resource, RunFailure, Schedule, World, WorldResult,
};

/// How the explorer walks the choice tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Visit literally every maximal schedule — no pruning. The reported
    /// [`ExploreReport::schedules`] is then an exhaustiveness
    /// certificate: the program has exactly that many interleavings
    /// under the cooperative scheduler.
    Exhaustive,
    /// Sleep-set pruning: skip branches provably equivalent (by resource
    /// footprint commutativity) to an already-explored schedule. Covers
    /// every Mazurkiewicz trace while visiting far fewer schedules.
    SleepSets,
}

/// Exploration limits and strategy.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Walk strategy.
    pub strategy: Strategy,
    /// Stop after this many explored (maximal) schedules, if set.
    pub max_schedules: Option<u64>,
    /// Stop after this much wall-clock time, if set.
    pub wall_clock: Option<Duration>,
}

impl ExploreConfig {
    /// Exhaustive exploration with no budget — certificate mode.
    pub fn exhaustive() -> ExploreConfig {
        ExploreConfig { strategy: Strategy::Exhaustive, max_schedules: None, wall_clock: None }
    }

    /// Sleep-set pruning with no budget.
    pub fn sleep_sets() -> ExploreConfig {
        ExploreConfig { strategy: Strategy::SleepSets, max_schedules: None, wall_clock: None }
    }

    /// Budgeted frontier exploration: sleep-set pruning, stopping at
    /// `max_schedules` schedules or `wall_clock`, whichever first.
    pub fn budgeted(max_schedules: u64, wall_clock: Duration) -> ExploreConfig {
        ExploreConfig {
            strategy: Strategy::SleepSets,
            max_schedules: Some(max_schedules),
            wall_clock: Some(wall_clock),
        }
    }
}

/// What an exploration did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreReport {
    /// Maximal schedules explored (and checked).
    pub schedules: u64,
    /// World executions performed (≥ `schedules`; redundant suffixes cut
    /// by sleep sets execute but do not count as schedules).
    pub runs: u64,
    /// Redundant suffixes cut by sleep-set pruning.
    pub pruned: u64,
    /// Deepest choice prefix explored.
    pub max_depth: usize,
    /// Whether the frontier was exhausted (`false` means a budget
    /// stopped the walk first). Under [`Strategy::Exhaustive`] with
    /// `complete == true`, `schedules` is the exact interleaving count.
    pub complete: bool,
    /// Nodes still on the frontier when the walk stopped (0 iff
    /// `complete`).
    pub frontier: usize,
}

/// A failing schedule found by exploration: the choice prefix that
/// reaches it (a complete, canonical repro) and what went wrong.
#[derive(Debug)]
pub struct ScheduleFailure {
    /// Choices of the failing run, from the root.
    pub prefix: Vec<usize>,
    /// What failed (check diff, verifier report, rank panic, ...).
    pub detail: String,
}

impl ScheduleFailure {
    /// The canonical replay recipe for the failing schedule.
    pub fn repro(&self) -> Repro {
        Repro::Prefix(self.prefix.clone())
    }
}

impl std::fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schedule exploration failed: {}\n[{}]", self.detail, self.repro().hint())
    }
}

impl std::error::Error for ScheduleFailure {}

/// The outcome of one explored schedule, as seen by the per-schedule
/// callback of [`explore_outcomes`].
pub type ScheduleOutcome<'a, T> = Result<&'a WorldResult<T>, &'a RunFailure>;

type Footprint = BTreeSet<Resource>;

fn footprint(touched: &[Resource]) -> Footprint {
    touched.iter().copied().collect()
}

fn dependent(a: &Footprint, b: &Footprint) -> bool {
    a.intersection(b).next().is_some()
}

/// A rank put to sleep at some state. Footprints of earlier same-state
/// siblings are not known at push time; they are resolved from the memo
/// (keyed by the sleep state) when the node is popped — the LIFO walk
/// order guarantees the sibling's branch has executed by then.
#[derive(Debug, Clone)]
struct SleepEntry {
    rank: usize,
    fp: Option<Footprint>,
    state: Vec<usize>,
}

#[derive(Debug)]
struct Node {
    prefix: Vec<usize>,
    sleep: Vec<SleepEntry>,
}

/// Explore the schedule space of `program` on `world`, invoking
/// `on_schedule` once per explored maximal schedule with the full choice
/// sequence and the run's outcome — a [`WorldResult`] or, for schedules
/// that end in a verifier abort / deadlock / rank panic, the captured
/// [`RunFailure`]. Returning `Err` from the callback stops the walk and
/// surfaces a [`ScheduleFailure`] naming the choice prefix.
///
/// This is the engine; [`explore`] and [`explore_checked`] wrap it with
/// the standard schedule-independence checks. `world` must **not**
/// already carry a schedule — the explorer owns that knob.
pub fn explore_outcomes<T, F, C>(
    world: &World,
    program: F,
    cfg: &ExploreConfig,
    on_schedule: C,
) -> Result<ExploreReport, ScheduleFailure>
where
    T: Send,
    F: Fn(&mut Rank) -> T + Send + Sync,
    C: FnMut(&[usize], ScheduleOutcome<'_, T>) -> Result<(), String>,
{
    explore_with_runner(
        cfg,
        |prefix| world.clone().with_schedule(Schedule::Prefix(prefix)).try_run(&program),
        on_schedule,
    )
}

/// [`explore_outcomes`] for **async** rank programs: every explored
/// schedule runs through [`World::run_async`] on the world's resolved
/// engine, so the same DPOR walk certifies the event-loop engine (or the
/// thread backend under [`World::with_engine`]). The choice tree is
/// engine-independent — both engines drive the identical deterministic
/// scheduler — so certificates (schedule counts) carry across engines.
pub fn explore_outcomes_async<T, F, C>(
    world: &World,
    program: F,
    cfg: &ExploreConfig,
    on_schedule: C,
) -> Result<ExploreReport, ScheduleFailure>
where
    T: Send,
    F: for<'a> Fn(&'a mut Rank) -> LocalBoxFuture<'a, T> + Send + Sync,
    C: FnMut(&[usize], ScheduleOutcome<'_, T>) -> Result<(), String>,
{
    explore_with_runner(
        cfg,
        |prefix| world.clone().with_schedule(Schedule::Prefix(prefix)).try_run_async(&program),
        on_schedule,
    )
}

/// The engine-agnostic DPOR walk: `run_prefix` executes one world run
/// under a given choice prefix (sync or async backend — the walk only
/// sees the [`WorldResult`] / [`RunFailure`] artifacts, which both
/// engines produce identically).
fn explore_with_runner<T, R, C>(
    cfg: &ExploreConfig,
    run_prefix: R,
    mut on_schedule: C,
) -> Result<ExploreReport, ScheduleFailure>
where
    T: Send,
    R: Fn(Vec<usize>) -> Result<WorldResult<T>, RunFailure>,
    C: FnMut(&[usize], ScheduleOutcome<'_, T>) -> Result<(), String>,
{
    let started = Instant::now();
    let mut report = ExploreReport {
        schedules: 0,
        runs: 0,
        pruned: 0,
        max_depth: 0,
        complete: true,
        frontier: 0,
    };
    // (state, rank) -> footprint of rank's segment when chosen at state.
    let mut memo: HashMap<(Vec<usize>, usize), Footprint> = HashMap::new();
    let mut stack: Vec<Node> = vec![Node { prefix: Vec::new(), sleep: Vec::new() }];

    while let Some(node) = stack.pop() {
        if cfg.max_schedules.is_some_and(|m| report.schedules >= m)
            || cfg.wall_clock.is_some_and(|w| started.elapsed() >= w)
        {
            report.complete = false;
            report.frontier = stack.len() + 1;
            return Ok(report);
        }

        let outcome = run_prefix(node.prefix.clone());
        report.runs += 1;

        let cps: &[ChoicePoint] = match &outcome {
            Ok(out) => out.choice_points.as_deref().unwrap_or_default(),
            Err(fail) => {
                if fail.report.contains("schedule prefix diverged") {
                    return Err(ScheduleFailure {
                        prefix: node.prefix,
                        detail: format!(
                            "prefix replay diverged — the program is schedule-nondeterministic \
                             in its communication structure: {}",
                            fail.report
                        ),
                    });
                }
                fail.choice_points.as_deref().unwrap_or_default()
            }
        };
        let choices: Vec<usize> = cps.iter().map(|c| c.chosen).collect();
        if choices.len() < node.prefix.len() || choices[..node.prefix.len()] != node.prefix[..] {
            return Err(ScheduleFailure {
                prefix: node.prefix,
                detail: format!(
                    "replayed run did not follow its own prefix (made {} choices) — \
                     schedule-nondeterministic program or explorer bug",
                    choices.len()
                ),
            });
        }
        report.max_depth = report.max_depth.max(choices.len());

        let sleeping = cfg.strategy == Strategy::SleepSets;
        if sleeping {
            for (i, cp) in cps.iter().enumerate() {
                memo.entry((choices[..i].to_vec(), cp.chosen))
                    .or_insert_with(|| footprint(&cp.touched));
            }
        }

        // Resolve the node's sleep set, then wake entries dependent with
        // the step that created this node (the last prefix choice).
        let mut sleep: Vec<(usize, Footprint)> = Vec::new();
        if sleeping {
            for e in &node.sleep {
                let fp = match &e.fp {
                    Some(fp) => Some(fp.clone()),
                    None => memo.get(&(e.state.clone(), e.rank)).cloned(),
                };
                // An unresolvable entry is dropped (= woken): that only
                // costs extra exploration, never soundness.
                if let Some(fp) = fp {
                    sleep.push((e.rank, fp));
                }
            }
            if let Some(d) = node.prefix.len().checked_sub(1) {
                let own = footprint(&cps[d].touched);
                sleep.retain(|(_, fp)| !dependent(fp, &own));
            }
        }

        // Walk the run's choice points from this node's depth, pushing
        // unexplored siblings and advancing the sleep set step by step.
        let mut counted = true;
        for i in node.prefix.len()..cps.len() {
            let cp = &cps[i];
            let state = &choices[..i];
            let fp_c = footprint(&cp.touched);
            if sleep.iter().any(|(r, _)| *r == cp.chosen) {
                // The canonical completion walked into a sleeping rank:
                // this suffix replays an already-explored trace. Push the
                // genuinely-new alternatives and cut.
                let alts: Vec<usize> = cp
                    .ready
                    .iter()
                    .copied()
                    .filter(|r| *r != cp.chosen && !sleep.iter().any(|(s, _)| s == r))
                    .collect();
                push_siblings(&mut stack, state, &alts, &sleep, None, sleeping);
                report.pruned += 1;
                counted = false;
                break;
            }
            let alts: Vec<usize> = cp
                .ready
                .iter()
                .copied()
                .filter(|r| *r != cp.chosen && !sleep.iter().any(|(s, _)| s == r))
                .collect();
            push_siblings(&mut stack, state, &alts, &sleep, Some((cp.chosen, &fp_c)), sleeping);
            if sleeping {
                sleep.retain(|(_, fp)| !dependent(fp, &fp_c));
            }
        }

        if counted {
            report.schedules += 1;
            if let Err(detail) = on_schedule(&choices, outcome.as_ref()) {
                return Err(ScheduleFailure { prefix: choices, detail });
            }
        }
    }
    Ok(report)
}

/// Push one child node per unexplored alternative at `state`. In sleep
/// mode each sibling's sleep set carries the current sleep entries, the
/// canonically-chosen rank (footprint known from this run), and every
/// earlier sibling (footprint resolved later via the memo). Siblings are
/// pushed in reverse so the smallest alternative is explored first —
/// the order the memo resolution relies on.
fn push_siblings(
    stack: &mut Vec<Node>,
    state: &[usize],
    alts: &[usize],
    sleep: &[(usize, Footprint)],
    chosen: Option<(usize, &Footprint)>,
    sleeping: bool,
) {
    for (k, &t) in alts.iter().enumerate().rev() {
        let mut prefix = state.to_vec();
        prefix.push(t);
        let mut entries: Vec<SleepEntry> = Vec::new();
        if sleeping {
            entries.extend(sleep.iter().map(|(r, fp)| SleepEntry {
                rank: *r,
                fp: Some(fp.clone()),
                state: state.to_vec(),
            }));
            if let Some((c, fp_c)) = chosen {
                entries.push(SleepEntry { rank: c, fp: Some(fp_c.clone()), state: state.to_vec() });
            }
            entries.extend(alts[..k].iter().map(|&s| SleepEntry {
                rank: s,
                fp: None,
                state: state.to_vec(),
            }));
        }
        stack.push(Node { prefix, sleep: entries });
    }
}

/// One rank's summary used for the bitwise schedule-independence check.
#[derive(Debug, Clone, PartialEq)]
struct RankSummary {
    meter: pmm_simnet::Meter,
    time: f64,
    peak_mem_words: u64,
}

/// The standard schedule-independence oracle shared by the checked
/// exploration entry points: the first explored schedule sets the
/// baseline; every later one must match it bitwise in per-rank values,
/// meters, clocks, and memory peaks, and no schedule may fail.
#[derive(Default)]
struct IndependenceChecker {
    baseline: Option<(Vec<String>, Vec<RankSummary>)>,
}

impl IndependenceChecker {
    fn check<T: std::fmt::Debug>(&mut self, out: &WorldResult<T>) -> Result<(), String> {
        let values: Vec<String> = out.values.iter().map(|v| format!("{v:?}")).collect();
        let summaries: Vec<RankSummary> = out
            .reports
            .iter()
            .map(|r| RankSummary { meter: r.meter, time: r.time, peak_mem_words: r.peak_mem_words })
            .collect();
        match &self.baseline {
            None => {
                self.baseline = Some((values, summaries));
            }
            Some((base_vals, base_sums)) => {
                for r in 0..base_vals.len() {
                    if values[r] != base_vals[r] {
                        return Err(format!(
                            "schedule-dependent result: rank {r} value {} vs baseline {}",
                            values[r], base_vals[r]
                        ));
                    }
                    if summaries[r] != base_sums[r] {
                        return Err(format!(
                            "schedule-dependent accounting: rank {r} {:?} vs baseline {:?}",
                            summaries[r], base_sums[r]
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Explore and assert, on every explored schedule, that the program
/// produced bitwise-identical per-rank values, meters, clocks, and
/// memory peaks as the first explored schedule, that no schedule fails
/// (verifier report, deadlock, panic), and that the caller's `check`
/// oracle holds. Returns the exploration report, or the first failing
/// schedule with its choice-prefix repro.
pub fn explore_checked<T, F, C>(
    world: &World,
    program: F,
    cfg: &ExploreConfig,
    mut check: C,
) -> Result<ExploreReport, ScheduleFailure>
where
    T: Send + PartialEq + std::fmt::Debug,
    F: Fn(&mut Rank) -> T + Send + Sync,
    C: FnMut(&WorldResult<T>) -> Result<(), String>,
{
    let mut indep = IndependenceChecker::default();
    explore_outcomes(world, program, cfg, |_choices, outcome| {
        let out = outcome.map_err(|fail| format!("schedule fails: {}", fail.report))?;
        indep.check(out)?;
        check(out)
    })
}

/// [`explore_checked`] for async rank programs (see
/// [`explore_outcomes_async`]).
pub fn explore_checked_async<T, F, C>(
    world: &World,
    program: F,
    cfg: &ExploreConfig,
    mut check: C,
) -> Result<ExploreReport, ScheduleFailure>
where
    T: Send + PartialEq + std::fmt::Debug,
    F: for<'a> Fn(&'a mut Rank) -> LocalBoxFuture<'a, T> + Send + Sync,
    C: FnMut(&WorldResult<T>) -> Result<(), String>,
{
    let mut indep = IndependenceChecker::default();
    explore_outcomes_async(world, program, cfg, |_choices, outcome| {
        let out = outcome.map_err(|fail| format!("schedule fails: {}", fail.report))?;
        indep.check(out)?;
        check(out)
    })
}

/// [`explore`] for async rank programs: schedule-independence and
/// failure-freedom over the world's resolved engine.
pub fn explore_async<T, F>(
    world: &World,
    program: F,
    cfg: &ExploreConfig,
) -> Result<ExploreReport, ScheduleFailure>
where
    T: Send + PartialEq + std::fmt::Debug,
    F: for<'a> Fn(&'a mut Rank) -> LocalBoxFuture<'a, T> + Send + Sync,
{
    explore_checked_async(world, program, cfg, |_| Ok(()))
}

/// [`explore_checked`] with no extra oracle: schedule-independence and
/// failure-freedom only.
pub fn explore<T, F>(
    world: &World,
    program: F,
    cfg: &ExploreConfig,
) -> Result<ExploreReport, ScheduleFailure>
where
    T: Send + PartialEq + std::fmt::Debug,
    F: Fn(&mut Rank) -> T + Send + Sync,
{
    explore_checked(world, program, cfg, |_| Ok(()))
}
