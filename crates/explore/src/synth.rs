//! Generative rank-program synthesis with an intent oracle.
//!
//! A seeded generator assembles random rank programs from a small AST of
//! communication patterns — collective sequences, communicator splits,
//! point-to-point shifts and exchanges, optional fault plans — and labels
//! each program with an [`Intent`]: either `Valid` (the program is
//! well-formed and must pass every check) or one of four deliberately
//! injected defect classes the verifier is expected to flag. Running the
//! program and comparing the verifier's verdict against the intent gives
//! an end-to-end oracle for the static checks:
//!
//! * a **false positive** is a `Valid` program that gets flagged;
//! * a **false negative** is a defective program that runs clean;
//! * a **misclassification** is a defective program flagged with a
//!   report that does not describe the injected defect.
//!
//! [`soak`] runs a batch of generated programs and fails on the first of
//! any of the three, printing the generator seed so the exact program can
//! be replayed. The defect classes:
//!
//! | intent | injection | expected report |
//! |---|---|---|
//! | [`Intent::CollectiveMismatch`] | one member registers a different op (or element count on a uniform-count op) | `collective mismatch` |
//! | [`Intent::Deadlock`] | a gather whose root waits on a member that never sends | `deadlock detected` |
//! | [`Intent::SplitDisorder`] | one member reorders a collective against a `split` on the same communicator | `collective mismatch` |
//! | [`Intent::UndrainedTraffic`] | a message sent that no one receives, under strict drain | `undrained` / conservation |

use pmm_simnet::{CollectiveOp, Comm, FaultPlan, MachineParams, Rank, Schedule, World};

/// What a generated program is *supposed* to do — the oracle label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intent {
    /// Well-formed: must complete with no verifier report on every
    /// schedule (results and meters schedule-independent).
    Valid,
    /// One member registers a mismatched collective (different op kind,
    /// or different element count on a count-uniform op).
    CollectiveMismatch,
    /// A gather root waits forever on a member that skips its send.
    Deadlock,
    /// One member issues a collective and a `split` on the same
    /// communicator in the opposite order from the others.
    SplitDisorder,
    /// A message is sent that no receiver ever drains (the program runs
    /// under strict drain checking).
    UndrainedTraffic,
}

/// One step of a generated rank program. Programs are SPMD: every rank
/// interprets the same step list over its own communicator position.
#[derive(Debug, Clone)]
pub enum GStep {
    /// Local flops.
    Compute(u32),
    /// Every member sends `words` to `(i + 1) % n` and receives from
    /// `(i + n - 1) % n` as one full-duplex exchange. No-op on
    /// communicators smaller than 2.
    RingShift {
        /// Payload size in words.
        words: usize,
    },
    /// Members send `words` to `root`; the root receives from every
    /// other member in index order. `skip_sender: Some(s)` makes member
    /// `s` skip its send — the root then waits forever (the
    /// [`Intent::Deadlock`] injection).
    GatherToRoot {
        /// Receiving member index.
        root: usize,
        /// Payload size in words.
        words: usize,
        /// Member that withholds its contribution, if any.
        skip_sender: Option<usize>,
    },
    /// Members pair up `(0,1)(2,3)…` and exchange `words`; a trailing
    /// odd member sits out.
    PairExchange {
        /// Payload size in words.
        words: usize,
    },
    /// Every member registers `op`/`elems` with the collective-matching
    /// lint — except member `odd_one.0`, which registers its own op and
    /// count (the [`Intent::CollectiveMismatch`] injection when they
    /// differ).
    Register {
        /// Op the members agree on.
        op: CollectiveOp,
        /// Element count the members agree on.
        elems: u64,
        /// `(member index, op, elems)` for the one defector, if any.
        odd_one: Option<(usize, CollectiveOp, u64)>,
    },
    /// World-wide barrier.
    Barrier,
    /// Split the current communicator into evens and odds (by member
    /// index) and interpret `steps` inside the sub-communicator. With
    /// `disorder`, member 0 registers an `AllReduce` on the parent
    /// *before* splitting while everyone else registers it *after* — a
    /// program-order violation the ledger lint must flag (the
    /// [`Intent::SplitDisorder`] injection).
    SplitPhase {
        /// Steps run inside the sub-communicator.
        steps: Vec<GStep>,
        /// Reorder member 0's collective against the split.
        disorder: bool,
    },
    /// The highest-index member sends `words` to member 0; nobody
    /// receives it (the [`Intent::UndrainedTraffic`] injection — only
    /// ever generated as the final step).
    OrphanSend {
        /// Payload size in words.
        words: usize,
    },
}

/// A generated SPMD rank program with its oracle label.
#[derive(Debug, Clone)]
pub struct GenProgram {
    /// Generator seed that produced this program (replay key).
    pub seed: u64,
    /// World size the program is built for.
    pub world_size: usize,
    /// Oracle label.
    pub intent: Intent,
    /// Top-level steps, interpreted over the world communicator.
    pub steps: Vec<GStep>,
    /// Message-fault plan to run under, if any (only attached to
    /// `Valid` programs).
    pub faults: Option<FaultPlan>,
}

// Local SplitMix64 so generation is seed-reproducible without depending
// on the fabric's (private) generator.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, bound: u64) -> u64 {
    mix(state) % bound
}

const UNIFORM_OPS: [CollectiveOp; 4] = [
    CollectiveOp::AllReduce,
    CollectiveOp::ReduceScatter,
    CollectiveOp::AllToAll,
    CollectiveOp::Barrier,
];

/// One random well-formed step for a communicator of (at least) `size`
/// members. `depth` limits split nesting.
fn valid_step(s: &mut u64, size: usize, depth: usize) -> GStep {
    let kinds = if depth == 0 && size >= 2 { 7 } else { 6 };
    match pick(s, kinds) {
        0 => GStep::Compute(1 + pick(s, 64) as u32),
        1 => GStep::RingShift { words: 1 + pick(s, 8) as usize },
        2 => GStep::GatherToRoot {
            root: pick(s, size as u64) as usize,
            words: 1 + pick(s, 8) as usize,
            skip_sender: None,
        },
        3 => GStep::PairExchange { words: 1 + pick(s, 8) as usize },
        4 => GStep::Register {
            op: UNIFORM_OPS[pick(s, UNIFORM_OPS.len() as u64) as usize],
            elems: 1 + pick(s, 64),
            odd_one: None,
        },
        5 => GStep::Barrier,
        _ => {
            let inner_size = size / 2; // the smaller half
            let n = 1 + pick(s, 2) as usize;
            let steps = (0..n).map(|_| valid_step(s, inner_size.max(1), depth + 1)).collect();
            GStep::SplitPhase { steps, disorder: false }
        }
    }
}

/// Generate the program for `seed`. Roughly half the programs are
/// `Valid`; the rest carry exactly one injected defect. A third of the
/// valid programs additionally run under a seeded drop/duplicate fault
/// plan (exercising the reliable-delivery layer under generation).
pub fn generate(seed: u64) -> GenProgram {
    let mut state = seed;
    let s = &mut state;
    let world_size = 2 + pick(s, 5) as usize; // 2..=6
    let mut steps: Vec<GStep> = (0..1 + pick(s, 4)).map(|_| valid_step(s, world_size, 0)).collect();

    let intent = match pick(s, 16) {
        0..=7 => Intent::Valid,
        8..=10 => Intent::CollectiveMismatch,
        11..=12 => Intent::Deadlock,
        13 => Intent::SplitDisorder,
        _ => Intent::UndrainedTraffic,
    };

    match intent {
        Intent::Valid => {}
        Intent::CollectiveMismatch => {
            let victim = pick(s, world_size as u64) as usize;
            let elems = 1 + pick(s, 64);
            let odd_one = if pick(s, 2) == 0 {
                // Different op kind.
                (victim, CollectiveOp::AllToAll, elems)
            } else {
                // Same (count-uniform) op, skewed element count.
                (victim, CollectiveOp::AllReduce, elems + 1 + pick(s, 16))
            };
            let at = pick(s, steps.len() as u64 + 1) as usize;
            steps.insert(
                at,
                GStep::Register { op: CollectiveOp::AllReduce, elems, odd_one: Some(odd_one) },
            );
        }
        Intent::Deadlock => {
            let root = pick(s, world_size as u64) as usize;
            let mut skip = pick(s, world_size as u64 - 1) as usize;
            if skip >= root {
                skip += 1; // any member but the root
            }
            let at = pick(s, steps.len() as u64 + 1) as usize;
            steps.insert(
                at,
                GStep::GatherToRoot {
                    root,
                    words: 1 + pick(s, 8) as usize,
                    skip_sender: Some(skip),
                },
            );
        }
        Intent::SplitDisorder => {
            steps.push(GStep::SplitPhase { steps: Vec::new(), disorder: true });
        }
        Intent::UndrainedTraffic => {
            // Must stay last: nothing may receive after it.
            steps.push(GStep::OrphanSend { words: 1 + pick(s, 8) as usize });
        }
    }

    let faults = if intent == Intent::Valid && pick(s, 3) == 0 {
        Some(FaultPlan::none().with_seed(mix(s)).with_drop(0.15).with_duplicate(0.1))
    } else {
        None
    };

    GenProgram { seed, world_size, intent, steps, faults }
}

/// Interpret `steps` over `comm`, returning a checksum of received
/// payloads (so results are comparable across schedules).
fn run_steps(rank: &mut Rank, comm: &Comm, steps: &[GStep]) -> f64 {
    let me = comm.index();
    let n = comm.size();
    let mut acc = 0.0;
    for step in steps {
        match step {
            GStep::Compute(flops) => rank.compute(f64::from(*flops)),
            GStep::RingShift { words } => {
                if n >= 2 {
                    let to = (me + 1) % n;
                    let from = (me + n - 1) % n;
                    let payload = vec![me as f64 + 1.0; *words];
                    acc += rank.exchange(comm, to, from, &payload).payload.iter().sum::<f64>();
                }
            }
            GStep::GatherToRoot { root, words, skip_sender } => {
                let root = root % n;
                if me == root {
                    // The root receives from every member — including a
                    // skipped sender, whose missing message is the
                    // injected deadlock.
                    for from in (0..n).filter(|f| *f != root) {
                        acc += rank.recv(comm, from).payload.iter().sum::<f64>();
                    }
                } else if *skip_sender != Some(me) {
                    rank.send(comm, root, &vec![me as f64 + 1.0; *words]);
                }
            }
            GStep::PairExchange { words } => {
                let partner = if me.is_multiple_of(2) { me + 1 } else { me - 1 };
                if partner < n {
                    let payload = vec![me as f64 + 1.0; *words];
                    acc +=
                        rank.exchange(comm, partner, partner, &payload).payload.iter().sum::<f64>();
                }
            }
            GStep::Register { op, elems, odd_one } => match odd_one {
                Some((victim, vop, velems)) if *victim % n == me => {
                    rank.collective_begin(comm, *vop, *velems);
                }
                _ => rank.collective_begin(comm, *op, *elems),
            },
            GStep::Barrier => rank.hard_sync(),
            GStep::SplitPhase { steps, disorder } => {
                if n < 2 {
                    acc += run_steps(rank, comm, steps);
                    continue;
                }
                if *disorder && me == 0 {
                    rank.collective_begin(comm, CollectiveOp::AllReduce, 8);
                }
                let sub = rank.split(comm, (me % 2) as i64, me as i64);
                if *disorder && me != 0 {
                    rank.collective_begin(comm, CollectiveOp::AllReduce, 8);
                }
                if let Some(sub) = sub {
                    acc += run_steps(rank, &sub, steps);
                }
            }
            GStep::OrphanSend { words } => {
                if n >= 2 && me == n - 1 {
                    rank.send(comm, 0, &vec![1.0; *words]);
                }
            }
        }
    }
    acc
}

/// Run `prog` as an SPMD program on a rank (the entry point handed to
/// [`World::run`] / the explorer).
pub fn interpret(prog: &GenProgram, rank: &mut Rank) -> f64 {
    let world = rank.world_comm();
    run_steps(rank, &world, &prog.steps)
}

/// Build the world a generated program is meant to run under: the
/// deterministic scheduler (seeded from the program seed), strict drain
/// checking (off when a fault plan is attached — retransmission
/// duplicates may legitimately linger), and the program's fault plan.
pub fn world_for(prog: &GenProgram) -> World {
    let mut world = World::new(prog.world_size, MachineParams::BANDWIDTH_ONLY)
        .without_watchdog()
        .with_schedule(Schedule::Seeded(prog.seed))
        .with_strict_drain(prog.faults.is_none());
    if let Some(plan) = &prog.faults {
        world = world.with_faults(plan.clone());
    }
    world
}

/// What happened when a generated program ran.
#[derive(Debug, Clone)]
pub struct GenOutcome {
    /// The verifier/runtime report, if the run was flagged.
    pub flagged: Option<String>,
}

/// Execute `prog` once under [`world_for`] and capture whether any check
/// flagged it.
pub fn run_generated(prog: &GenProgram) -> GenOutcome {
    match world_for(prog).try_run(|rank| interpret(prog, rank)) {
        Ok(_) => GenOutcome { flagged: None },
        Err(failure) => GenOutcome { flagged: Some(failure.report) },
    }
}

fn report_matches(intent: Intent, report: &str) -> bool {
    match intent {
        Intent::Valid => false,
        Intent::CollectiveMismatch | Intent::SplitDisorder => {
            report.contains("collective mismatch")
        }
        Intent::Deadlock => report.contains("deadlock detected"),
        Intent::UndrainedTraffic => {
            report.contains("undrained") || report.contains("conservation violated")
        }
    }
}

/// Compare a run outcome against the program's intent: `Err` describes a
/// false positive (valid program flagged), false negative (defective
/// program clean), or misclassification (flagged for the wrong reason).
pub fn verdict(prog: &GenProgram, outcome: &GenOutcome) -> Result<(), String> {
    match (&prog.intent, &outcome.flagged) {
        (Intent::Valid, None) => Ok(()),
        (Intent::Valid, Some(report)) => {
            Err(format!("false positive: valid program flagged:\n{report}"))
        }
        (intent, None) => Err(format!("false negative: {intent:?} program was not flagged")),
        (intent, Some(report)) => {
            if report_matches(*intent, report) {
                Ok(())
            } else {
                Err(format!(
                    "misclassified: {intent:?} program flagged for the wrong reason:\n{report}"
                ))
            }
        }
    }
}

/// Per-intent tallies from a [`soak`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoakStats {
    /// Programs executed.
    pub programs: u64,
    /// `Valid` programs (all ran clean).
    pub valid: u64,
    /// `CollectiveMismatch` programs (all flagged correctly).
    pub mismatch: u64,
    /// `Deadlock` programs (all flagged correctly).
    pub deadlock: u64,
    /// `SplitDisorder` programs (all flagged correctly).
    pub disorder: u64,
    /// `UndrainedTraffic` programs (all flagged correctly).
    pub undrained: u64,
}

/// Generate and run `count` programs from consecutive seeds starting at
/// `seed0`, checking every verdict against the intent oracle. Returns
/// tallies, or the first oracle violation (naming the generator seed so
/// `generate(seed)` reproduces the exact program).
pub fn soak(seed0: u64, count: u64) -> Result<SoakStats, String> {
    let mut stats = SoakStats::default();
    for i in 0..count {
        let seed = seed0.wrapping_add(i);
        let prog = generate(seed);
        let outcome = run_generated(&prog);
        verdict(&prog, &outcome).map_err(|e| {
            format!("generated program seed {seed} ({:?}, P={}): {e}", prog.intent, prog.world_size)
        })?;
        stats.programs += 1;
        match prog.intent {
            Intent::Valid => stats.valid += 1,
            Intent::CollectiveMismatch => stats.mismatch += 1,
            Intent::Deadlock => stats.deadlock += 1,
            Intent::SplitDisorder => stats.disorder += 1,
            Intent::UndrainedTraffic => stats.undrained += 1,
        }
    }
    Ok(stats)
}
