//! # pmm-explore — schedule-space exploration for `pmm-simnet`
//!
//! The deterministic scheduler in `pmm-simnet` makes every rank
//! interleaving a replayable object: a run is a sequence of scheduler
//! picks, each recorded as a [`ChoicePoint`] (runnable set, chosen rank,
//! resources touched), and any pick prefix can be replayed exactly with
//! [`Schedule::Prefix`]. This crate turns that into a race checker:
//!
//! * [`dpor`] — DPOR-lite exploration of the choice tree. Depth-first
//!   replay over prefixes, with sleep-set pruning driven by the
//!   fabric-recorded resource footprints; [`Strategy::Exhaustive`]
//!   visits literally every interleaving and reports the count as an
//!   exhaustiveness certificate for small worlds, while budgeted
//!   sleep-set runs sweep a frontier of larger schedule spaces. Every
//!   explored schedule is checked: results and meters must be bitwise
//!   schedule-independent and no schedule may deadlock or trip the
//!   verifier. Failures name the choice prefix in `PMM_SCHEDULE` form.
//! * [`synth`] — generative rank-program synthesis with an intent
//!   oracle. A seeded generator emits random valid *and* deliberately
//!   malformed programs (collective mismatches, deadlocks, split
//!   disorder, undrained traffic); the verifier must flag exactly the
//!   malformed ones, for the right reason.
//!
//! ```
//! use pmm_explore::{explore, ExploreConfig};
//! use pmm_simnet::{MachineParams, World};
//!
//! // Prove a 3-rank exchange is schedule-independent — exhaustively.
//! let world = World::new(3, MachineParams::BANDWIDTH_ONLY);
//! let report = explore(
//!     &world,
//!     |rank| {
//!         let comm = rank.world_comm();
//!         let me = rank.world_rank();
//!         let n = comm.size();
//!         let msg = rank.exchange(&comm, (me + 1) % n, (me + n - 1) % n, &[me as f64]);
//!         msg.payload[0]
//!     },
//!     &ExploreConfig::exhaustive(),
//! )
//! .expect("some schedule failed");
//! assert!(report.complete, "exhaustive walk must drain the frontier");
//! assert!(report.schedules >= 1);
//! ```
//!
//! [`ChoicePoint`]: pmm_simnet::ChoicePoint
//! [`Schedule::Prefix`]: pmm_simnet::Schedule::Prefix

#![warn(missing_docs)]

pub mod dpor;
pub mod synth;

pub use dpor::{
    explore, explore_async, explore_checked, explore_checked_async, explore_outcomes,
    explore_outcomes_async, ExploreConfig, ExploreReport, ScheduleFailure, ScheduleOutcome,
    Strategy,
};
pub use synth::{
    generate, interpret, run_generated, soak, verdict, world_for, GStep, GenOutcome, GenProgram,
    Intent, SoakStats,
};
