//! End-to-end smoke tests of the `pmm` binary: exit codes are part of
//! the CLI contract (scripts and CI gate on them), so they are asserted
//! here against the real executable, not the library functions.

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn pmm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pmm")).args(args).output().expect("pmm binary runs")
}

fn pmm_with_stdin(args: &[&str], input: &[u8]) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pmm"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("pmm binary spawns");
    child.stdin.take().expect("piped stdin").write_all(input).expect("write stdin");
    child.wait_with_output().expect("pmm binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn simulate_verified_product_exits_zero() {
    let out = pmm(&["simulate", "--dims", "24x12x18", "--procs", "4", "--seed", "3"]);
    let text = stdout(&out);
    assert!(out.status.success(), "exit: {:?}\n{text}", out.status);
    assert!(text.contains("correct ✓"), "{text}");
}

#[test]
fn simulate_with_faults_recovers_and_exits_zero() {
    let out = pmm(&[
        "simulate",
        "--dims",
        "24x24x24",
        "--procs",
        "9",
        "--seed",
        "7",
        "--faults",
        "drop=0.05,kill=4@5,seed=0xFA",
    ]);
    let text = stdout(&out);
    assert!(out.status.success(), "exit: {:?}\n{text}", out.status);
    assert!(text.contains("correct ✓"), "{text}");
    assert!(text.contains("rank 4"), "must report the killed rank: {text}");
    assert!(text.contains("kill=4@5"), "must name the fault-plan entry: {text}");
}

#[test]
fn simulate_with_multi_fault_partition_plan_recovers_and_exits_zero() {
    // The full fault grammar in one plan: two deaths (a pinned kill and
    // a cascade triggered by it), a healing partition, and a straggler
    // storm. Recovery must re-plan onto the survivors and still verify.
    let out = pmm(&[
        "simulate",
        "--dims",
        "24x24x24",
        "--procs",
        "10",
        "--seed",
        "7",
        "--faults",
        "drop=0.03,kill=4@5,cascade=9@1,part=0+1@2..20#2,storm=0.2x2.0,seed=0xFA",
    ]);
    let text = stdout(&out);
    assert!(out.status.success(), "exit: {:?}\n{text}", out.status);
    assert!(text.contains("correct ✓"), "{text}");
    assert!(text.contains("survivors"), "must report the survivor set: {text}");
    assert!(text.contains("attempt(s)"), "must report the attempt count: {text}");
}

#[test]
fn simulate_unrecoverable_fault_exits_nonzero() {
    // Zero retransmissions under heavy drop: the first lost copy
    // exhausts the sender's budget and the run must fail with a report
    // naming the message and plan, not hang or exit 0.
    let out = pmm(&[
        "simulate",
        "--dims",
        "12x12x12",
        "--procs",
        "4",
        "--faults",
        "drop=0.95,retries=0,seed=1",
    ]);
    let text = stdout(&out);
    assert!(!out.status.success(), "a hopeless fault plan must fail\n{text}");
    assert!(text.contains("UNRECOVERED"), "{text}");
    assert!(text.contains("exhausted"), "must report retry exhaustion: {text}");
}

#[test]
fn bad_faults_spec_exits_two() {
    let out = pmm(&["simulate", "--dims", "8x8x8", "--procs", "2", "--faults", "nonsense"]);
    assert_eq!(out.status.code(), Some(2), "parse errors exit 2");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("--faults"), "{err}");
}

#[test]
fn help_covers_every_command_and_exits_zero() {
    let out = pmm(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in
        ["bound", "grid", "advise", "simulate", "trace", "sweep", "serve", "--faults", "--out"]
    {
        assert!(text.contains(cmd), "help must mention {cmd}");
    }
}

#[test]
fn serve_oneshot_valid_query_exits_zero() {
    let out = pmm_with_stdin(&["serve", "--oneshot"], b"ADVISE 96 24 6 36 inf\n");
    let text = stdout(&out);
    assert!(out.status.success(), "exit: {:?}\n{text}", out.status);
    assert!(text.starts_with("OK advise case=2D"), "{text}");
    assert!(text.contains("algo="), "{text}");
    assert_eq!(text.matches('\n').count(), 1, "exactly one response line: {text:?}");
}

#[test]
fn serve_oneshot_malformed_query_exits_nonzero_with_structured_error() {
    let out = pmm_with_stdin(&["serve", "--oneshot"], b"ADVISE banana\n");
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "malformed request exits 1\n{text}");
    assert!(text.starts_with("ERR parse:"), "{text}");

    let out = pmm_with_stdin(&["serve", "--oneshot"], b"ADVISE 0 8 8 4 inf\n");
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "invalid query exits 1\n{text}");
    assert!(text.starts_with("ERR advisor:"), "{text}");

    let out = pmm_with_stdin(&["serve", "--oneshot"], b"");
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "empty stdin exits 1\n{text}");
    assert!(text.starts_with("ERR empty:"), "{text}");
}

#[test]
fn serve_stdio_answers_each_line_and_drains_at_eof() {
    let out = pmm_with_stdin(&["serve"], b"PING\nADVISE 96 24 6 36 inf\nSTATS\n");
    let text = stdout(&out);
    assert!(out.status.success(), "exit: {:?}\n{text}", out.status);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one response per request: {text:?}");
    assert_eq!(lines[0], "OK pong");
    assert!(lines[1].starts_with("OK advise case=2D"), "{text}");
    assert!(lines[2].starts_with("OK stats received="), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("drained"), "graceful drain is reported: {err}");
}

#[test]
fn trace_writes_chrome_json_and_exits_zero() {
    let path = std::env::temp_dir().join("pmm-smoke-trace.json");
    let out = pmm(&[
        "trace",
        "--dims",
        "96x24x12",
        "--procs",
        "8",
        "--seed",
        "3",
        "--out",
        path.to_str().expect("utf-8 temp path"),
    ]);
    let text = stdout(&out);
    assert!(out.status.success(), "exit: {:?}\n{text}", out.status);
    assert!(text.contains("correct ✓"), "{text}");
    assert!(text.contains("all phases match the prediction exactly"), "{text}");
    let json = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"X\""), "{json}");
}

#[test]
fn trace_unwritable_out_exits_nonzero() {
    let out =
        pmm(&["trace", "--dims", "8x8x8", "--procs", "2", "--out", "/nonexistent-dir/run.json"]);
    assert!(!out.status.success(), "unwritable --out must fail");
    assert!(stdout(&out).contains("FAILED to write"), "{}", stdout(&out));
}
