//! Hand-rolled argument parsing for the `pmm` binary.
//!
//! Kept dependency-free and pure (`Vec<String> → Command`) so the whole
//! surface is unit-testable.

use std::fmt;

use pmm_model::MatMulDims;
use pmm_simnet::{Engine, FaultPlan};

/// A fully parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `pmm bound --dims AxBxC --procs P [--memory M]`
    Bound { dims: MatMulDims, procs: f64, memory: Option<f64> },
    /// `pmm grid --dims AxBxC --procs P`
    Grid { dims: MatMulDims, procs: usize },
    /// `pmm advise --dims AxBxC --procs P [--memory M] [--alpha A --beta B --gamma G]`
    Advise {
        dims: MatMulDims,
        procs: usize,
        memory: Option<f64>,
        alpha: f64,
        beta: f64,
        gamma: f64,
    },
    /// `pmm simulate --dims AxBxC --procs P [--grid AxBxC] [--seed S]
    /// [--faults SPEC] [--engine E]`
    Simulate {
        dims: MatMulDims,
        procs: usize,
        grid: Option<[usize; 3]>,
        seed: u64,
        faults: Option<FaultPlan>,
        engine: Option<Engine>,
    },
    /// `pmm trace --dims AxBxC --procs P [--grid AxBxC] [--seed S]
    /// [--out FILE]`
    Trace {
        dims: MatMulDims,
        procs: usize,
        grid: Option<[usize; 3]>,
        seed: u64,
        out: Option<String>,
    },
    /// `pmm sweep --dims AxBxC --procs P1,P2,…`
    Sweep { dims: MatMulDims, procs: Vec<f64> },
    /// `pmm serve [--port N] [--oneshot] [--workers N] [--queue-depth N]
    /// [--deadline-ms N] [--read-timeout-ms N] [--max-line N] [--cache N]`
    Serve(ServeOpts),
    /// `pmm calibrate [--budget-secs S] [--out FILE]`
    Calibrate { budget_secs: f64, out: Option<String> },
    /// `pmm help` / `-h` / `--help`
    Help,
}

/// Parsed `pmm serve` options: flag overrides layered on top of the
/// `PMM_SERVE_*` environment (a flag beats its environment variable,
/// which beats the built-in default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeOpts {
    /// `--port N`: serve TCP on 127.0.0.1:N instead of stdin/stdout
    /// (`PMM_SERVE_PORT` when absent).
    pub port: Option<u16>,
    /// `--oneshot`: answer exactly one request from stdin and exit with
    /// 0 for `OK`, 1 otherwise.
    pub oneshot: bool,
    /// `--workers N` override.
    pub workers: Option<usize>,
    /// `--queue-depth N` override.
    pub queue_depth: Option<usize>,
    /// `--deadline-ms N` override.
    pub deadline_ms: Option<u64>,
    /// `--read-timeout-ms N` override.
    pub read_timeout_ms: Option<u64>,
    /// `--max-line N` override.
    pub max_line: Option<usize>,
    /// `--cache N` override.
    pub cache: Option<usize>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Parse `AxBxC` into a dimension triple.
pub fn parse_dims(s: &str) -> Result<MatMulDims, ParseError> {
    let parts: Vec<&str> = s.split(['x', 'X']).collect();
    if parts.len() != 3 {
        return Err(err(format!("--dims expects N1xN2xN3, got '{s}'")));
    }
    let mut v = [0u64; 3];
    for (i, p) in parts.iter().enumerate() {
        v[i] = p
            .parse::<u64>()
            .map_err(|_| err(format!("dimension '{p}' is not a positive integer")))?;
        if v[i] == 0 {
            return Err(err("dimensions must be >= 1"));
        }
    }
    Ok(MatMulDims::new(v[0], v[1], v[2]))
}

/// Parse `AxBxC` into a grid triple.
pub fn parse_grid(s: &str) -> Result<[usize; 3], ParseError> {
    let d = parse_dims(s)?;
    Ok([d.n1 as usize, d.n2 as usize, d.n3 as usize])
}

struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String]) -> Result<Flags<'a>, ParseError> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if !flag.starts_with("--") {
                return Err(err(format!("expected a --flag, got '{flag}'")));
            }
            let value = args.get(i + 1).ok_or_else(|| err(format!("flag {flag} needs a value")))?;
            pairs.push((&flag[2..], value.as_str()));
            i += 2;
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().find(|(f, _)| *f == name).map(|(_, v)| *v)
    }

    fn require(&self, name: &str) -> Result<&str, ParseError> {
        self.get(name).ok_or_else(|| err(format!("missing required flag --{name}")))
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), ParseError> {
        for (f, _) in &self.pairs {
            if !known.contains(f) {
                return Err(err(format!("unknown flag --{f}")));
            }
        }
        Ok(())
    }
}

fn parse_opt_int<T: std::str::FromStr>(flags: &Flags, name: &str) -> Result<Option<T>, ParseError> {
    match flags.get(name) {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| err(format!("--{name} expects an unsigned integer, got '{v}'"))),
    }
}

fn parse_f64(flags: &Flags, name: &str, default: Option<f64>) -> Result<Option<f64>, ParseError> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse::<f64>()
            .map(Some)
            .map_err(|_| err(format!("--{name} expects a number, got '{v}'"))),
    }
}

/// Parse a full argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "-h" | "--help" => Ok(Command::Help),
        "bound" => {
            let flags = Flags::parse(rest)?;
            flags.reject_unknown(&["dims", "procs", "memory"])?;
            Ok(Command::Bound {
                dims: parse_dims(flags.require("dims")?)?,
                procs: parse_f64(&flags, "procs", None)?
                    .ok_or_else(|| err("missing required flag --procs"))?,
                memory: parse_f64(&flags, "memory", None)?,
            })
        }
        "grid" => {
            let flags = Flags::parse(rest)?;
            flags.reject_unknown(&["dims", "procs"])?;
            let procs = flags
                .require("procs")?
                .parse::<usize>()
                .map_err(|_| err("--procs expects a positive integer"))?;
            Ok(Command::Grid { dims: parse_dims(flags.require("dims")?)?, procs })
        }
        "advise" => {
            let flags = Flags::parse(rest)?;
            flags.reject_unknown(&["dims", "procs", "memory", "alpha", "beta", "gamma"])?;
            let procs = flags
                .require("procs")?
                .parse::<usize>()
                .map_err(|_| err("--procs expects a positive integer"))?;
            Ok(Command::Advise {
                dims: parse_dims(flags.require("dims")?)?,
                procs,
                memory: parse_f64(&flags, "memory", None)?,
                alpha: parse_f64(&flags, "alpha", Some(1e4))?
                    .expect("parse_f64 returns Some when a default is supplied"),
                beta: parse_f64(&flags, "beta", Some(10.0))?
                    .expect("parse_f64 returns Some when a default is supplied"),
                gamma: parse_f64(&flags, "gamma", Some(1.0))?
                    .expect("parse_f64 returns Some when a default is supplied"),
            })
        }
        "simulate" => {
            let flags = Flags::parse(rest)?;
            flags.reject_unknown(&["dims", "procs", "grid", "seed", "faults", "engine"])?;
            let procs = flags
                .require("procs")?
                .parse::<usize>()
                .map_err(|_| err("--procs expects a positive integer"))?;
            let grid = flags.get("grid").map(parse_grid).transpose()?;
            let seed = match flags.get("seed") {
                None => 42,
                Some(v) => v.parse::<u64>().map_err(|_| err("--seed expects an integer"))?,
            };
            let faults = flags
                .get("faults")
                .map(|s| FaultPlan::parse(s).map_err(|e| err(format!("--faults: {e}"))))
                .transpose()?;
            let engine = flags
                .get("engine")
                .map(|s| s.parse::<Engine>().map_err(|e| err(format!("--engine: {e}"))))
                .transpose()?;
            Ok(Command::Simulate {
                dims: parse_dims(flags.require("dims")?)?,
                procs,
                grid,
                seed,
                faults,
                engine,
            })
        }
        "trace" => {
            let flags = Flags::parse(rest)?;
            flags.reject_unknown(&["dims", "procs", "grid", "seed", "out"])?;
            let procs = flags
                .require("procs")?
                .parse::<usize>()
                .map_err(|_| err("--procs expects a positive integer"))?;
            let grid = flags.get("grid").map(parse_grid).transpose()?;
            let seed = match flags.get("seed") {
                None => 42,
                Some(v) => v.parse::<u64>().map_err(|_| err("--seed expects an integer"))?,
            };
            Ok(Command::Trace {
                dims: parse_dims(flags.require("dims")?)?,
                procs,
                grid,
                seed,
                out: flags.get("out").map(String::from),
            })
        }
        "sweep" => {
            let flags = Flags::parse(rest)?;
            flags.reject_unknown(&["dims", "procs"])?;
            let procs: Vec<f64> = flags
                .require("procs")?
                .split(',')
                .map(|s| {
                    s.parse::<f64>()
                        .map_err(|_| err(format!("bad processor count '{s}' in --procs list")))
                })
                .collect::<Result<_, _>>()?;
            if procs.is_empty() {
                return Err(err("--procs list is empty"));
            }
            Ok(Command::Sweep { dims: parse_dims(flags.require("dims")?)?, procs })
        }
        "serve" => {
            // `--oneshot` is the one valueless flag in the CLI; strip it
            // before the pairwise flag parser sees the rest.
            let mut oneshot = false;
            let rest_pairs: Vec<String> = rest
                .iter()
                .filter(|a| {
                    let hit = a.as_str() == "--oneshot";
                    oneshot |= hit;
                    !hit
                })
                .cloned()
                .collect();
            let flags = Flags::parse(&rest_pairs)?;
            flags.reject_unknown(&[
                "port",
                "workers",
                "queue-depth",
                "deadline-ms",
                "read-timeout-ms",
                "max-line",
                "cache",
            ])?;
            Ok(Command::Serve(ServeOpts {
                port: parse_opt_int(&flags, "port")?,
                oneshot,
                workers: parse_opt_int(&flags, "workers")?,
                queue_depth: parse_opt_int(&flags, "queue-depth")?,
                deadline_ms: parse_opt_int(&flags, "deadline-ms")?,
                read_timeout_ms: parse_opt_int(&flags, "read-timeout-ms")?,
                max_line: parse_opt_int(&flags, "max-line")?,
                cache: parse_opt_int(&flags, "cache")?,
            }))
        }
        "calibrate" => {
            let flags = Flags::parse(rest)?;
            flags.reject_unknown(&["budget-secs", "out"])?;
            let budget_secs = parse_f64(&flags, "budget-secs", Some(10.0))?
                .expect("parse_f64 returns Some when a default is supplied");
            if budget_secs <= 0.0 || !budget_secs.is_finite() {
                return Err(err("--budget-secs must be positive"));
            }
            Ok(Command::Calibrate { budget_secs, out: flags.get("out").map(String::from) })
        }
        other => Err(err(format!("unknown command '{other}' (try 'pmm help')"))),
    }
}

/// The help text.
pub const HELP: &str = "\
pmm — tight memory-independent parallel matmul communication bounds (SPAA 2022)

USAGE:
  pmm bound    --dims N1xN2xN3 --procs P [--memory M]
      Evaluate the Theorem 3 lower bound (and, with --memory, the §6.2
      memory-dependent comparison).
  pmm grid     --dims N1xN2xN3 --procs P
      The optimal processor grid (§5.2), exact integer search.
  pmm advise   --dims N1xN2xN3 --procs P [--memory M]
               [--alpha A] [--beta B] [--gamma G]
      Rank execution strategies by predicted time on an α-β-γ machine.
  pmm simulate --dims N1xN2xN3 --procs P [--grid AxBxC] [--seed S]
               [--faults SPEC] [--engine E]
      Run Algorithm 1 on the simulated machine, verify the product, and
      report measured communication vs the bound. --engine picks the
      execution backend: 'event-loop' (default — single-threaded rank
      continuations; executes P up to 10^5-10^6 for real) or 'threads'
      (one OS thread per rank); PMM_ENGINE sets the default. --faults
      injects seeded message faults and rank failures (recovered by
      checkpointed re-planning onto the optimal grid of the survivors);
      SPEC is comma-separated key=value pairs: drop/dup/corrupt/delay
      (rates), timeout, cap, retries, seed (fault seed),
      kill=RANK@OP (repeatable), cascade=RANK@EPOCH (kill RANK at its
      next operation once EPOCH deaths have occurred),
      part=R1+R2+...@LO..HI#HEAL (network partition: messages crossing
      the cut are blackholed for sequence numbers LO..HI until HEAL
      failed attempts, then the partition heals),
      storm=RATExFACTOR (straggler storm: a RATE fraction of messages
      slowed by FACTOR), slow=RANKxFACTOR — e.g.
      --faults drop=0.05,kill=2@5,cascade=7@1,part=0+1@2..30#2,seed=0xFA.
      Exits nonzero if the product is wrong or a failure is not
      recovered.
  pmm trace    --dims N1xN2xN3 --procs P [--grid AxBxC] [--seed S]
               [--out FILE]
      Run Algorithm 1 with structured tracing on: report the per-phase
      cost attribution against the eq. (3) prediction, the critical-path
      breakdown, and a compact text trace. --out writes the full event
      trace as Chrome trace_event JSON (load in Perfetto or
      chrome://tracing). Exits nonzero if the product is wrong.
  pmm sweep    --dims N1xN2xN3 --procs P1,P2,...
      Bound/case/grid table over a list of processor counts.
  pmm serve    [--port N] [--oneshot] [--workers N] [--queue-depth N]
               [--deadline-ms N] [--read-timeout-ms N] [--max-line N]
               [--cache N]
      Hardened advisor service speaking a line protocol (ADVISE / STATS
      / PING → one OK/ERR/SHED/TIMEOUT line each) over stdin/stdout, or
      TCP with --port (or PMM_SERVE_PORT). Overloads shed, deadlines
      time out, stalled clients are disconnected, and worker panics are
      isolated; see the PMM_SERVE_* environment table in the README for
      the defaults each flag overrides. --oneshot answers a single
      request from stdin and exits 0 iff the response is OK.
  pmm calibrate [--budget-secs S] [--out FILE]
      Measure this host's α (per-message), β (per-word), γ (per
      multiply-add) and per-run setup cost from timed in-process probes
      (ping-pong, stream, GEMM — see docs/PERFORMANCE.md), print the
      fitted constants, and with --out write them as the calibration
      JSON that turns eq. (3) word counts into predicted seconds. The
      GEMM probe uses the kernel PMM_KERNEL selects (default: auto).
  pmm help
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_bound() {
        let c = parse_args(&argv("bound --dims 9600x2400x600 --procs 512")).unwrap();
        assert_eq!(
            c,
            Command::Bound { dims: MatMulDims::new(9600, 2400, 600), procs: 512.0, memory: None }
        );
    }

    #[test]
    fn parses_bound_with_memory() {
        let c = parse_args(&argv("bound --dims 10x10x10 --procs 4 --memory 9000")).unwrap();
        match c {
            Command::Bound { memory: Some(m), .. } => assert_eq!(m, 9000.0),
            _ => panic!("wrong parse: {c:?}"),
        }
    }

    #[test]
    fn parses_grid_and_simulate() {
        assert_eq!(
            parse_args(&argv("grid --dims 96x24x6 --procs 36")).unwrap(),
            Command::Grid { dims: MatMulDims::new(96, 24, 6), procs: 36 }
        );
        assert_eq!(
            parse_args(&argv("simulate --dims 96x24x6 --procs 4 --grid 4x1x1 --seed 7")).unwrap(),
            Command::Simulate {
                dims: MatMulDims::new(96, 24, 6),
                procs: 4,
                grid: Some([4, 1, 1]),
                seed: 7,
                faults: None,
                engine: None,
            }
        );
    }

    #[test]
    fn parses_simulate_engine() {
        for (spec, want) in [
            ("event-loop", Engine::EventLoop),
            ("eventloop", Engine::EventLoop),
            ("threads", Engine::Threads),
        ] {
            let c = parse_args(&argv(&format!("simulate --dims 8x8x8 --procs 2 --engine {spec}")))
                .unwrap();
            match c {
                Command::Simulate { engine, .. } => assert_eq!(engine, Some(want), "{spec}"),
                other => panic!("wrong parse: {other:?}"),
            }
        }
        assert!(parse_args(&argv("simulate --dims 8x8x8 --procs 2 --engine fibers")).is_err());
    }

    #[test]
    fn parses_simulate_faults_spec() {
        let c = parse_args(&argv(
            "simulate --dims 24x24x24 --procs 9 --faults drop=0.05,kill=4@5,seed=0xFA",
        ))
        .unwrap();
        match c {
            Command::Simulate { faults: Some(plan), .. } => {
                assert_eq!(plan.drop, 0.05);
                assert_eq!(plan.seed, Some(0xFA));
                assert_eq!(plan.kills.len(), 1);
                assert_eq!((plan.kills[0].rank, plan.kills[0].at_op), (4, 5));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // A bad spec is a parse error, not a panic downstream.
        assert!(parse_args(&argv("simulate --dims 8x8x8 --procs 2 --faults bogus")).is_err());
        assert!(parse_args(&argv("simulate --dims 8x8x8 --procs 2 --faults drop=x")).is_err());
    }

    #[test]
    fn parses_advise_with_defaults() {
        let c = parse_args(&argv("advise --dims 100x100x100 --procs 8")).unwrap();
        match c {
            Command::Advise { alpha, beta, gamma, memory, .. } => {
                assert_eq!((alpha, beta, gamma), (1e4, 10.0, 1.0));
                assert_eq!(memory, None);
            }
            _ => panic!("wrong parse"),
        }
    }

    #[test]
    fn parses_trace() {
        assert_eq!(
            parse_args(&argv("trace --dims 96x24x12 --procs 8 --grid 4x1x2 --seed 7 --out t.json"))
                .unwrap(),
            Command::Trace {
                dims: MatMulDims::new(96, 24, 12),
                procs: 8,
                grid: Some([4, 1, 2]),
                seed: 7,
                out: Some("t.json".into()),
            }
        );
        // --grid/--seed/--out are optional; --dims and --procs are not.
        assert_eq!(
            parse_args(&argv("trace --dims 8x8x8 --procs 2")).unwrap(),
            Command::Trace {
                dims: MatMulDims::new(8, 8, 8),
                procs: 2,
                grid: None,
                seed: 42,
                out: None,
            }
        );
        assert!(parse_args(&argv("trace --procs 2")).is_err());
        assert!(parse_args(&argv("trace --dims 8x8x8 --procs 2 --bogus 1")).is_err());
    }

    #[test]
    fn parses_sweep_lists() {
        let c = parse_args(&argv("sweep --dims 10x10x10 --procs 1,4,16")).unwrap();
        assert_eq!(
            c,
            Command::Sweep { dims: MatMulDims::new(10, 10, 10), procs: vec![1.0, 4.0, 16.0] }
        );
    }

    #[test]
    fn parses_serve_flags_and_oneshot() {
        assert_eq!(parse_args(&argv("serve")).unwrap(), Command::Serve(ServeOpts::default()));
        let c = parse_args(&argv(
            "serve --port 7070 --oneshot --workers 2 --queue-depth 16 --deadline-ms 50 \
             --read-timeout-ms 250 --max-line 512 --cache 64",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve(ServeOpts {
                port: Some(7070),
                oneshot: true,
                workers: Some(2),
                queue_depth: Some(16),
                deadline_ms: Some(50),
                read_timeout_ms: Some(250),
                max_line: Some(512),
                cache: Some(64),
            })
        );
        // `--oneshot` is position-independent.
        let c = parse_args(&argv("serve --oneshot --deadline-ms 50")).unwrap();
        assert_eq!(
            c,
            Command::Serve(ServeOpts {
                oneshot: true,
                deadline_ms: Some(50),
                ..ServeOpts::default()
            })
        );
        assert!(parse_args(&argv("serve --port zero")).is_err());
        assert!(parse_args(&argv("serve --port 99999")).is_err(), "port must fit u16");
        assert!(parse_args(&argv("serve --bogus 1")).is_err());
    }

    #[test]
    fn parses_calibrate() {
        assert_eq!(
            parse_args(&argv("calibrate")).unwrap(),
            Command::Calibrate { budget_secs: 10.0, out: None }
        );
        assert_eq!(
            parse_args(&argv("calibrate --budget-secs 2.5 --out calibration.json")).unwrap(),
            Command::Calibrate { budget_secs: 2.5, out: Some("calibration.json".into()) }
        );
        assert!(parse_args(&argv("calibrate --budget-secs 0")).is_err());
        assert!(parse_args(&argv("calibrate --budget-secs -1")).is_err());
        assert!(parse_args(&argv("calibrate --bogus 1")).is_err());
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_args(&argv("bound --dims 10x10 --procs 4")).is_err());
        assert!(parse_args(&argv("bound --dims 10x10x0 --procs 4")).is_err());
        assert!(parse_args(&argv("bound --procs 4")).is_err());
        assert!(parse_args(&argv("bound --dims 10x10x10")).is_err());
        assert!(parse_args(&argv("bound --dims 10x10x10 --procs four")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("bound --dims 10x10x10 --procs 4 --bogus 1")).is_err());
        assert!(parse_args(&argv("grid --dims 10x10x10 --procs 4.5")).is_err());
        assert!(parse_args(&argv("sweep --dims 10x10x10 --procs 1,x")).is_err());
    }

    #[test]
    fn flag_without_value_is_an_error() {
        assert!(parse_args(&argv("bound --dims")).is_err());
    }
}
