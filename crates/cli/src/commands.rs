//! Implementations of the CLI commands. Each returns its output as a
//! `String` (printed by `main`), so commands are unit-testable.

use std::fmt::Write as _;

use pmm_algs::{
    alg1, alg1_a, assemble_c, assemble_recovered, run_recoverable_a, Alg1Config, Assembly, CShare,
    Recoverable,
};
use pmm_bench::calibrate::calibrate as run_probes;
use pmm_core::advisor::{recommend, Strategy};
use pmm_core::gridopt::{alg1_cost_words, best_grid, continuous_grid};
use pmm_core::memlimit::{limited_memory_report, min_memory_words, Dominant};
use pmm_core::theorem3::lower_bound;
use pmm_dense::{gemm, kernel_from_env, random_int_matrix, Kernel};
use pmm_model::{alg1_prediction, recovery_prediction, Grid3, MachineParams, MatMulDims};
use pmm_serve::ServeConfig;
use pmm_simnet::{seed_from_env, Engine, FaultPlan, World};

use crate::args::ServeOpts;

/// `pmm bound`.
pub fn bound(dims: MatMulDims, procs: f64, memory: Option<f64>) -> String {
    let r = lower_bound(dims, procs);
    let s = dims.sorted();
    let mut out = String::new();
    let _ = writeln!(out, "problem      : {dims} on P = {procs}");
    let _ = writeln!(
        out,
        "sorted dims  : m = {}, n = {}, k = {} (thresholds m/n = {}, mn/k² = {})",
        s.m,
        s.n,
        s.k,
        s.threshold_1d_2d(),
        s.threshold_2d_3d()
    );
    let _ = writeln!(out, "case         : {}", r.case);
    let _ = writeln!(
        out,
        "bound        : {:.3} words/processor  (= {} × {:.3} − {:.3})",
        r.bound, r.constant, r.leading_term, r.offset
    );
    if let Some(m) = memory {
        if min_memory_words(dims, procs) > m {
            let _ = writeln!(
                out,
                "memory       : INFEASIBLE — M = {m} < (mn+mk+nk)/P = {:.0}",
                min_memory_words(dims, procs)
            );
        } else {
            let rep = limited_memory_report(dims, procs, m);
            let _ = writeln!(out, "mem-dependent: {:.3} (2mnk/(P·sqrt(M)))", rep.dependent);
            let _ = writeln!(
                out,
                "binding bound: {}",
                match rep.dominant {
                    Dominant::MemoryIndependent => "memory-independent (Theorem 3)",
                    Dominant::MemoryDependent => "memory-dependent 2mnk/(P·sqrt(M)) (§6.2)",
                }
            );
        }
    }
    out
}

/// `pmm grid`.
pub fn grid(dims: MatMulDims, procs: usize) -> String {
    let choice = best_grid(dims, procs);
    let cont = continuous_grid(dims.sorted(), procs as f64);
    let bound = lower_bound(dims, procs as f64).bound;
    let mut out = String::new();
    let _ = writeln!(out, "problem          : {dims} on P = {procs}");
    let _ = writeln!(out, "optimal grid     : {} (iteration-space order p1xp2xp3)", choice.grid3());
    let _ = writeln!(
        out,
        "continuous optimum (sorted m,n,k order): {:.2} x {:.2} x {:.2}",
        cont[0], cont[1], cont[2]
    );
    let _ = writeln!(out, "predicted cost   : {:.3} words/processor (eq. 3)", choice.cost_words);
    let _ = writeln!(out, "lower bound      : {bound:.3}");
    let _ = writeln!(
        out,
        "gap              : {:.2}% {}",
        100.0 * (choice.cost_words / bound.max(1e-300) - 1.0),
        if (choice.cost_words - bound).abs() <= 1e-9 * bound.max(1.0) {
            "(attains the bound exactly)"
        } else {
            "(continuous grid not integral at this P)"
        }
    );
    let _ = writeln!(out, "divides dims     : {}", dims.divisible_by(choice.grid));
    out
}

/// `pmm advise`.
pub fn advise(
    dims: MatMulDims,
    procs: usize,
    memory: Option<f64>,
    alpha: f64,
    beta: f64,
    gamma: f64,
) -> String {
    let params = MachineParams::new(alpha, beta, gamma);
    let m = memory.unwrap_or(f64::INFINITY);
    let recs = recommend(dims, procs, m, params);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "problem: {dims}, P = {procs}, M = {}, (α, β, γ) = ({alpha}, {beta}, {gamma})",
        memory.map(|m| m.to_string()).unwrap_or_else(|| "∞".into())
    );
    if recs.is_empty() {
        let _ = writeln!(out, "no strategy fits in memory (need ≥ (mn+mk+nk)/P words)");
        return out;
    }
    let _ = writeln!(
        out,
        "{:<4} {:<28} {:>14} {:>12} {:>8} {:>12}",
        "#", "strategy", "pred. time", "words", "msgs", "mem (words)"
    );
    for (i, r) in recs.iter().take(6).enumerate() {
        let name = match &r.strategy {
            Strategy::Alg1 { grid } => format!("Alg1 {}x{}x{}", grid[0], grid[1], grid[2]),
            Strategy::TwoFiveD { q, c } => format!("2.5D {q}x{q} c={c}"),
        };
        let _ = writeln!(
            out,
            "{:<4} {:<28} {:>14.1} {:>12.0} {:>8.0} {:>12.0}",
            i, name, r.time, r.cost.words, r.cost.messages, r.memory_words
        );
    }
    out
}

/// `pmm simulate` (fault-free form): output only, for callers that don't
/// care about the process exit code.
pub fn simulate(dims: MatMulDims, procs: usize, grid: Option<[usize; 3]>, seed: u64) -> String {
    simulate_run(dims, procs, grid, seed, None, None).0
}

/// `pmm simulate`, full form: returns the report and the process exit
/// code (`0` = product verified, `1` = wrong product or a fault the run
/// could not recover from). `engine` pins the execution backend
/// (`--engine`); `None` defers to `PMM_ENGINE`, then the event loop.
pub fn simulate_run(
    dims: MatMulDims,
    procs: usize,
    grid: Option<[usize; 3]>,
    seed: u64,
    faults: Option<FaultPlan>,
    engine: Option<Engine>,
) -> (String, u8) {
    match faults {
        None => simulate_clean(dims, procs, grid, seed, engine),
        Some(plan) => simulate_faulty(dims, procs, seed, plan, engine),
    }
}

/// Apply an explicit `--engine` choice to a world, if any.
fn with_engine_opt(world: World, engine: Option<Engine>) -> World {
    match engine {
        Some(e) => world.with_engine(e),
        None => world,
    }
}

fn simulate_clean(
    dims: MatMulDims,
    procs: usize,
    grid: Option<[usize; 3]>,
    seed: u64,
    engine: Option<Engine>,
) -> (String, u8) {
    let grid = grid.unwrap_or_else(|| best_grid(dims, procs).grid);
    let g = Grid3::from_dims(grid);
    assert_eq!(g.size(), procs, "grid {} has {} processors but --procs is {procs}", g, g.size());
    let cfg = Alg1Config::new(dims, g);
    let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
    // The data seed also seeds the schedule (overridable via PMM_SEED),
    // so a reported run replays rank interleaving and all.
    let sched_seed = seed_from_env(seed);
    let world = with_engine_opt(
        World::new(procs, MachineParams::BANDWIDTH_ONLY).with_seed(sched_seed),
        engine,
    );
    let out = world.run_async(move |rank| {
        let cfg = cfg.clone();
        Box::pin(async move {
            let a = random_int_matrix(n1, n2, -3..4, seed);
            let b = random_int_matrix(n2, n3, -3..4, seed + 1);
            alg1_a(rank, &cfg, &a, &b).await
        })
    });
    let a = random_int_matrix(n1, n2, -3..4, seed);
    let b = random_int_matrix(n2, n3, -3..4, seed + 1);
    let want = gemm(&a, &b, kernel_from_env(Kernel::default()));
    let chunks: Vec<_> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
    let correct = assemble_c(dims, g, &chunks) == want;

    let measured = out.critical_path_time();
    let predicted = alg1_cost_words(dims, grid);
    let bound = lower_bound(dims, procs as f64).bound;
    let mut s = String::new();
    let _ = writeln!(s, "simulated {dims} on grid {g} ({procs} ranks, seed {seed})");
    let _ = writeln!(
        s,
        "schedule     : deterministic, seed {sched_seed} (replay with PMM_SEED={sched_seed}; \
         {} events)",
        out.schedule_trace.as_ref().map_or(0, |t| t.events.len())
    );
    let _ = writeln!(s, "product      : {}", if correct { "correct ✓" } else { "WRONG ✗" });
    let _ = writeln!(s, "measured     : {measured:.3} words/processor (critical path)");
    let _ = writeln!(s, "eq.(3) model : {predicted:.3}");
    let _ = writeln!(s, "lower bound  : {bound:.3}");
    let _ = writeln!(s, "peak memory  : {} words/rank (max)", out.max_peak_mem_words());
    (s, u8::from(!correct))
}

fn simulate_faulty(
    dims: MatMulDims,
    procs: usize,
    seed: u64,
    plan: FaultPlan,
    engine: Option<Engine>,
) -> (String, u8) {
    let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
    let sched_seed = seed_from_env(seed);
    // Recovery re-picks the §5.2 grid per attempt from the survivor
    // count, so no --grid applies here. An unrecoverable run (e.g.
    // retransmissions exhausted, or every rank killed) aborts the world
    // with a report; surface it as output + exit 1, not a panic.
    let world = with_engine_opt(
        World::new(procs, MachineParams::BANDWIDTH_ONLY)
            .with_seed(sched_seed)
            .with_faults(plan.clone()),
        engine,
    );
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        world.run_async(move |rank| {
            Box::pin(async move {
                let a = random_int_matrix(n1, n2, -3..4, seed);
                let b = random_int_matrix(n2, n3, -3..4, seed + 1);
                let spec = Recoverable::Alg1 {
                    kernel: kernel_from_env(Kernel::default()),
                    assembly: Assembly::ReduceScatter,
                };
                run_recoverable_a(rank, &spec, dims, &a, &b).await
            })
        })
    }));
    let mut s = String::new();
    let _ = writeln!(s, "simulated {dims} on {procs} ranks under faults [{plan}] (seed {seed})");
    let out = match run {
        Ok(out) => out,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic payload".into());
            let _ = writeln!(s, "UNRECOVERED  : {detail}");
            return (s, 1);
        }
    };
    let _ = writeln!(
        s,
        "schedule     : deterministic, seed {sched_seed} (replay with PMM_SEED={sched_seed})"
    );
    let Some(ok) = out.values.iter().find_map(|v| v.as_ref().ok()) else {
        let _ = writeln!(s, "UNRECOVERED  : no rank survived the fault plan");
        return (s, 1);
    };
    for v in &out.values {
        if let Err(failed) = v {
            let _ = writeln!(s, "rank failure : {failed}");
        }
    }
    let plan_used = ok.plan.clone();
    let survivors = ok.survivors.clone();
    let _ = writeln!(
        s,
        "recovery     : {} attempt(s); survivors {:?} on layout {}",
        ok.attempts(),
        survivors,
        plan_used
    );
    let shares: Vec<CShare> = survivors
        .iter()
        .map(|&w| out.values[w].as_ref().expect("survivor").share.clone())
        .collect();
    let a = random_int_matrix(n1, n2, -3..4, seed);
    let b = random_int_matrix(n2, n3, -3..4, seed + 1);
    let correct = assemble_recovered(dims, &plan_used, &shares)
        == gemm(&a, &b, kernel_from_env(Kernel::default()));
    let _ = writeln!(s, "product      : {}", if correct { "correct ✓" } else { "WRONG ✗" });
    let pred = recovery_prediction(dims, &ok.attempt_plans, &ok.attempt_survivors);
    let goodput = out.reports[survivors[0]].meter.words_sent;
    let retry: u64 = out.reports.iter().map(|r| r.meter.retry_overhead_words()).sum();
    let _ = writeln!(s, "goodput      : {goodput} words on rank {} (all attempts)", survivors[0]);
    let _ = writeln!(
        s,
        "model        : final attempt {:.0} words total across ranks (+{:.0} restore); \
         whole run ≤ {:.0}",
        pred.last().run_words_total,
        pred.last().restore_words_total,
        pred.total_upper_bound_words()
    );
    let _ = writeln!(s, "retry waste  : {retry} words total across ranks (separate from goodput)");
    (s, u8::from(!correct))
}

/// `pmm trace`: run Algorithm 1 with structured tracing on, report the
/// per-phase cost attribution against eq. (3) and the critical-path
/// breakdown, and (with `--out`) write the Chrome trace_event JSON.
///
/// Exit code: `0` = product verified and (if requested) the trace file
/// written; `1` = wrong product or the trace file could not be written.
pub fn trace(
    dims: MatMulDims,
    procs: usize,
    grid: Option<[usize; 3]>,
    seed: u64,
    out_path: Option<&str>,
) -> (String, u8) {
    let grid = grid.unwrap_or_else(|| best_grid(dims, procs).grid);
    let g = Grid3::from_dims(grid);
    assert_eq!(g.size(), procs, "grid {} has {} processors but --procs is {procs}", g, g.size());
    let cfg = Alg1Config::new(dims, g);
    let (n1, n2, n3) = (dims.n1 as usize, dims.n2 as usize, dims.n3 as usize);
    let sched_seed = seed_from_env(seed);
    let out = World::new(procs, MachineParams::BANDWIDTH_ONLY)
        .with_seed(sched_seed)
        .with_trace(true)
        .run(move |rank| {
            let a = random_int_matrix(n1, n2, -3..4, seed);
            let b = random_int_matrix(n2, n3, -3..4, seed + 1);
            alg1(rank, &cfg, &a, &b)
        });
    let a = random_int_matrix(n1, n2, -3..4, seed);
    let b = random_int_matrix(n2, n3, -3..4, seed + 1);
    let chunks: Vec<_> = out.values.iter().map(|v| v.c_chunk.clone()).collect();
    let correct = assemble_c(dims, g, &chunks) == gemm(&a, &b, kernel_from_env(Kernel::default()));

    let tracer = out.tracer().expect("tracing was enabled");
    let pred = alg1_prediction(dims, grid);
    let attribution = tracer.attribution(&[
        ("all-gather A", pred.allgather_a),
        ("all-gather B", pred.allgather_b),
        ("reduce-scatter C", pred.reduce_c),
    ]);
    let bound = lower_bound(dims, procs as f64).bound;
    let cp = tracer.critical_path();

    let mut s = String::new();
    let _ = writeln!(s, "traced {dims} on grid {g} ({procs} ranks, seed {seed})");
    let _ = writeln!(s, "product      : {}", if correct { "correct ✓" } else { "WRONG ✗" });
    let _ = writeln!(s);
    let _ = write!(s, "{}", tracer.render_text());
    let _ = writeln!(s);
    let _ = writeln!(s, "per-phase attribution vs eq. (3):");
    let _ = write!(s, "{attribution}");
    let _ = writeln!(s);
    let _ = writeln!(s, "critical path: {:.3} words (lower bound {bound:.3})", cp.total);
    let mut code = u8::from(!correct);
    if let Some(path) = out_path {
        match std::fs::write(path, tracer.chrome_json()) {
            Ok(()) => {
                let _ = writeln!(
                    s,
                    "trace        : wrote {path} (load in Perfetto or chrome://tracing)"
                );
            }
            Err(e) => {
                let _ = writeln!(s, "trace        : FAILED to write {path}: {e}");
                code = 1;
            }
        }
    }
    (s, code)
}

/// `pmm sweep`.
pub fn sweep(dims: MatMulDims, procs: &[f64]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>5} {:>12} {:>16} {:>12} {:>8}",
        "P", "case", "grid", "bound (words)", "leading", "const"
    );
    for &p in procs {
        let r = lower_bound(dims, p);
        let g = if p.fract() == 0.0 && (1.0..1e7).contains(&p) {
            best_grid(dims, p as usize).grid3().to_string()
        } else {
            "-".into()
        };
        let _ = writeln!(
            out,
            "{:>10} {:>5} {:>12} {:>16.1} {:>12.1} {:>8}",
            p,
            r.case.to_string(),
            g,
            r.bound,
            r.leading_term,
            r.constant
        );
    }
    out
}

/// Resolve the effective [`ServeConfig`]: built-in defaults, overridden
/// by the `PMM_SERVE_*` environment, overridden by explicit flags.
pub fn serve_config(opts: &ServeOpts) -> ServeConfig {
    let mut config = ServeConfig::from_env();
    if let Some(v) = opts.workers {
        config.workers = v.max(1);
    }
    if let Some(v) = opts.queue_depth {
        config.queue_depth = v.max(1);
    }
    if let Some(v) = opts.deadline_ms {
        config.deadline = std::time::Duration::from_millis(v.max(1));
    }
    if let Some(v) = opts.read_timeout_ms {
        config.read_timeout = std::time::Duration::from_millis(v.max(1));
    }
    if let Some(v) = opts.max_line {
        config.max_line_bytes = v.max(16);
    }
    if let Some(v) = opts.cache {
        config.cache_capacity = v;
    }
    config
}

/// `pmm serve`: run the hardened advisor service on the requested
/// transport and return the process exit code.
///
/// * `--oneshot` answers one request from stdin (exit 0 iff `OK`);
/// * `--port N` / `PMM_SERVE_PORT` serves TCP in the foreground;
/// * otherwise the service speaks the line protocol on stdin/stdout and
///   drains gracefully at EOF.
pub fn serve(opts: &ServeOpts) -> u8 {
    let config = serve_config(opts);
    if opts.oneshot {
        let stdin = std::io::stdin();
        let (line, code) = pmm_serve::oneshot(config, &mut stdin.lock());
        print!("{line}");
        return code;
    }
    let port = opts
        .port
        .or_else(|| std::env::var("PMM_SERVE_PORT").ok().and_then(|v| v.trim().parse().ok()));
    match port {
        Some(port) => match pmm_serve::TcpService::bind(config, ("127.0.0.1", port)) {
            Ok(service) => {
                eprintln!("pmm serve: listening on {}", service.addr());
                // Foreground service: the accept loop owns the work; this
                // thread just keeps the process alive until it is killed.
                loop {
                    std::thread::park();
                }
            }
            Err(e) => {
                eprintln!("pmm serve: could not bind 127.0.0.1:{port}: {e}");
                1
            }
        },
        None => {
            let server = pmm_serve::Server::start(config);
            let snapshot = pmm_serve::serve_stdio(&server);
            eprintln!("pmm serve: drained; {}", snapshot.render());
            0
        }
    }
}

/// `pmm calibrate`: measure this host's α, β, γ and per-run setup cost
/// from the in-process probes (see `pmm_bench::calibrate` and
/// `docs/PERFORMANCE.md`), print the fitted constants, and optionally
/// write them as calibration JSON.
///
/// Exit code: `0` on success, `1` if `--out` could not be written.
pub fn calibrate(budget_secs: f64, out_path: Option<&str>) -> (String, u8) {
    let kernel = kernel_from_env(Kernel::default());
    let report = run_probes(budget_secs, kernel);
    let cal = report.cal;
    let mut s = String::new();
    let _ = writeln!(s, "calibrated in-process machine constants (GEMM kernel: {kernel}):");
    let _ = writeln!(s, "  alpha     : {:.3e} s/message", cal.alpha);
    let _ = writeln!(s, "  beta      : {:.3e} s/word ({:.2} ns)", cal.beta, cal.beta * 1e9);
    let _ = writeln!(
        s,
        "  gamma     : {:.3e} s/madd ({:.2} GFLOP/s at 2 flops/madd)",
        cal.gamma,
        2.0 / cal.gamma / 1e9
    );
    let _ = writeln!(s, "  rank_secs : {:.3e} s/run", cal.rank_secs);
    let _ = writeln!(s, "  stream    : {:.1} GB/s (diagnostic, not fitted)", report.stream_gbps);
    let _ = writeln!(
        s,
        "  fit       : ping-pong worst-point error {:.1}%",
        100.0 * report.pingpong_fit_error()
    );
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(path, cal.to_json()) {
            let _ = writeln!(s, "could not write {path}: {e}");
            return (s, 1);
        }
        let _ = writeln!(s, "  written   : {path}");
    }
    (s, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER: MatMulDims = MatMulDims { n1: 9600, n2: 2400, n3: 600 };

    #[test]
    fn bound_reports_case_and_value() {
        let s = bound(PAPER, 512.0, None);
        assert!(s.contains("case         : 3D"));
        assert!(s.contains("210937.500"), "output was: {s}");
    }

    #[test]
    fn bound_with_memory_reports_binding() {
        let s = bound(PAPER, 4096.0, Some(9000.0));
        assert!(s.contains("memory-dependent"), "output was: {s}");
        let s = bound(PAPER, 65536.0, Some(9000.0));
        assert!(s.contains("memory-independent"), "output was: {s}");
        let s = bound(PAPER, 64.0, Some(9000.0));
        assert!(s.contains("INFEASIBLE"), "output was: {s}");
    }

    #[test]
    fn calibrate_reports_constants_and_writes_json() {
        let path = std::env::temp_dir().join("pmm_cli_calibrate_test.json");
        let (s, code) = calibrate(0.5, path.to_str());
        assert_eq!(code, 0, "output was: {s}");
        assert!(s.contains("alpha"), "output was: {s}");
        assert!(s.contains("gamma"), "output was: {s}");
        let json = std::fs::read_to_string(&path).expect("calibration file written");
        let parsed = pmm_model::MachineCalibration::from_json(&json)
            .expect("written calibration round-trips");
        assert!(parsed.gamma > 0.0);
        let _ = std::fs::remove_file(&path);
        // An unwritable path is a reported failure, not a panic.
        let (s, code) = calibrate(0.5, Some("/nonexistent-dir/c.json"));
        assert_eq!(code, 1, "output was: {s}");
    }

    #[test]
    fn grid_reports_fig2_grids() {
        assert!(grid(PAPER, 36).contains("12x3x1"));
        assert!(grid(PAPER, 512).contains("32x8x2"));
        assert!(grid(PAPER, 512).contains("attains the bound exactly"));
    }

    #[test]
    fn advise_ranks_strategies() {
        let s = advise(MatMulDims::square(512), 64, None, 0.0, 1.0, 0.0);
        let first = s.lines().nth(2).expect("at least one recommendation");
        assert!(first.contains("Alg1 4x4x4"), "winner line: {first}");
    }

    #[test]
    fn simulate_verifies_and_measures() {
        let s = simulate(MatMulDims::new(48, 24, 12), 8, Some([2, 2, 2]), 3);
        assert!(s.contains("correct ✓"), "output was: {s}");
        assert!(s.contains("measured"));
    }

    #[test]
    fn simulate_defaults_to_best_grid() {
        let s = simulate(MatMulDims::new(96, 24, 6), 3, None, 1);
        assert!(s.contains("3x1x1"), "output was: {s}");
    }

    #[test]
    fn trace_attributes_phases_exactly_on_the_optimal_grid() {
        // §5.2 optimal grid for this instance divides the dims, so the
        // measured per-phase words must equal eq. (3) exactly.
        let (s, code) = trace(MatMulDims::new(96, 24, 12), 8, None, 3, None);
        assert_eq!(code, 0, "output was: {s}");
        assert!(s.contains("correct ✓"), "output was: {s}");
        assert!(s.contains("all phases match the prediction exactly"), "output was: {s}");
        assert!(s.contains("critical path:"), "output was: {s}");
    }

    #[test]
    fn sweep_covers_all_cases() {
        let s = sweep(PAPER, &[2.0, 36.0, 512.0]);
        assert!(s.contains("1D") && s.contains("2D") && s.contains("3D"), "{s}");
    }

    #[test]
    fn serve_config_flag_overrides_beat_defaults() {
        let opts = ServeOpts {
            workers: Some(2),
            queue_depth: Some(0),
            deadline_ms: Some(75),
            ..ServeOpts::default()
        };
        let c = serve_config(&opts);
        assert_eq!(c.workers, 2);
        assert_eq!(c.queue_depth, 1, "zero is clamped to a working minimum");
        assert_eq!(c.deadline, std::time::Duration::from_millis(75));
        // Untouched knobs keep their defaults.
        assert_eq!(c.max_line_bytes, ServeConfig::default().max_line_bytes);
        assert!(!c.chaos_verbs, "the CLI never enables chaos verbs");
    }
}
