//! The `pmm` binary: see [`pmm_cli::args::HELP`].

use pmm_cli::args::{parse_args, Command, HELP};
use pmm_cli::commands;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Command::Help) => print!("{HELP}"),
        Ok(Command::Bound { dims, procs, memory }) => {
            print!("{}", commands::bound(dims, procs, memory));
        }
        Ok(Command::Grid { dims, procs }) => print!("{}", commands::grid(dims, procs)),
        Ok(Command::Advise { dims, procs, memory, alpha, beta, gamma }) => {
            print!("{}", commands::advise(dims, procs, memory, alpha, beta, gamma));
        }
        Ok(Command::Simulate { dims, procs, grid, seed, faults, engine }) => {
            let (report, code) = commands::simulate_run(dims, procs, grid, seed, faults, engine);
            print!("{report}");
            if code != 0 {
                std::process::exit(code.into());
            }
        }
        Ok(Command::Trace { dims, procs, grid, seed, out }) => {
            let (report, code) = commands::trace(dims, procs, grid, seed, out.as_deref());
            print!("{report}");
            if code != 0 {
                std::process::exit(code.into());
            }
        }
        Ok(Command::Sweep { dims, procs }) => print!("{}", commands::sweep(dims, &procs)),
        Ok(Command::Calibrate { budget_secs, out }) => {
            let (report, code) = commands::calibrate(budget_secs, out.as_deref());
            print!("{report}");
            if code != 0 {
                std::process::exit(code.into());
            }
        }
        Ok(Command::Serve(opts)) => {
            let code = commands::serve(&opts);
            if code != 0 {
                std::process::exit(code.into());
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{HELP}");
            std::process::exit(2);
        }
    }
}
