//! # pmm-cli — command-line interface to the pmm library
//!
//! ```text
//! pmm bound    --dims 9600x2400x600 --procs 512 [--memory M]
//! pmm grid     --dims 9600x2400x600 --procs 512
//! pmm advise   --dims 4096x4096x4096 --procs 512 [--memory M]
//!              [--alpha A --beta B --gamma G]
//! pmm simulate --dims 768x192x48 --procs 36 [--grid 12x3x1] [--seed S]
//! pmm trace    --dims 768x192x48 --procs 36 [--grid 12x3x1] [--seed S]
//!              [--out run.json]
//! pmm sweep    --dims 9600x2400x600 --procs 1,4,36,512,4096
//! ```
//!
//! Argument parsing is hand-rolled (no external dependency) and separated
//! from the command implementations so it can be unit tested.

pub mod args;
pub mod commands;

pub use args::{parse_args, Command, ParseError};
