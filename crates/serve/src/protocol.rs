//! The wire protocol: one request line in, exactly one response line out.
//!
//! Requests are single UTF-8 lines of whitespace-separated tokens; the
//! first token is the verb. Responses are single lines beginning with one
//! of four status words — `OK`, `ERR`, `SHED`, `TIMEOUT` — so a client
//! can always classify the outcome from the first word. The parser is
//! **total**: every byte sequence, including invalid UTF-8, embedded NUL
//! bytes, overlong tokens, and truncated lines, maps to either a
//! [`Request`] or a typed [`RequestError`], never a panic (the proptest
//! fuzz suite in `tests/fuzz_protocol.rs` holds the service to this).
//!
//! ```text
//! ADVISE n1 n2 n3 P M [alpha beta gamma]   → OK advise case=… algo=… grid=…
//! STATS                                    → OK stats received=… shed=…
//! PING                                     → OK pong
//! ```
//!
//! `M` may be `inf` (no memory constraint). Two extra verbs, `__PANIC`
//! and `__SLEEP ms`, exist only when the server is configured with
//! [`chaos_verbs`](crate::ServeConfig::chaos_verbs) and let the chaos
//! harness drive the failure paths (panic isolation, deadline timeouts)
//! deliberately.

use std::fmt;

use pmm_core::advisor::AdvisorError;
use pmm_model::MachineParams;

/// Hard cap on request-line length unless overridden by
/// [`ServeConfig::max_line_bytes`](crate::ServeConfig::max_line_bytes):
/// a line longer than this is answered with `ERR line-too-long` and the
/// excess bytes are *discarded as they stream in*, never buffered.
pub const DEFAULT_MAX_LINE_BYTES: usize = 4096;

/// A fully parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `ADVISE n1 n2 n3 P M [alpha beta gamma]` — rank strategies for
    /// the query. Dimensions and `P` are raw `u64`s (validated by the
    /// advisor, not the parser, so validation errors are typed advisor
    /// errors); `M` is words, `f64::INFINITY` when given as `inf`.
    Advise {
        /// Rows of `A`/`C`.
        n1: u64,
        /// The contracted dimension.
        n2: u64,
        /// Columns of `B`/`C`.
        n3: u64,
        /// Processor count.
        p: u64,
        /// Local memory in words (`inf` ⇒ unconstrained).
        m_words: f64,
        /// α-β-γ machine used for ranking.
        params: MachineParams,
    },
    /// `STATS` — service counters.
    Stats,
    /// `PING` — liveness probe.
    Ping,
    /// `__PANIC [msg]` — panic inside the worker (chaos mode only).
    ChaosPanic(String),
    /// `__SLEEP ms` — hold the worker for `ms` milliseconds (chaos mode
    /// only); used to drive requests past their deadline on purpose.
    ChaosSleep(u64),
}

/// Machine-readable error codes carried by `ERR` responses.
///
/// Codes are lowercase tokens so clients can switch on them without
/// parsing prose; the prose after the colon is for humans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The line was not valid UTF-8 or contained a NUL byte.
    Encoding,
    /// The line exceeded the configured maximum length.
    LineTooLong,
    /// The request was empty (bare newline).
    Empty,
    /// Unknown verb.
    UnknownVerb,
    /// Wrong token count or an unparsable number.
    Parse,
    /// The advisor rejected the query values (dims, procs, memory…).
    Advisor,
    /// The worker panicked while serving the request (caught; the
    /// worker survives).
    Internal,
    /// The connection stalled past its read timeout.
    ReadTimeout,
    /// The server is draining for shutdown and not accepting work.
    Draining,
}

impl ErrCode {
    /// The wire token for this code.
    pub fn token(self) -> &'static str {
        match self {
            ErrCode::Encoding => "encoding",
            ErrCode::LineTooLong => "line-too-long",
            ErrCode::Empty => "empty",
            ErrCode::UnknownVerb => "unknown-verb",
            ErrCode::Parse => "parse",
            ErrCode::Advisor => "advisor",
            ErrCode::Internal => "internal",
            ErrCode::ReadTimeout => "read-timeout",
            ErrCode::Draining => "draining",
        }
    }
}

/// A request that could not be parsed, with the `ERR` code it maps to.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// The machine-readable code.
    pub code: ErrCode,
    /// Human-readable detail (sanitized before rendering).
    pub detail: String,
}

impl RequestError {
    fn new(code: ErrCode, detail: impl Into<String>) -> RequestError {
        RequestError { code, detail: detail.into() }
    }
}

/// One response line. Rendering ([`Response::render`]) always yields a
/// single `\n`-terminated line whose first word is the status.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success; `payload` is the rest of the line after `OK `.
    Ok(String),
    /// Typed failure: `ERR <code>: <detail>`.
    Err {
        /// Machine-readable code.
        code: ErrCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Load shed: the bounded queue was full when the request arrived.
    Shed {
        /// The configured queue depth that was exhausted.
        queue_depth: usize,
    },
    /// Deadline exceeded: accepted, but not answered in time.
    Timeout {
        /// The configured deadline budget, in milliseconds.
        deadline_ms: u64,
        /// How long the request had been in flight when it was
        /// abandoned, in milliseconds.
        waited_ms: u64,
    },
}

impl Response {
    /// Shorthand for an `ERR` response.
    pub fn err(code: ErrCode, detail: impl Into<String>) -> Response {
        Response::Err { code, detail: detail.into() }
    }

    /// True if this is an `OK` response.
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok(_))
    }

    /// Render as exactly one protocol line, newline-terminated. Interior
    /// newlines, carriage returns, and NUL bytes in payloads are replaced
    /// with spaces so a response can never masquerade as two.
    pub fn render(&self) -> String {
        let line = match self {
            Response::Ok(payload) if payload.is_empty() => "OK".to_string(),
            Response::Ok(payload) => format!("OK {payload}"),
            Response::Err { code, detail } => format!("ERR {}: {detail}", code.token()),
            Response::Shed { queue_depth } => format!("SHED queue-full depth={queue_depth}"),
            Response::Timeout { deadline_ms, waited_ms } => {
                format!("TIMEOUT deadline-ms={deadline_ms} waited-ms={waited_ms}")
            }
        };
        let mut sanitized: String = line
            .chars()
            .map(|c| if c == '\n' || c == '\r' || c == '\0' { ' ' } else { c })
            .collect();
        sanitized.push('\n');
        sanitized
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

impl From<RequestError> for Response {
    fn from(e: RequestError) -> Response {
        Response::Err { code: e.code, detail: e.detail }
    }
}

impl From<AdvisorError> for Response {
    fn from(e: AdvisorError) -> Response {
        Response::err(ErrCode::Advisor, e.to_string())
    }
}

fn parse_u64(tok: &str, what: &str) -> Result<u64, RequestError> {
    tok.parse::<u64>().map_err(|_| {
        RequestError::new(
            ErrCode::Parse,
            format!("{what} must be an unsigned integer, got {tok:?}"),
        )
    })
}

fn parse_f64(tok: &str, what: &str) -> Result<f64, RequestError> {
    if tok.eq_ignore_ascii_case("inf") {
        return Ok(f64::INFINITY);
    }
    tok.parse::<f64>().map_err(|_| {
        RequestError::new(ErrCode::Parse, format!("{what} must be a number, got {tok:?}"))
    })
}

/// Parse one request line from raw bytes (without the trailing newline).
///
/// Total: every input maps to `Ok` or a typed `Err`. `chaos` gates the
/// `__PANIC`/`__SLEEP` verbs — with it off they are unknown verbs, so a
/// production service cannot be panicked or stalled from the wire.
pub fn parse_request(line: &[u8], chaos: bool) -> Result<Request, RequestError> {
    if line.contains(&0) {
        return Err(RequestError::new(ErrCode::Encoding, "request contains a NUL byte"));
    }
    let text = std::str::from_utf8(line)
        .map_err(|e| RequestError::new(ErrCode::Encoding, format!("request is not UTF-8: {e}")))?;
    let mut tokens = text.split_whitespace();
    let Some(verb) = tokens.next() else {
        return Err(RequestError::new(ErrCode::Empty, "empty request line"));
    };
    let rest: Vec<&str> = tokens.collect();
    match verb {
        "ADVISE" => {
            if rest.len() != 5 && rest.len() != 8 {
                return Err(RequestError::new(
                    ErrCode::Parse,
                    format!(
                        "ADVISE takes `n1 n2 n3 P M [alpha beta gamma]` \
                         (5 or 8 arguments), got {}",
                        rest.len()
                    ),
                ));
            }
            let n1 = parse_u64(rest[0], "n1")?;
            let n2 = parse_u64(rest[1], "n2")?;
            let n3 = parse_u64(rest[2], "n3")?;
            let p = parse_u64(rest[3], "P")?;
            let m_words = parse_f64(rest[4], "M")?;
            let params = if rest.len() == 8 {
                MachineParams {
                    alpha: parse_f64(rest[5], "alpha")?,
                    beta: parse_f64(rest[6], "beta")?,
                    gamma: parse_f64(rest[7], "gamma")?,
                }
            } else {
                MachineParams::TYPICAL_CLUSTER
            };
            Ok(Request::Advise { n1, n2, n3, p, m_words, params })
        }
        "STATS" => {
            if !rest.is_empty() {
                return Err(RequestError::new(ErrCode::Parse, "STATS takes no arguments"));
            }
            Ok(Request::Stats)
        }
        "PING" => {
            if !rest.is_empty() {
                return Err(RequestError::new(ErrCode::Parse, "PING takes no arguments"));
            }
            Ok(Request::Ping)
        }
        "__PANIC" if chaos => Ok(Request::ChaosPanic(rest.join(" "))),
        "__SLEEP" if chaos => {
            let ms = rest.first().map(|t| parse_u64(t, "ms")).transpose()?.unwrap_or(0);
            Ok(Request::ChaosSleep(ms))
        }
        other => {
            // Truncate so a hostile verb can't balloon the response.
            let shown: String = other.chars().take(32).collect();
            Err(RequestError::new(ErrCode::UnknownVerb, format!("unknown verb {shown:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_advise_with_and_without_machine() {
        let r = parse_request(b"ADVISE 96 24 6 36 inf", false).unwrap();
        assert_eq!(
            r,
            Request::Advise {
                n1: 96,
                n2: 24,
                n3: 6,
                p: 36,
                m_words: f64::INFINITY,
                params: MachineParams::TYPICAL_CLUSTER,
            }
        );
        let r = parse_request(b"ADVISE 8 8 8 4 1000 0 1 0", false).unwrap();
        match r {
            Request::Advise { m_words, params, .. } => {
                assert_eq!(m_words, 1000.0);
                assert_eq!(params, MachineParams::BANDWIDTH_ONLY);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_lines_with_typed_codes() {
        let code = |b: &[u8]| parse_request(b, false).unwrap_err().code;
        assert_eq!(code(b""), ErrCode::Empty);
        assert_eq!(code(b"   \t "), ErrCode::Empty);
        assert_eq!(code(b"FROB 1 2"), ErrCode::UnknownVerb);
        assert_eq!(code(b"ADVISE 1 2 3"), ErrCode::Parse);
        assert_eq!(code(b"ADVISE 1 2 3 4 5 6"), ErrCode::Parse);
        assert_eq!(code(b"ADVISE a 2 3 4 inf"), ErrCode::Parse);
        assert_eq!(code(b"ADVISE 1 2 3 4 bogus"), ErrCode::Parse);
        assert_eq!(code(b"ADVISE -1 2 3 4 inf"), ErrCode::Parse);
        assert_eq!(code(b"STATS now"), ErrCode::Parse);
        assert_eq!(code(b"ADVISE 1 2 3 4\x00inf"), ErrCode::Encoding);
        assert_eq!(code(&[0xFF, 0xFE, b'A']), ErrCode::Encoding);
    }

    #[test]
    fn chaos_verbs_are_unknown_unless_enabled() {
        assert_eq!(parse_request(b"__PANIC boom", false).unwrap_err().code, ErrCode::UnknownVerb);
        assert_eq!(
            parse_request(b"__PANIC boom", true).unwrap(),
            Request::ChaosPanic("boom".into())
        );
        assert_eq!(parse_request(b"__SLEEP 50", true).unwrap(), Request::ChaosSleep(50));
        assert_eq!(parse_request(b"__SLEEP x", true).unwrap_err().code, ErrCode::Parse);
    }

    #[test]
    fn responses_render_as_exactly_one_line() {
        let cases = [
            Response::Ok("pong".into()),
            Response::err(ErrCode::Parse, "evil\ndetail\r\0here"),
            Response::Shed { queue_depth: 64 },
            Response::Timeout { deadline_ms: 50, waited_ms: 61 },
        ];
        for r in cases {
            let line = r.render();
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "{line:?}");
            assert!(!line.trim_end().is_empty());
            let first = line.split_whitespace().next().unwrap();
            assert!(["OK", "ERR", "SHED", "TIMEOUT"].contains(&first), "{line:?}");
        }
    }

    #[test]
    fn shed_and_timeout_lines_carry_their_budgets() {
        assert_eq!(Response::Shed { queue_depth: 8 }.render(), "SHED queue-full depth=8\n");
        assert_eq!(
            Response::Timeout { deadline_ms: 50, waited_ms: 172 }.render(),
            "TIMEOUT deadline-ms=50 waited-ms=172\n"
        );
    }
}
