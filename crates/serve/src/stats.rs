//! Service counters, exposed over the wire via the `STATS` verb.
//!
//! All counters are relaxed atomics: they are monotonically increasing
//! tallies used for observability and for the chaos harness's
//! invariants (shed rate, cache hit rate, zero lost requests), not for
//! synchronization. A [`StatsSnapshot`] is a plain copy taken at one
//! moment; `received == ok + errors + shed + timeouts` holds once the
//! queue is drained.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$meta:meta])* $name:ident),+ $(,)?) => {
        /// Live counters shared by every connection and worker thread.
        #[derive(Debug, Default)]
        pub struct Stats {
            $($(#[$meta])* pub $name: AtomicU64,)+
        }

        /// A point-in-time copy of [`Stats`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct StatsSnapshot {
            $($(#[$meta])* pub $name: u64,)+
        }

        impl Stats {
            /// Copy every counter (relaxed; counters may advance between
            /// loads, totals are reconciled only after a drain).
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }
        }

        impl StatsSnapshot {
            /// Render as the `key=value` payload of the `STATS` response.
            pub fn render(&self) -> String {
                let mut out = String::from("stats");
                $(
                    out.push(' ');
                    out.push_str(concat!(stringify!($name), "="));
                    out.push_str(&self.$name.to_string());
                )+
                out
            }
        }
    };
}

counters! {
    /// Request lines read off a connection or stdin (including ones that
    /// fail to parse).
    received,
    /// `OK` responses sent.
    ok,
    /// `ERR` responses sent (parse, advisor, internal…).
    errors,
    /// `SHED` responses sent because the bounded queue was full.
    shed,
    /// `TIMEOUT` responses sent because a deadline expired.
    timeouts,
    /// Worker panics caught by the isolation boundary (each also counts
    /// one `errors`).
    panics,
    /// Recommendation cache hits.
    cache_hits,
    /// Recommendation cache misses (cold computes).
    cache_misses,
    /// Connections accepted (TCP mode).
    connections,
    /// Connections dropped for stalling past the read timeout.
    read_timeouts,
    /// Lines rejected (and streamed to the bin) for exceeding the length
    /// cap.
    oversized_lines,
}

impl Stats {
    /// Bump a counter by one.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Tally a response at the moment it is written to a client: exactly
    /// one of `ok`/`errors`/`shed`/`timeouts` per line sent.
    pub fn count_response(&self, response: &crate::protocol::Response) {
        use crate::protocol::Response;
        let counter = match response {
            Response::Ok(_) => &self.ok,
            Response::Err { .. } => &self.errors,
            Response::Shed { .. } => &self.shed,
            Response::Timeout { .. } => &self.timeouts,
        };
        Stats::bump(counter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_and_renders_every_counter() {
        let s = Stats::default();
        s.received.store(10, Ordering::Relaxed);
        s.shed.store(3, Ordering::Relaxed);
        s.cache_hits.store(7, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.received, 10);
        assert_eq!(snap.shed, 3);
        let rendered = snap.render();
        assert!(rendered.starts_with("stats "));
        assert!(rendered.contains("received=10"));
        assert!(rendered.contains("shed=3"));
        assert!(rendered.contains("cache_hits=7"));
        assert!(rendered.contains("panics=0"));
        // One token per counter plus the leading word.
        assert_eq!(rendered.split_whitespace().count(), 12);
    }
}
