//! The hardened service shell around [`Engine`]: bounded queue, worker
//! pool, deadlines, panic isolation, and the stdin/TCP transports.
//!
//! The request path is:
//!
//! ```text
//! transport ── read_line_bounded ──► Server::submit
//!                  │ (length cap,         │ try_send on the bounded queue
//!                  │  read timeout)       │   full  → SHED (never buffer)
//!                  ▼                      ▼
//!            ERR line-too-long     worker pool (catch_unwind)
//!            ERR read-timeout         │ stale in queue → TIMEOUT
//!                                     │ panic          → ERR internal
//!                                     ▼
//!                              reply channel ──► recv_timeout(deadline)
//!                                                  late → TIMEOUT
//! ```
//!
//! Every overload knob is explicit: the queue depth bounds buffered
//! requests, the per-request deadline bounds client wait, the read
//! timeout bounds how long a slow (or slowloris) client can hold a
//! connection thread, and the line cap bounds per-connection buffering.
//! Workers never die: panics are caught, counted, and answered.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::Engine;
use crate::protocol::{ErrCode, Response};
use crate::stats::Stats;
use crate::ServeConfig;

/// Lock, recovering from poisoning: the protected state (queue handles,
/// cache maps, counter vectors) stays structurally valid even if a
/// holder panicked, and the service's whole job is to outlive panics.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// One queued request: the raw line plus the channel the transport is
/// waiting on and the enqueue instant its deadline is measured from.
struct Job {
    line: Vec<u8>,
    reply: SyncSender<Response>,
    enqueued: Instant,
}

/// The advisor service: an [`Engine`] behind a bounded queue and a pool
/// of panic-isolated workers. Transports call [`Server::submit`]; the
/// chaos harness and tests drive it directly.
pub struct Server {
    engine: Arc<Engine>,
    config: ServeConfig,
    tx: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Start the worker pool and return the ready-to-submit server.
    pub fn start(config: ServeConfig) -> Server {
        let engine = Arc::new(Engine::new(config.clone()));
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let engine = Arc::clone(&engine);
                let rx = Arc::clone(&rx);
                let deadline = config.deadline;
                std::thread::Builder::new()
                    .name(format!("pmm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&engine, &rx, deadline))
                    .expect("spawning a service worker thread")
            })
            .collect();
        Server { engine, config, tx: Mutex::new(Some(tx)), workers: Mutex::new(workers) }
    }

    /// The engine (for stats and direct handling in oneshot mode).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Run one request line through the full hardened pipeline and wait
    /// for its outcome. Exactly one [`Response`] comes back:
    ///
    /// * queue full → [`Response::Shed`] immediately (backpressure —
    ///   nothing is ever buffered beyond the queue depth);
    /// * no answer within the deadline → [`Response::Timeout`] (a late
    ///   worker reply is discarded);
    /// * worker panic → `ERR internal` (the worker survives);
    /// * after [`Server::shutdown`] began → `ERR draining`.
    pub fn submit(&self, line: Vec<u8>) -> Response {
        let sender = lock_recover(&self.tx).clone();
        let Some(sender) = sender else {
            return Response::err(ErrCode::Draining, "server is shutting down");
        };
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let enqueued = Instant::now();
        match sender.try_send(Job { line, reply: reply_tx, enqueued }) {
            Err(TrySendError::Full(_)) => Response::Shed { queue_depth: self.config.queue_depth },
            Err(TrySendError::Disconnected(_)) => {
                Response::err(ErrCode::Draining, "server is shutting down")
            }
            Ok(()) => match reply_rx.recv_timeout(self.config.deadline) {
                Ok(resp) => resp,
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    Response::Timeout {
                        deadline_ms: self.config.deadline.as_millis() as u64,
                        waited_ms: enqueued.elapsed().as_millis() as u64,
                    }
                }
            },
        }
    }

    /// Graceful shutdown: stop accepting new work, let the workers drain
    /// every request already in the queue (each still gets its response
    /// or typed timeout), and join them. Idempotent.
    pub fn shutdown(&self) {
        let tx = lock_recover(&self.tx).take();
        drop(tx); // workers exit once the queue is drained
        let handles: Vec<_> = lock_recover(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(engine: &Arc<Engine>, rx: &Arc<Mutex<Receiver<Job>>>, deadline: Duration) {
    loop {
        // Hold the receiver lock only for the dequeue, not the compute.
        let job = { lock_recover(rx).recv() };
        let Ok(job) = job else { break };
        let waited = job.enqueued.elapsed();
        if waited > deadline {
            // Stale before we even started: shed the compute, answer
            // with the typed timeout (the transport may itself have
            // synthesized one already; its channel is then gone and this
            // send is a no-op).
            let _ = job.reply.send(Response::Timeout {
                deadline_ms: deadline.as_millis() as u64,
                waited_ms: waited.as_millis() as u64,
            });
            continue;
        }
        let response = match catch_unwind(AssertUnwindSafe(|| engine.handle(&job.line))) {
            Ok(resp) => resp,
            Err(payload) => {
                Stats::bump(&engine.stats().panics);
                Response::err(
                    ErrCode::Internal,
                    format!("request handler panicked: {}", panic_message(payload.as_ref())),
                )
            }
        };
        let _ = job.reply.send(response);
    }
}

/// Outcome of one bounded line read.
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// A complete line (without the newline), within the cap.
    Line(Vec<u8>),
    /// The line exceeded the cap; the excess was *streamed to the bin*
    /// (consumed without buffering) up to the next newline or EOF.
    TooLong,
    /// End of stream.
    Eof,
}

/// Read one `\n`-terminated line, buffering at most `max` bytes and
/// enforcing `budget` wall-clock per line when given. Oversized lines
/// are discarded as they stream in, so per-connection memory is bounded
/// by `max` regardless of what a client sends. An `Err` means the
/// connection stalled (read timeout / budget exhausted) or broke.
pub fn read_line_bounded(
    reader: &mut impl BufRead,
    max: usize,
    budget: Option<Duration>,
) -> io::Result<LineRead> {
    let start = Instant::now();
    let mut buf: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        let (consumed, done) = {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                // EOF: a partial unterminated line still counts.
                return Ok(if discarding {
                    LineRead::TooLong
                } else if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line(buf)
                });
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !discarding {
                        buf.extend_from_slice(&chunk[..pos]);
                    }
                    (pos + 1, true)
                }
                None => {
                    if !discarding {
                        buf.extend_from_slice(chunk);
                    }
                    (chunk.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if !discarding && buf.len() > max {
            buf = Vec::new(); // hand the allocation back immediately
            discarding = true;
        }
        if done {
            return Ok(if discarding { LineRead::TooLong } else { LineRead::Line(buf) });
        }
        if let Some(budget) = budget {
            if start.elapsed() > budget {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "request line stalled past the read budget",
                ));
            }
        }
    }
}

/// True for error kinds produced by a stalled read (`SO_RCVTIMEO`
/// surfaces as either, platform-dependent).
fn is_stall(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Serve a line stream: read requests from `input`, write one response
/// line each to `output`, until EOF or a broken pipe. This is the stdin
/// transport and the per-connection loop of the TCP transport.
fn serve_lines(
    server: &Server,
    input: &mut impl BufRead,
    output: &mut impl Write,
    budget: Option<Duration>,
    stop: Option<&AtomicBool>,
) {
    let stats = server.engine().stats();
    let max = server.config().max_line_bytes;
    loop {
        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
            break;
        }
        let response = match read_line_bounded(input, max, budget) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::Line(line)) => {
                Stats::bump(&stats.received);
                server.submit(line)
            }
            Ok(LineRead::TooLong) => {
                Stats::bump(&stats.received);
                Stats::bump(&stats.oversized_lines);
                Response::err(ErrCode::LineTooLong, format!("request line exceeds {max} bytes"))
            }
            Err(e) if is_stall(e.kind()) => {
                // The partial line counts as received so that the
                // farewell ERR keeps `received == ok+errors+shed+timeouts`
                // exact after a drain.
                Stats::bump(&stats.received);
                Stats::bump(&stats.read_timeouts);
                let resp = Response::err(ErrCode::ReadTimeout, "connection stalled");
                stats.count_response(&resp);
                let _ = output.write_all(resp.render().as_bytes());
                break;
            }
            Err(_) => break,
        };
        stats.count_response(&response);
        if output.write_all(response.render().as_bytes()).is_err() {
            break;
        }
        let _ = output.flush();
    }
}

/// Serve stdin → stdout until EOF, then drain and shut down. Returns the
/// final stats snapshot.
pub fn serve_stdio(server: &Server) -> crate::stats::StatsSnapshot {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    serve_lines(server, &mut input, &mut output, None, None);
    server.shutdown();
    server.engine().stats().snapshot()
}

/// Answer exactly one request from `input` without spinning up the
/// queue/worker machinery (`pmm serve --oneshot`). Returns the rendered
/// response line and the process exit code: `0` for `OK`, `1` for
/// anything else (including an empty stream).
pub fn oneshot(config: ServeConfig, input: &mut impl BufRead) -> (String, u8) {
    let engine = Engine::new(config.clone());
    let response = match read_line_bounded(input, config.max_line_bytes, None) {
        Ok(LineRead::Line(line)) => match catch_unwind(AssertUnwindSafe(|| engine.handle(&line))) {
            Ok(resp) => resp,
            Err(payload) => Response::err(
                ErrCode::Internal,
                format!("request handler panicked: {}", panic_message(payload.as_ref())),
            ),
        },
        Ok(LineRead::TooLong) => Response::err(
            ErrCode::LineTooLong,
            format!("request line exceeds {} bytes", config.max_line_bytes),
        ),
        Ok(LineRead::Eof) => Response::err(ErrCode::Empty, "no request on stdin"),
        Err(e) => Response::err(ErrCode::ReadTimeout, format!("could not read stdin: {e}")),
    };
    let code = u8::from(!response.is_ok());
    (response.render(), code)
}

/// A live TCP listener: accepts connections, one thread per connection,
/// each with read timeouts so stalled clients are disconnected instead
/// of pinning anything.
pub struct TcpService {
    server: Arc<Server>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpService {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting.
    pub fn bind(config: ServeConfig, addr: impl ToSocketAddrs) -> io::Result<TcpService> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let server = Arc::new(Server::start(config));
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("pmm-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &server, &stop, &conns))
                .expect("spawning the accept thread")
        };
        Ok(TcpService { server, addr: local, stop, accept: Some(accept), conns })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying server (stats, config, direct submits).
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Graceful shutdown: stop accepting, let every open connection
    /// finish its current request (bounded by the read timeout), drain
    /// the queue, join all threads. Returns the final stats snapshot.
    pub fn shutdown(mut self) -> crate::stats::StatsSnapshot {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = lock_recover(&self.conns).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.server.shutdown();
        self.server.engine().stats().snapshot()
    }
}

fn accept_loop(
    listener: &TcpListener,
    server: &Arc<Server>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else { continue };
        Stats::bump(&server.engine().stats().connections);
        let server = Arc::clone(server);
        let stop_conn = Arc::clone(stop);
        let handle = std::thread::Builder::new()
            .name("pmm-serve-conn".to_string())
            .spawn(move || handle_connection(&server, stream, &stop_conn))
            .expect("spawning a connection thread");
        let mut guard = lock_recover(conns);
        guard.retain(|h| !h.is_finished());
        guard.push(handle);
    }
}

fn handle_connection(server: &Arc<Server>, stream: TcpStream, stop: &AtomicBool) {
    let read_timeout = server.config().read_timeout;
    if stream.set_read_timeout(Some(read_timeout)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(reader_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(reader_half);
    let mut writer = stream;
    serve_lines(server, &mut reader, &mut writer, Some(read_timeout), Some(stop));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_reader_splits_lines_and_reports_eof() {
        let mut input = io::Cursor::new(b"PING\nSTATS\ntail".to_vec());
        assert_eq!(
            read_line_bounded(&mut input, 64, None).unwrap(),
            LineRead::Line(b"PING".to_vec())
        );
        assert_eq!(
            read_line_bounded(&mut input, 64, None).unwrap(),
            LineRead::Line(b"STATS".to_vec())
        );
        // Unterminated trailing bytes still form a line, then EOF.
        assert_eq!(
            read_line_bounded(&mut input, 64, None).unwrap(),
            LineRead::Line(b"tail".to_vec())
        );
        assert_eq!(read_line_bounded(&mut input, 64, None).unwrap(), LineRead::Eof);
    }

    #[test]
    fn bounded_reader_discards_oversized_lines_without_buffering() {
        let mut big = vec![b'x'; 1 << 20];
        big.push(b'\n');
        big.extend_from_slice(b"PING\n");
        let mut input = io::Cursor::new(big);
        assert_eq!(read_line_bounded(&mut input, 64, None).unwrap(), LineRead::TooLong);
        // The stream is resynchronized at the newline.
        assert_eq!(
            read_line_bounded(&mut input, 64, None).unwrap(),
            LineRead::Line(b"PING".to_vec())
        );
    }

    #[test]
    fn oneshot_ok_and_err_exit_codes() {
        let cfg = ServeConfig::default();
        let (line, code) = oneshot(cfg.clone(), &mut io::Cursor::new(b"PING\n".to_vec()));
        assert_eq!((line.as_str(), code), ("OK pong\n", 0));
        let (line, code) = oneshot(cfg.clone(), &mut io::Cursor::new(b"FROB\n".to_vec()));
        assert!(line.starts_with("ERR unknown-verb"), "{line}");
        assert_eq!(code, 1);
        let (line, code) = oneshot(cfg, &mut io::Cursor::new(Vec::new()));
        assert!(line.starts_with("ERR empty"), "{line}");
        assert_eq!(code, 1);
    }
}
