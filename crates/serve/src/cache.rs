//! Memoized Lemma-2/KKT recommendations.
//!
//! The advisor's hot path — rank every feasible grid and 2.5D layout for
//! a `(n1, n2, n3, P, M, α, β, γ)` query — is pure, so repeated queries
//! are answered from a bounded map. The key leads with the **Theorem 3
//! case classification** of the query's aspect ratios (`SortedDims::
//! classify`): two queries can only share an entry when they agree on
//! the regime *and* on every raw parameter, so there is no false sharing
//! across the 1D/2D/3D cases or across machine models (the
//! memoization-correctness suite asserts hits are bitwise identical to
//! cold computes in all three regimes and on both boundaries).
//!
//! Eviction is FIFO at a fixed capacity: the cache can never grow
//! unboundedly no matter what traffic it sees, which is part of the
//! service's bounded-memory contract.

use std::collections::{HashMap, VecDeque};

use pmm_core::advisor::{try_recommend, AdvisorError, Recommendation};
use pmm_model::{Case, MachineParams, MatMulDims};

/// Cache key: the case classification first, then the raw query
/// parameters (floats by bit pattern, so `inf` and every finite budget
/// are distinct keys and NaN never reaches the map — validation rejects
/// it upstream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Theorem 3 regime of `(sorted dims, P)`.
    pub case: Case,
    /// Raw dimensions, unsorted (the recommendation is axis-specific).
    pub dims: (u64, u64, u64),
    /// Processor count.
    pub p: u64,
    /// Memory budget bit pattern.
    pub m_bits: u64,
    /// `(α, β, γ)` bit patterns.
    pub machine_bits: (u64, u64, u64),
}

impl CacheKey {
    /// Build the key for a query, or `None` if the query is degenerate
    /// (zero dims or procs, NaN memory/machine) — degenerate queries
    /// bypass the cache and fall through to [`try_recommend`] for their
    /// typed error.
    pub fn try_new(
        n1: u64,
        n2: u64,
        n3: u64,
        p: u64,
        m_words: f64,
        params: MachineParams,
    ) -> Option<CacheKey> {
        if n1 == 0 || n2 == 0 || n3 == 0 || p == 0 || m_words.is_nan() {
            return None;
        }
        if params.alpha.is_nan() || params.beta.is_nan() || params.gamma.is_nan() {
            return None;
        }
        let case = MatMulDims::new(n1, n2, n3).sorted().classify(p as f64);
        Some(CacheKey {
            case,
            dims: (n1, n2, n3),
            p,
            m_bits: m_words.to_bits(),
            machine_bits: (params.alpha.to_bits(), params.beta.to_bits(), params.gamma.to_bits()),
        })
    }
}

/// Whether a lookup was served from the cache or computed cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Entry was present.
    Hit,
    /// Entry was computed and inserted.
    Miss,
    /// Query was degenerate (or the advisor rejected it): nothing cached.
    Uncacheable,
}

/// A bounded FIFO-evicting memo of advisor rankings.
///
/// Not internally synchronized — the server wraps it in a `Mutex`; the
/// critical section is a hash lookup or insert, never the KKT solve
/// misses compute outside any lock (see `engine.rs`, which pairs
/// [`RecCache::get`] and [`RecCache::insert`] around an unlocked KKT
/// solve).
#[derive(Debug)]
pub struct RecCache {
    map: HashMap<CacheKey, Vec<Recommendation>>,
    order: VecDeque<CacheKey>,
    capacity: usize,
}

impl RecCache {
    /// A cache holding at most `capacity` rankings (`capacity == 0`
    /// disables memoization entirely).
    pub fn new(capacity: usize) -> RecCache {
        RecCache { map: HashMap::new(), order: VecDeque::new(), capacity }
    }

    /// Current number of cached rankings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Fetch the ranking for `key` if present.
    pub fn get(&self, key: &CacheKey) -> Option<&Vec<Recommendation>> {
        self.map.get(key)
    }

    /// Insert a computed ranking, evicting the oldest entry at capacity.
    pub fn insert(&mut self, key: CacheKey, recs: Vec<Recommendation>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.contains_key(&key) {
            return; // racing cold computes of the same key are identical
        }
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.order.push_back(key);
        self.map.insert(key, recs);
    }
}

/// Memoized [`try_recommend`]: look `(n1…params)` up in `cache`, compute
/// on a miss, and report which happened. Degenerate and rejected queries
/// are never inserted.
pub fn cached_recommend(
    cache: &std::sync::Mutex<RecCache>,
    n1: u64,
    n2: u64,
    n3: u64,
    p: u64,
    m_words: f64,
    params: MachineParams,
) -> (Result<Vec<Recommendation>, AdvisorError>, CacheOutcome) {
    let Some(key) = CacheKey::try_new(n1, n2, n3, p, m_words, params) else {
        return (try_recommend(n1, n2, n3, p, m_words, params), CacheOutcome::Uncacheable);
    };
    {
        let cache = cache.lock().expect("cache lock poisoned (worker panics are caught upstream)");
        if let Some(recs) = cache.get(&key) {
            return (Ok(recs.clone()), CacheOutcome::Hit);
        }
    }
    // Compute outside the lock: the KKT solve and grid search are the
    // expensive part and must not serialize the worker pool.
    match try_recommend(n1, n2, n3, p, m_words, params) {
        Ok(recs) => {
            let mut cache =
                cache.lock().expect("cache lock poisoned (worker panics are caught upstream)");
            cache.insert(key, recs.clone());
            (Ok(recs), CacheOutcome::Miss)
        }
        Err(e) => (Err(e), CacheOutcome::Uncacheable),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    const BW: MachineParams = MachineParams::BANDWIDTH_ONLY;

    #[test]
    fn key_embeds_the_case_classification() {
        // Same dims, different P: the sorted dims (96, 24, 6) have
        // thresholds m/n = 4 and mn/k² = 64.
        let k1 = CacheKey::try_new(96, 24, 6, 2, f64::INFINITY, BW).unwrap();
        let k2 = CacheKey::try_new(96, 24, 6, 36, f64::INFINITY, BW).unwrap();
        let k3 = CacheKey::try_new(96, 24, 6, 512, f64::INFINITY, BW).unwrap();
        assert_eq!(k1.case, Case::OneD);
        assert_eq!(k2.case, Case::TwoD);
        assert_eq!(k3.case, Case::ThreeD);
        assert_ne!(k1, k2);
        assert_ne!(k2, k3);
    }

    #[test]
    fn degenerate_queries_have_no_key() {
        assert!(CacheKey::try_new(0, 1, 1, 1, 1.0, BW).is_none());
        assert!(CacheKey::try_new(1, 1, 1, 0, 1.0, BW).is_none());
        assert!(CacheKey::try_new(1, 1, 1, 1, f64::NAN, BW).is_none());
    }

    #[test]
    fn fifo_eviction_caps_the_map() {
        let mut c = RecCache::new(2);
        let keys: Vec<CacheKey> = (1..=3)
            .map(|p| CacheKey::try_new(64, 64, 64, p * 8, f64::INFINITY, BW).unwrap())
            .collect();
        for k in &keys {
            c.insert(*k, Vec::new());
        }
        assert_eq!(c.len(), 2);
        assert!(c.get(&keys[0]).is_none(), "oldest entry evicted");
        assert!(c.get(&keys[1]).is_some());
        assert!(c.get(&keys[2]).is_some());
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let c = Mutex::new(RecCache::new(0));
        let (r1, o1) = cached_recommend(&c, 64, 64, 64, 8, f64::INFINITY, BW);
        assert!(r1.is_ok());
        assert_eq!(o1, CacheOutcome::Miss);
        let (_, o2) = cached_recommend(&c, 64, 64, 64, 8, f64::INFINITY, BW);
        assert_eq!(o2, CacheOutcome::Miss, "nothing was retained");
        assert!(c.lock().unwrap().is_empty());
    }

    #[test]
    fn hit_after_miss_returns_the_same_ranking() {
        let c = Mutex::new(RecCache::new(16));
        let (cold, o1) = cached_recommend(&c, 96, 24, 6, 36, f64::INFINITY, BW);
        assert_eq!(o1, CacheOutcome::Miss);
        let (hot, o2) = cached_recommend(&c, 96, 24, 6, 36, f64::INFINITY, BW);
        assert_eq!(o2, CacheOutcome::Hit);
        assert_eq!(cold.unwrap(), hot.unwrap());
    }

    #[test]
    fn rejected_queries_are_uncacheable() {
        let c = Mutex::new(RecCache::new(16));
        let (r, o) = cached_recommend(&c, 4096, 4096, 4096, 8, 10.0, BW);
        assert!(r.is_err());
        assert_eq!(o, CacheOutcome::Uncacheable);
        assert!(c.lock().unwrap().is_empty());
    }
}
