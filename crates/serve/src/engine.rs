//! Request execution: one parsed line in, one [`Response`] out.
//!
//! The engine owns the memoized recommendation cache and the service
//! counters but knows nothing about transports, queues, or threads —
//! `server.rs` wraps it in the bounded-queue worker pool. [`Engine::
//! handle`] is *allowed to panic* (that is the point of the `__PANIC`
//! chaos verb); the worker pool calls it under `catch_unwind` and turns
//! a panic into a structured `ERR internal` while the worker survives.

use std::sync::Mutex;
use std::time::Instant;

use pmm_core::advisor::{Recommendation, Strategy};

use crate::cache::{cached_recommend, CacheOutcome, RecCache};
use crate::protocol::{parse_request, Request, Response};
use crate::stats::Stats;
use crate::ServeConfig;

/// The transport-independent request handler.
#[derive(Debug)]
pub struct Engine {
    config: ServeConfig,
    cache: Mutex<RecCache>,
    stats: Stats,
    started: Instant,
}

/// Render a strategy as wire tokens (`algo=… grid=…` / `algo=… q=… c=…`).
fn strategy_tokens(s: &Strategy) -> String {
    match s {
        Strategy::Alg1 { grid } => format!("algo=alg1 grid={}x{}x{}", grid[0], grid[1], grid[2]),
        Strategy::TwoFiveD { q, c } => format!("algo=2.5d q={q} c={c}"),
    }
}

impl Engine {
    /// An engine with a fresh cache and zeroed counters.
    pub fn new(config: ServeConfig) -> Engine {
        Engine {
            cache: Mutex::new(RecCache::new(config.cache_capacity)),
            config,
            stats: Stats::default(),
            started: Instant::now(),
        }
    }

    /// The live counters (shared with transports, which tally responses
    /// and connection events).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serve one raw request line (no trailing newline).
    ///
    /// Total except for the chaos verbs: every malformed or invalid
    /// input returns a typed `ERR`. `__PANIC` panics **by design** —
    /// callers that must survive hostile traffic wrap this in
    /// `catch_unwind`, as the worker pool does.
    pub fn handle(&self, line: &[u8]) -> Response {
        let request = match parse_request(line, self.config.chaos_verbs) {
            Ok(r) => r,
            Err(e) => return e.into(),
        };
        match request {
            Request::Advise { n1, n2, n3, p, m_words, params } => {
                let (result, outcome) =
                    cached_recommend(&self.cache, n1, n2, n3, p, m_words, params);
                match outcome {
                    CacheOutcome::Hit => Stats::bump(&self.stats.cache_hits),
                    CacheOutcome::Miss => Stats::bump(&self.stats.cache_misses),
                    CacheOutcome::Uncacheable => {}
                }
                match result {
                    Ok(recs) => Response::Ok(render_advice(&recs, n1, n2, n3, p, outcome)),
                    Err(e) => e.into(),
                }
            }
            Request::Stats => {
                let snap = self.stats.snapshot();
                let cache_size =
                    self.cache.lock().unwrap_or_else(|poison| poison.into_inner()).len();
                Response::Ok(format!(
                    "{} cache_size={cache_size} workers={} queue_depth={} deadline_ms={} \
                     uptime_ms={}",
                    snap.render(),
                    self.config.workers,
                    self.config.queue_depth,
                    self.config.deadline.as_millis(),
                    self.started.elapsed().as_millis(),
                ))
            }
            Request::Ping => Response::Ok("pong".to_string()),
            Request::ChaosPanic(msg) => panic!("chaos verb: {msg}"),
            Request::ChaosSleep(ms) => {
                // Cap so a hostile sleep cannot pin a worker for longer
                // than a handful of deadlines even in chaos mode.
                let cap = (self.config.deadline.as_millis() as u64).saturating_mul(20).max(1000);
                std::thread::sleep(std::time::Duration::from_millis(ms.min(cap)));
                Response::Ok(format!("slept ms={}", ms.min(cap)))
            }
        }
    }
}

/// The `OK advise …` payload: the winning strategy, its full predicted
/// cost, the regime, and whether the ranking came from the cache.
fn render_advice(
    recs: &[Recommendation],
    n1: u64,
    n2: u64,
    n3: u64,
    p: u64,
    outcome: CacheOutcome,
) -> String {
    let best = &recs[0];
    let case = pmm_model::MatMulDims::new(n1, n2, n3).sorted().classify(p as f64);
    let cache = match outcome {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Miss => "miss",
        CacheOutcome::Uncacheable => "bypass",
    };
    format!(
        "advise case={case} {} time={} words={} msgs={} flops={} mem={} alts={} cache={cache}",
        strategy_tokens(&best.strategy),
        best.time,
        best.cost.words,
        best.cost.messages,
        best.cost.flops,
        best.memory_words,
        recs.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrCode;

    fn engine(chaos: bool) -> Engine {
        Engine::new(ServeConfig { chaos_verbs: chaos, ..ServeConfig::default() })
    }

    #[test]
    fn advise_round_trip_reports_case_strategy_and_cache_state() {
        let e = engine(false);
        let r1 = e.handle(b"ADVISE 96 24 6 36 inf 0 1 0");
        match &r1 {
            Response::Ok(p) => {
                assert!(p.contains("case=2D"), "{p}");
                assert!(p.contains("algo="), "{p}");
                assert!(p.contains("cache=miss"), "{p}");
            }
            other => panic!("expected OK, got {other:?}"),
        }
        let r2 = e.handle(b"ADVISE 96 24 6 36 inf 0 1 0");
        match &r2 {
            Response::Ok(p) => assert!(p.contains("cache=hit"), "{p}"),
            other => panic!("expected OK, got {other:?}"),
        }
        assert_eq!(e.stats().snapshot().cache_hits, 1);
        assert_eq!(e.stats().snapshot().cache_misses, 1);
    }

    #[test]
    fn invalid_queries_get_typed_advisor_errors() {
        let e = engine(false);
        match e.handle(b"ADVISE 0 8 8 4 inf") {
            Response::Err { code, detail } => {
                assert_eq!(code, ErrCode::Advisor);
                assert!(detail.contains("n1"), "{detail}");
            }
            other => panic!("expected ERR, got {other:?}"),
        }
        match e.handle(b"ADVISE 4096 4096 4096 8 10") {
            Response::Err { code, detail } => {
                assert_eq!(code, ErrCode::Advisor);
                assert!(detail.contains("floor"), "{detail}");
            }
            other => panic!("expected ERR, got {other:?}"),
        }
    }

    #[test]
    fn stats_verb_reports_counters_and_config() {
        let e = engine(false);
        let _ = e.handle(b"ADVISE 8 8 8 4 inf");
        match e.handle(b"STATS") {
            Response::Ok(p) => {
                assert!(p.starts_with("stats "), "{p}");
                assert!(p.contains("cache_misses=1"), "{p}");
                assert!(p.contains("cache_size=1"), "{p}");
                assert!(p.contains("queue_depth="), "{p}");
                assert!(p.contains("deadline_ms="), "{p}");
            }
            other => panic!("expected OK, got {other:?}"),
        }
    }

    #[test]
    fn ping_pongs() {
        assert_eq!(engine(false).handle(b"PING"), Response::Ok("pong".into()));
    }

    #[test]
    fn chaos_panic_panics_only_when_enabled() {
        let quiet = engine(false);
        assert!(matches!(
            quiet.handle(b"__PANIC boom"),
            Response::Err { code: ErrCode::UnknownVerb, .. }
        ));
        let chaotic = engine(true);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            chaotic.handle(b"__PANIC boom")
        }));
        assert!(caught.is_err(), "__PANIC must actually panic in chaos mode");
    }
}
