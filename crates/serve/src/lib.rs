//! # pmm-serve — the hardened advisor service
//!
//! ROADMAP item 2 made flesh, robustness-first: a long-running
//! line-protocol query service answering "given `(n1, n2, n3, P, M)`,
//! which algorithm, which grid, what cost?" — the Theorem 3 / Lemma 2
//! classification of Al Daas et al. served as a hot path — built so that
//! overload, malformed input, slow clients, and mid-request panics
//! degrade *gracefully* instead of taking the process down:
//!
//! * **Bounded queue, explicit backpressure.** Requests sit in a
//!   fixed-depth queue; when it is full the service answers `SHED`
//!   immediately rather than buffering without bound.
//! * **Per-request deadlines.** Every accepted request is answered
//!   within its deadline budget or with a typed `TIMEOUT`.
//! * **Read timeouts.** A slow or stalled (slowloris) client is
//!   disconnected after the read timeout; it can pin only its own
//!   connection thread, never a queue worker.
//! * **Panic isolation.** Worker threads run each request under
//!   `catch_unwind`: a poisoned request returns `ERR internal` and the
//!   worker survives to serve the next one.
//! * **Memoization.** Lemma-2/KKT rankings are cached keyed by the
//!   case-classified aspect ratios ([`cache`]); hit/miss/shed/timeout
//!   counters are exposed over the wire via the `STATS` verb.
//! * **Graceful shutdown.** Draining completes every in-flight query
//!   before the workers exit.
//!
//! The protocol is one request line in, exactly one response line out
//! (see [`protocol`]); transports are stdin/stdout and TCP
//! ([`TcpService`]). The chaos load harness in `pmm-bench`
//! (`serve_chaos`) drives all of the above adversarially and emits the
//! `BENCH_serve.json` throughput/latency trajectory.
//!
//! ```
//! use pmm_serve::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default());
//! let response = server.submit(b"ADVISE 96 24 6 36 inf".to_vec());
//! assert!(response.render().starts_with("OK advise case=2D"));
//! server.shutdown();
//! ```

#![warn(missing_docs)]

use std::time::Duration;

pub mod cache;
pub mod engine;
pub mod protocol;
pub mod server;
pub mod stats;

pub use cache::{CacheKey, CacheOutcome, RecCache};
pub use engine::Engine;
pub use protocol::{parse_request, ErrCode, Request, Response};
pub use server::{oneshot, read_line_bounded, serve_stdio, LineRead, Server, TcpService};
pub use stats::{Stats, StatsSnapshot};

/// Tuning knobs of the service. Every knob has a `PMM_SERVE_*`
/// environment override (see [`ServeConfig::from_env`]); defaults are
/// sized for an interactive local service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded request-queue depth; a full queue sheds.
    pub queue_depth: usize,
    /// Per-request deadline budget (enqueue → response).
    pub deadline: Duration,
    /// Per-connection read timeout (TCP): the longest a client may
    /// stall mid-line or sit idle between lines.
    pub read_timeout: Duration,
    /// Maximum request-line length in bytes; longer lines are answered
    /// with `ERR line-too-long` and streamed to the bin unbuffered.
    pub max_line_bytes: usize,
    /// Recommendation-cache capacity in entries (0 disables).
    pub cache_capacity: usize,
    /// Enable the `__PANIC`/`__SLEEP` chaos verbs (test harnesses only;
    /// off by default so production traffic cannot trigger them).
    pub chaos_verbs: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_depth: 128,
            deadline: Duration::from_millis(250),
            read_timeout: Duration::from_secs(5),
            max_line_bytes: protocol::DEFAULT_MAX_LINE_BYTES,
            cache_capacity: 4096,
            chaos_verbs: false,
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

impl ServeConfig {
    /// Defaults overridden by the `PMM_SERVE_*` environment:
    /// `PMM_SERVE_WORKERS`, `PMM_SERVE_QUEUE_DEPTH`,
    /// `PMM_SERVE_DEADLINE_MS`, `PMM_SERVE_READ_TIMEOUT_MS`,
    /// `PMM_SERVE_MAX_LINE`, and `PMM_SERVE_CACHE`. Unset or unparsable
    /// variables keep the default (the service must come up even with a
    /// hostile environment).
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Some(v) = env_parse::<usize>("PMM_SERVE_WORKERS") {
            cfg.workers = v.max(1);
        }
        if let Some(v) = env_parse::<usize>("PMM_SERVE_QUEUE_DEPTH") {
            cfg.queue_depth = v.max(1);
        }
        if let Some(v) = env_parse::<u64>("PMM_SERVE_DEADLINE_MS") {
            cfg.deadline = Duration::from_millis(v.max(1));
        }
        if let Some(v) = env_parse::<u64>("PMM_SERVE_READ_TIMEOUT_MS") {
            cfg.read_timeout = Duration::from_millis(v.max(1));
        }
        if let Some(v) = env_parse::<usize>("PMM_SERVE_MAX_LINE") {
            cfg.max_line_bytes = v.max(16);
        }
        if let Some(v) = env_parse::<usize>("PMM_SERVE_CACHE") {
            cfg.cache_capacity = v;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= 1);
        assert!(c.deadline > Duration::ZERO);
        assert!(!c.chaos_verbs, "chaos verbs must be opt-in");
    }
}
