//! Integration tests of the hardened service: backpressure, deadlines,
//! panic isolation, slowloris defense, and graceful drain — the
//! robustness contract of `pmm serve`, exercised end to end through
//! both the direct [`Server::submit`] pipeline and the TCP transport.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pmm_serve::{Response, ServeConfig, Server, TcpService};

fn cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_depth: 2,
        deadline: Duration::from_millis(200),
        read_timeout: Duration::from_millis(300),
        max_line_bytes: 256,
        cache_capacity: 64,
        chaos_verbs: true,
    }
}

#[test]
fn queue_overflow_sheds_instead_of_buffering() {
    // One worker, depth-2 queue: occupy the worker, fill the queue, and
    // the next request must be SHED immediately, not queued.
    let server = Arc::new(Server::start(ServeConfig {
        workers: 1,
        deadline: Duration::from_millis(500),
        ..cfg()
    }));
    // Stagger the saturation so it is deterministic: first occupy the
    // worker, *then* fill both queue slots.
    let mut busy = Vec::new();
    let s = Arc::clone(&server);
    busy.push(std::thread::spawn(move || s.submit(b"__SLEEP 300".to_vec())));
    std::thread::sleep(Duration::from_millis(60));
    for _ in 0..2 {
        let s = Arc::clone(&server);
        busy.push(std::thread::spawn(move || s.submit(b"__SLEEP 0".to_vec())));
    }
    std::thread::sleep(Duration::from_millis(60));
    let start = Instant::now();
    let resp = server.submit(b"PING".to_vec());
    assert_eq!(resp, Response::Shed { queue_depth: 2 }, "queue full must shed");
    assert!(start.elapsed() < Duration::from_millis(100), "shedding must be immediate");
    for h in busy {
        let r = h.join().expect("busy submitter");
        assert!(
            matches!(r, Response::Ok(_) | Response::Timeout { .. }),
            "accepted requests still complete: {r:?}"
        );
    }
    server.shutdown();
}

#[test]
fn deadline_exceeded_is_a_typed_timeout() {
    let server = Server::start(cfg());
    let start = Instant::now();
    let resp = server.submit(b"__SLEEP 2000".to_vec());
    let waited = start.elapsed();
    match resp {
        Response::Timeout { deadline_ms, waited_ms } => {
            assert_eq!(deadline_ms, 200);
            assert!(waited_ms >= 200, "reported wait {waited_ms} below deadline");
        }
        other => panic!("expected TIMEOUT, got {other:?}"),
    }
    assert!(waited >= Duration::from_millis(200));
    assert!(waited < Duration::from_millis(1500), "client must not wait for the full sleep");
    server.shutdown();
}

#[test]
fn stale_queued_requests_time_out_without_compute() {
    // With one worker held busy past the deadline, a queued request goes
    // stale; the worker sheds its compute and answers TIMEOUT.
    let server = Arc::new(Server::start(ServeConfig {
        workers: 1,
        deadline: Duration::from_millis(100),
        ..cfg()
    }));
    let s = Arc::clone(&server);
    let blocker = std::thread::spawn(move || s.submit(b"__SLEEP 400".to_vec()));
    std::thread::sleep(Duration::from_millis(30));
    let resp = server.submit(b"ADVISE 96 24 6 36 inf".to_vec());
    assert!(matches!(resp, Response::Timeout { .. }), "stale request must time out: {resp:?}");
    let _ = blocker.join();
    server.shutdown();
}

#[test]
fn worker_panics_are_isolated_and_counted() {
    let server = Server::start(cfg());
    // More panics than workers: if a panic killed its worker, the pool
    // would be gone and later requests would all time out.
    for i in 0..10 {
        let resp = server.submit(format!("__PANIC boom-{i}").into_bytes());
        match resp {
            Response::Err { detail, .. } => {
                assert!(detail.contains(&format!("boom-{i}")), "{detail}");
            }
            other => panic!("expected ERR internal, got {other:?}"),
        }
    }
    let resp = server.submit(b"PING".to_vec());
    assert_eq!(resp, Response::Ok("pong".into()), "workers must survive panics");
    assert_eq!(server.engine().stats().snapshot().panics, 10);
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let server = Arc::new(Server::start(ServeConfig {
        workers: 2,
        queue_depth: 8,
        deadline: Duration::from_millis(1000),
        ..cfg()
    }));
    let inflight: Vec<_> = (0..6)
        .map(|_| {
            let s = Arc::clone(&server);
            std::thread::spawn(move || s.submit(b"__SLEEP 40".to_vec()))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    server.shutdown();
    for h in inflight {
        let r = h.join().expect("in-flight submitter");
        assert!(
            matches!(r, Response::Ok(_) | Response::Timeout { .. } | Response::Shed { .. }),
            "in-flight request must get its response through the drain: {r:?}"
        );
    }
    // After the drain, new work is refused with a typed error.
    match server.submit(b"PING".to_vec()) {
        Response::Err { detail, .. } => assert!(detail.contains("shutting down"), "{detail}"),
        other => panic!("expected ERR draining, got {other:?}"),
    }
}

fn send_lines(addr: std::net::SocketAddr, lines: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(lines.as_bytes()).expect("write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let n = lines.matches('\n').count();
    let mut out = Vec::new();
    for _ in 0..n {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read") == 0 {
            break;
        }
        out.push(line.trim_end().to_string());
    }
    out
}

#[test]
fn tcp_round_trip_and_stats() {
    let svc = TcpService::bind(cfg(), "127.0.0.1:0").expect("bind");
    let replies = send_lines(svc.addr(), "PING\nADVISE 96 24 6 36 inf\nSTATS\n");
    assert_eq!(replies[0], "OK pong");
    assert!(replies[1].starts_with("OK advise case=2D"), "{}", replies[1]);
    assert!(replies[2].starts_with("OK stats received="), "{}", replies[2]);
    let snap = svc.shutdown();
    assert_eq!(snap.connections, 1);
    assert_eq!(snap.received, 3);
    assert_eq!(snap.ok, 3);
}

#[test]
fn tcp_malformed_bytes_get_typed_errors_and_the_connection_survives() {
    let svc = TcpService::bind(cfg(), "127.0.0.1:0").expect("bind");
    let mut stream = TcpStream::connect(svc.addr()).expect("connect");
    stream.write_all(b"\xFF\xFE garbage\nADVISE 1 2\nPING\n").expect("write");
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    for _ in 0..3 {
        let mut l = String::new();
        reader.read_line(&mut l).expect("read");
        lines.push(l);
    }
    assert!(lines[0].starts_with("ERR encoding"), "{}", lines[0]);
    assert!(lines[1].starts_with("ERR parse"), "{}", lines[1]);
    assert_eq!(lines[2], "OK pong\n");
    svc.shutdown();
}

#[test]
fn tcp_oversized_line_is_rejected_without_buffering() {
    let svc = TcpService::bind(cfg(), "127.0.0.1:0").expect("bind");
    let mut stream = TcpStream::connect(svc.addr()).expect("connect");
    // 64 KiB of garbage against a 256-byte cap, then a valid request.
    let mut payload = vec![b'A'; 64 * 1024];
    payload.push(b'\n');
    payload.extend_from_slice(b"PING\n");
    stream.write_all(&payload).expect("write");
    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).expect("read");
    assert!(first.starts_with("ERR line-too-long"), "{first}");
    let mut second = String::new();
    reader.read_line(&mut second).expect("read");
    assert_eq!(second, "OK pong\n");
    let snap = svc.shutdown();
    assert_eq!(snap.oversized_lines, 1);
}

#[test]
fn tcp_slowloris_is_disconnected_while_service_stays_responsive() {
    let svc = TcpService::bind(cfg(), "127.0.0.1:0").expect("bind");
    // The slowloris: opens a connection, sends a partial line, stalls.
    let mut loris = TcpStream::connect(svc.addr()).expect("connect");
    loris.write_all(b"ADVISE 96 24").expect("dribble");
    // Meanwhile real traffic flows.
    let replies = send_lines(svc.addr(), "PING\n");
    assert_eq!(replies, ["OK pong"]);
    // The stalled connection is closed within (roughly) the read
    // timeout: the next read observes the ERR read-timeout line and EOF.
    loris.set_read_timeout(Some(Duration::from_millis(2000))).expect("timeout");
    let mut reader = BufReader::new(loris);
    let mut tail = String::new();
    let mut got_eof = false;
    let start = Instant::now();
    while start.elapsed() < Duration::from_secs(3) {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => {
                got_eof = true;
                break;
            }
            Ok(_) => tail.push_str(&line),
            Err(_) => break,
        }
    }
    assert!(got_eof, "slowloris connection must be closed, read: {tail:?}");
    assert!(tail.contains("ERR read-timeout"), "stall must be answered before close: {tail:?}");
    let snap = svc.shutdown();
    assert!(snap.read_timeouts >= 1, "stall must be counted: {snap:?}");
}

#[test]
fn stats_totals_reconcile_after_drain() {
    let server = Server::start(ServeConfig { queue_depth: 64, ..cfg() });
    assert_eq!(server.engine().stats().snapshot().received, 0);
    let mixed: &[&[u8]] = &[
        b"PING",
        b"ADVISE 96 24 6 36 inf",
        b"ADVISE 96 24 6 36 inf",
        b"ADVISE 0 0 0 0 nan",
        b"NOT-A-VERB",
        b"__PANIC kaboom",
    ];
    for line in mixed {
        let resp = server.submit(line.to_vec());
        // Direct submits bypass the transport counters; tally by hand
        // the way a transport would.
        pmm_serve::Stats::bump(&server.engine().stats().received);
        server.engine().stats().count_response(&resp);
    }
    server.shutdown();
    let snap = server.engine().stats().snapshot();
    assert_eq!(snap.received, 6);
    assert_eq!(
        snap.received,
        snap.ok + snap.errors + snap.shed + snap.timeouts,
        "every received line got exactly one response: {snap:?}"
    );
    assert_eq!(snap.ok, 3);
    assert_eq!(snap.errors, 3);
    assert_eq!(snap.panics, 1);
    assert_eq!(snap.cache_hits, 1);
    assert_eq!(snap.cache_misses, 1);
}
