//! Memoization correctness: cache hits must be *bitwise identical* to
//! cold computation in all three Theorem 3 regimes and on both regime
//! boundaries, and the cache key must respect the case classification —
//! no false sharing between cases, memory budgets, or machine models.
//!
//! The probe dims are `(96, 24, 6)`: sorted they give the thresholds
//! `m/n = 4` (1D/2D boundary) and `mn/k² = 64` (2D/3D boundary), so the
//! five processor counts below cover 1D, the 1D/2D boundary, 2D, the
//! 2D/3D boundary, and 3D.

use std::sync::Mutex;

use pmm_core::advisor::{try_recommend, Recommendation};
use pmm_model::{Case, MachineParams, MatMulDims};
use pmm_serve::cache::{cached_recommend, CacheKey, CacheOutcome, RecCache};

const DIMS: (u64, u64, u64) = (96, 24, 6);

/// `(P, expected regime)` spanning all three cases and both boundaries
/// (`classify` uses `<=`, so a boundary P lands in the sparser regime).
const REGIME_PROBES: [(u64, Case); 5] = [
    (2, Case::OneD),
    (4, Case::OneD), // P = m/n exactly: 1D/2D boundary
    (36, Case::TwoD),
    (64, Case::TwoD), // P = mn/k² exactly: 2D/3D boundary
    (512, Case::ThreeD),
];

/// Equality down to the bit pattern of every float — `==` on `f64`
/// would also accept `-0.0 == 0.0`, which is not "the cached bytes".
fn assert_bitwise_identical(cold: &[Recommendation], hot: &[Recommendation]) {
    assert_eq!(cold.len(), hot.len(), "ranking lengths differ");
    for (c, h) in cold.iter().zip(hot) {
        assert_eq!(c.strategy, h.strategy);
        assert_eq!(c.time.to_bits(), h.time.to_bits(), "time differs for {:?}", c.strategy);
        assert_eq!(c.cost.words.to_bits(), h.cost.words.to_bits());
        assert_eq!(c.cost.messages.to_bits(), h.cost.messages.to_bits());
        assert_eq!(c.cost.flops.to_bits(), h.cost.flops.to_bits());
        assert_eq!(c.memory_words.to_bits(), h.memory_words.to_bits());
    }
}

#[test]
fn probes_cover_all_three_regimes_and_both_boundaries() {
    let (n1, n2, n3) = DIMS;
    let sorted = MatMulDims::new(n1, n2, n3).sorted();
    for (p, case) in REGIME_PROBES {
        assert_eq!(sorted.classify(p as f64), case, "P={p} classified wrong");
    }
    // All three regimes are actually present in the probe set.
    for case in [Case::OneD, Case::TwoD, Case::ThreeD] {
        assert!(REGIME_PROBES.iter().any(|&(_, c)| c == case), "{case:?} not probed");
    }
}

#[test]
fn hits_are_bitwise_identical_to_cold_computation_in_every_regime() {
    let (n1, n2, n3) = DIMS;
    let cache = Mutex::new(RecCache::new(64));
    for (p, _) in REGIME_PROBES {
        let cold = try_recommend(n1, n2, n3, p, f64::INFINITY, MachineParams::TYPICAL_CLUSTER)
            .expect("probe query is feasible");
        let (warm, o1) =
            cached_recommend(&cache, n1, n2, n3, p, f64::INFINITY, MachineParams::TYPICAL_CLUSTER);
        assert_eq!(o1, CacheOutcome::Miss, "first query for P={p} must compute");
        let (hot, o2) =
            cached_recommend(&cache, n1, n2, n3, p, f64::INFINITY, MachineParams::TYPICAL_CLUSTER);
        assert_eq!(o2, CacheOutcome::Hit, "second query for P={p} must hit");
        assert_bitwise_identical(&cold, &warm.expect("warm"));
        assert_bitwise_identical(&cold, &hot.expect("hot"));
    }
}

#[test]
fn hits_are_bitwise_identical_under_finite_memory_budgets() {
    let (n1, n2, n3) = DIMS;
    let cache = Mutex::new(RecCache::new(64));
    for (p, _) in REGIME_PROBES {
        // A finite budget comfortably above the §6.2 floor, so the
        // memory constraint actually participates in the ranking.
        let m = 4.0 * (n1 * n2 + n1 * n3 + n2 * n3) as f64 / p as f64;
        let cold = try_recommend(n1, n2, n3, p, m, MachineParams::TYPICAL_CLUSTER)
            .expect("budgeted probe is feasible");
        let (_, o1) = cached_recommend(&cache, n1, n2, n3, p, m, MachineParams::TYPICAL_CLUSTER);
        assert_eq!(o1, CacheOutcome::Miss);
        let (hot, o2) = cached_recommend(&cache, n1, n2, n3, p, m, MachineParams::TYPICAL_CLUSTER);
        assert_eq!(o2, CacheOutcome::Hit);
        assert_bitwise_identical(&cold, &hot.expect("hot"));
    }
}

#[test]
fn cache_key_has_no_false_sharing_between_cases() {
    let (n1, n2, n3) = DIMS;
    let keys: Vec<CacheKey> = REGIME_PROBES
        .iter()
        .map(|&(p, case)| {
            let key =
                CacheKey::try_new(n1, n2, n3, p, f64::INFINITY, MachineParams::TYPICAL_CLUSTER)
                    .expect("probe key");
            assert_eq!(key.case, case, "key must embed the P={p} classification");
            key
        })
        .collect();
    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            assert_ne!(keys[i], keys[j], "distinct probes must have distinct keys");
        }
    }
    // Populate all five and read each back: every probe gets *its own*
    // ranking, not a neighbor's from another regime.
    let cache = Mutex::new(RecCache::new(64));
    let mut rankings = Vec::new();
    for (p, _) in REGIME_PROBES {
        let (r, _) =
            cached_recommend(&cache, n1, n2, n3, p, f64::INFINITY, MachineParams::TYPICAL_CLUSTER);
        rankings.push(r.expect("probe"));
    }
    for ((p, _), expected) in REGIME_PROBES.iter().zip(&rankings) {
        let (r, o) =
            cached_recommend(&cache, n1, n2, n3, *p, f64::INFINITY, MachineParams::TYPICAL_CLUSTER);
        assert_eq!(o, CacheOutcome::Hit);
        assert_bitwise_identical(expected, &r.expect("hit"));
    }
}

#[test]
fn cache_key_separates_memory_budgets_and_machines() {
    let (n1, n2, n3) = DIMS;
    let p = 36;
    let inf = CacheKey::try_new(n1, n2, n3, p, f64::INFINITY, MachineParams::TYPICAL_CLUSTER)
        .expect("key");
    let tight =
        CacheKey::try_new(n1, n2, n3, p, 1.0e4, MachineParams::TYPICAL_CLUSTER).expect("key");
    let bw = CacheKey::try_new(n1, n2, n3, p, f64::INFINITY, MachineParams::BANDWIDTH_ONLY)
        .expect("key");
    assert_ne!(inf, tight, "memory budget must be part of the key");
    assert_ne!(inf, bw, "machine model must be part of the key");
    // Same classification, still distinct entries.
    assert_eq!(inf.case, tight.case);
    assert_eq!(inf.case, bw.case);
}
