//! Proptest fuzz of the line protocol: arbitrary byte sequences —
//! including embedded NUL, invalid UTF-8, overlong tokens, and truncated
//! lines — never panic the parser or the engine, and every request line
//! yields exactly one well-formed response line.

use proptest::collection::vec;
use proptest::prelude::*;

use pmm_serve::{oneshot, parse_request, Engine, ServeConfig};

/// A full-range byte (the shim has no inclusive ranges, so `0u8..=255`
/// is spelled as a widened half-open range).
fn any_byte() -> impl Strategy<Value = u8> {
    (0u16..256).prop_map(|b| b as u8)
}

/// Token-soup lines: protocol-adjacent fragments that reach the deeper
/// parse paths (argument counts, number parsing, chaos gating) far more
/// often than uniform bytes do.
fn token_soup() -> impl Strategy<Value = Vec<u8>> {
    let token = (0usize..16).prop_map(|i| {
        [
            "ADVISE",
            "STATS",
            "PING",
            "__PANIC",
            "__SLEEP",
            "inf",
            "nan",
            "-1",
            "0",
            "1",
            "96",
            "24",
            "1e300",
            "18446744073709551616",
            "x",
            "\u{fffd}",
        ][i]
    });
    vec(token, 0..10).prop_map(|toks| toks.join(" ").into_bytes())
}

/// Check the one-request/one-response contract on a rendered line.
fn assert_single_well_formed_line(line: &str, statuses: &[&str]) {
    assert!(line.ends_with('\n'), "unterminated response: {line:?}");
    assert_eq!(line.matches('\n').count(), 1, "multi-line response: {line:?}");
    assert!(!line.contains('\r') && !line.contains('\0'), "unsanitized response: {line:?}");
    let first = line.split_whitespace().next().unwrap_or("");
    assert!(statuses.contains(&first), "unknown status in {line:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_is_total_on_arbitrary_bytes(line in vec(any_byte(), 0..256), chaos in 0u8..2) {
        // Totality: `parse_request` returns, it never panics — reaching
        // the assertion below is the property.
        let parsed = parse_request(&line, chaos == 1);
        if let Err(e) = parsed {
            prop_assert!(!e.detail.is_empty(), "typed errors carry detail");
        }
    }

    #[test]
    fn engine_answers_arbitrary_bytes_with_one_well_formed_line(
        line in vec(any_byte(), 0..256),
    ) {
        let engine = Engine::new(ServeConfig::default());
        let rendered = engine.handle(&line).render();
        // Chaos verbs are off by default, so the engine is panic-free and
        // only OK/ERR can come back at this layer.
        assert_single_well_formed_line(&rendered, &["OK", "ERR"]);
    }

    #[test]
    fn engine_answers_token_soup_with_one_well_formed_line(line in token_soup()) {
        let engine = Engine::new(ServeConfig::default());
        let rendered = engine.handle(&line).render();
        assert_single_well_formed_line(&rendered, &["OK", "ERR"]);
    }

    #[test]
    fn truncated_valid_requests_get_typed_errors(cut in 0usize..22, chaos in 0u8..2) {
        // Every prefix of a valid request is still answered, not panicked
        // on: shorter prefixes hit Empty/UnknownVerb, longer ones Parse.
        let full = b"ADVISE 96 24 6 36 inf";
        let parsed = parse_request(&full[..cut.min(full.len())], chaos == 1);
        if cut < full.len() {
            prop_assert!(parsed.is_err(), "truncated line must not parse: cut={cut}");
        } else {
            prop_assert!(parsed.is_ok());
        }
    }

    #[test]
    fn oneshot_is_panic_free_and_exit_code_matches_status(
        line in vec(any_byte(), 0..128),
    ) {
        let mut input = std::io::Cursor::new(line);
        let (rendered, code) = oneshot(ServeConfig::default(), &mut input);
        assert_single_well_formed_line(&rendered, &["OK", "ERR"]);
        prop_assert_eq!(code == 0, rendered.starts_with("OK"), "{}", rendered);
    }
}
