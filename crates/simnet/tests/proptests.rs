//! Property-based tests for the simulator core: random point-to-point
//! schedules are delivered correctly, meters conserve words, clocks are
//! deterministic, and splits compose under arbitrary colorings.

use pmm_simnet::{MachineParams, World};
use proptest::prelude::*;

/// A random schedule: for each (round, sender) a target and a payload
/// size. Every rank executes the same schedule so receives can be posted
/// deterministically.
#[derive(Debug, Clone)]
struct Schedule {
    p: usize,
    /// rounds × p entries: (target, words)
    rounds: Vec<Vec<(usize, usize)>>,
}

fn schedule() -> impl Strategy<Value = Schedule> {
    (2usize..7).prop_flat_map(|p| {
        let round = proptest::collection::vec((0usize..p, 0usize..16), p);
        proptest::collection::vec(round, 1..5).prop_map(move |rounds| Schedule { p, rounds })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_schedules_deliver_exactly(s in schedule()) {
        // Round r: every rank sends to its scheduled target (skipping
        // self-sends), then receives everything destined to it that round,
        // in sender order. Payload encodes (sender, round) so content is
        // verifiable.
        let p = s.p;
        let rounds = s.rounds.clone();
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let me = rank.world_rank();
            let mut received: Vec<(usize, usize, usize)> = Vec::new(); // (round, from, words)
            for (ri, round) in rounds.iter().enumerate() {
                let (target, words) = round[me];
                if target != me {
                    let payload: Vec<f64> =
                        std::iter::repeat_n((me * 1000 + ri) as f64, words).collect();
                    rank.send(&comm, target, &payload);
                }
                for (src, &(tgt, w)) in round.iter().enumerate() {
                    if src != me && tgt == me {
                        let m = rank.recv(&comm, src);
                        assert_eq!(m.payload.len(), w, "payload length");
                        if w > 0 {
                            assert_eq!(m.payload[0], (src * 1000 + ri) as f64, "payload tag");
                        }
                        received.push((ri, src, w));
                    }
                }
            }
            (received, rank.meter())
        });
        let results = out.values;

        // Conservation.
        let sent: u64 = results.iter().map(|(_, m)| m.words_sent).sum();
        let recv: u64 = results.iter().map(|(_, m)| m.words_recv).sum();
        prop_assert_eq!(sent, recv);

        // Expected per-rank receive sets match the schedule.
        for (me, result) in results.iter().enumerate() {
            let mut want: Vec<(usize, usize, usize)> = Vec::new();
            for (ri, round) in s.rounds.iter().enumerate() {
                for (src, &(tgt, w)) in round.iter().enumerate() {
                    if src != me && tgt == me {
                        want.push((ri, src, w));
                    }
                }
            }
            prop_assert_eq!(&result.0, &want, "rank {} receive log", me);
        }
    }

    #[test]
    fn clocks_are_deterministic_over_reruns(s in schedule()) {
        let run = |s: &Schedule| {
            let rounds = s.rounds.clone();
            let p = s.p;
            World::new(p, MachineParams::TYPICAL_CLUSTER)
                .run(move |rank| {
                    let comm = rank.world_comm();
                    let me = rank.world_rank();
                    for round in &rounds {
                        let (target, words) = round[me];
                        if target != me {
                            rank.send(&comm, target, &vec![0.0; words]);
                        }
                        for (src, &(tgt, _)) in round.iter().enumerate() {
                            if src != me && tgt == me {
                                rank.recv(&comm, src);
                            }
                        }
                    }
                    rank.time()
                })
                .values
        };
        let a = run(&s);
        let b = run(&s);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn arbitrary_colorings_split_consistently(
        p in 2usize..8,
        colors in proptest::collection::vec(0i64..4, 8),
    ) {
        let colors = colors[..p].to_vec();
        let colors2 = colors.clone();
        let out = World::new(p, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let comm = rank.world_comm();
            let me = rank.world_rank();
            let sub = rank.split(&comm, colors2[me], me as i64).unwrap();
            (sub.size(), sub.index(), sub.members().to_vec())
        });
        for me in 0..p {
            let group: Vec<usize> =
                (0..p).filter(|&r| colors[r] == colors[me]).collect();
            let (size, index, members) = &out.values[me];
            prop_assert_eq!(*size, group.len());
            prop_assert_eq!(&members[..], &group[..], "rank {} group", me);
            prop_assert_eq!(group[*index], me);
        }
    }

    #[test]
    fn memory_meter_is_exact_under_random_programs(
        ops in proptest::collection::vec((0usize..2, 1u64..100), 1..30)
    ) {
        // Replay acquire/release ops; peak must equal the running max.
        let ops2 = ops.clone();
        let out = World::new(1, MachineParams::BANDWIDTH_ONLY).run(move |rank| {
            let mut cur = 0u64;
            let mut peak = 0u64;
            let mut held = Vec::new();
            for &(kind, w) in &ops2 {
                if kind == 0 {
                    rank.mem_acquire(w);
                    held.push(w);
                    cur += w;
                    peak = peak.max(cur);
                } else if let Some(w) = held.pop() {
                    rank.mem_release(w);
                    cur -= w;
                }
            }
            (rank.mem().peak(), peak, rank.mem().current(), cur)
        });
        let (got_peak, want_peak, got_cur, want_cur) = out.values[0];
        prop_assert_eq!(got_peak, want_peak);
        prop_assert_eq!(got_cur, want_cur);
    }
}
