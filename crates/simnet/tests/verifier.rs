//! Integration tests for the communication-correctness verifier: the
//! deadlock watchdog, the collective-matching lint, and strict-drain
//! checks, exercised through the public `World` API exactly as user
//! programs hit them.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use pmm_simnet::{CollectiveOp, MachineParams, World};

/// Extract the panic message from a `catch_unwind` payload.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("panic payload is not a string");
    }
}

const WATCHDOG: Duration = Duration::from_millis(50);

#[test]
fn circular_recv_terminates_with_cycle_report() {
    // Every rank receives from its right neighbor before anyone sends:
    // a 3-cycle in the wait-for graph. Under MPI this hangs forever; the
    // watchdog must abort with a report naming the cycle.
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        World::new(3, MachineParams::BANDWIDTH_ONLY).with_watchdog(WATCHDOG).run(|rank| {
            let wc = rank.world_comm();
            let from = (rank.world_rank() + 1) % 3;
            rank.recv(&wc, from);
        });
    }));
    let report = panic_text(result.expect_err("a circular wait must abort the world"));
    assert!(report.contains("deadlock detected"), "missing headline: {report}");
    assert!(report.contains("wait-for cycle"), "missing cycle: {report}");
    assert!(report.contains("recv"), "missing op kind: {report}");
    for r in 0..3 {
        assert!(report.contains(&format!("rank {r}")), "missing rank {r}: {report}");
    }
    // "Terminates within the watchdog window": a couple of scan periods,
    // not the multi-second hang a wedged test would produce.
    assert!(start.elapsed() < Duration::from_secs(10), "took {:?}", start.elapsed());
}

#[test]
fn recv_from_finished_rank_is_reported() {
    // Rank 0 exits without sending; rank 1 waits for it forever. Not a
    // cycle — a wait on a rank that can no longer act — but just as dead.
    let result = catch_unwind(AssertUnwindSafe(|| {
        World::new(2, MachineParams::BANDWIDTH_ONLY).with_watchdog(WATCHDOG).run(|rank| {
            let wc = rank.world_comm();
            if rank.world_rank() == 1 {
                rank.recv(&wc, 0);
            }
        });
    }));
    let report = panic_text(result.expect_err("waiting on a finished rank must abort"));
    assert!(report.contains("deadlock detected"), "missing headline: {report}");
    assert!(report.contains("rank 1"), "missing blocked rank: {report}");
}

#[test]
fn mismatched_collective_op_aborts_with_diff() {
    // Rank 0 enters an all-gather while everyone else enters a split on
    // the same communicator: the matching lint must flag the round
    // without waiting for the resulting hang to mature.
    let result = catch_unwind(AssertUnwindSafe(|| {
        World::new(4, MachineParams::BANDWIDTH_ONLY).with_watchdog(WATCHDOG).run(|rank| {
            let wc = rank.world_comm();
            if rank.world_rank() == 0 {
                rank.collective_begin(&wc, CollectiveOp::AllGather, 8);
            } else {
                rank.split(&wc, 0, 0);
            }
        });
    }));
    let report = panic_text(result.expect_err("a mismatched collective must abort"));
    assert!(report.contains("collective mismatch"), "missing headline: {report}");
    assert!(report.contains("all_gather"), "missing first op: {report}");
    assert!(report.contains("split"), "missing second op: {report}");
}

#[test]
fn uniform_count_skew_aborts_with_diff() {
    // Same op everywhere, but one rank disagrees on the element count of
    // a count-uniform collective (all-reduce).
    let result = catch_unwind(AssertUnwindSafe(|| {
        World::new(3, MachineParams::BANDWIDTH_ONLY).with_watchdog(WATCHDOG).run(|rank| {
            let wc = rank.world_comm();
            let elems = if rank.world_rank() == 2 { 7 } else { 64 };
            rank.collective_begin(&wc, CollectiveOp::AllReduce, elems);
        });
    }));
    let report = panic_text(result.expect_err("skewed counts must abort"));
    assert!(report.contains("collective mismatch"), "missing headline: {report}");
    assert!(report.contains("64"), "missing majority count: {report}");
    assert!(report.contains("7"), "missing skewed count: {report}");
}

#[test]
fn strict_drain_flags_unreceived_traffic() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        World::new(2, MachineParams::BANDWIDTH_ONLY).with_strict_drain(true).run(|rank| {
            let wc = rank.world_comm();
            if rank.world_rank() == 0 {
                rank.send(&wc, 1, &[1.0, 2.0]);
            }
        });
    }));
    let report = panic_text(result.expect_err("strict drain must flag the lost message"));
    assert!(report.contains("undrained"), "missing drain report: {report}");
}

#[test]
fn matching_program_runs_clean_under_full_verification() {
    // The flip side: a correct program must pass with the watchdog AND
    // strict drain on — no false positives from the verifier.
    let out = World::new(4, MachineParams::BANDWIDTH_ONLY)
        .with_watchdog(WATCHDOG)
        .with_strict_drain(true)
        .run(|rank| {
            let wc = rank.world_comm();
            rank.collective_begin(&wc, CollectiveOp::AllReduce, 4);
            let partner = rank.world_rank() ^ 1;
            let msg = rank.exchange(&wc, partner, partner, &[rank.world_rank() as f64]);
            rank.hard_sync();
            msg.payload[0]
        });
    for (r, v) in out.values.iter().enumerate() {
        assert_eq!(*v, (r ^ 1) as f64);
    }
}

mod split_subcomms_with_faults {
    //! The collective-matching lint must keep working inside split
    //! sub-communicators while message faults are armed — i.e. while the
    //! reliable-delivery layer's retransmissions interleave with
    //! `Comm::split` rendezvous and sub-communicator traffic.

    use super::*;
    use pmm_simnet::FaultPlan;

    /// Drop/duplicate plan aggressive enough to force retries into the
    /// middle of the split + subcomm phases.
    fn faults() -> FaultPlan {
        FaultPlan::none().with_seed(0xFA17).with_drop(0.25).with_duplicate(0.15)
    }

    /// Shared program shape: split the world into evens/odds, ring-shift
    /// inside the subcomm (generating retried traffic), then register an
    /// all-reduce on the subcomm. `skewed_elems` makes world rank 3
    /// disagree on the element count inside its subcomm.
    fn run(skewed_elems: bool) -> Result<f64, String> {
        let result = catch_unwind(AssertUnwindSafe(move || {
            World::new(4, MachineParams::BANDWIDTH_ONLY)
                .with_watchdog(WATCHDOG)
                .with_seed(0xC0DE)
                .with_faults(faults())
                .run(move |rank| {
                    let wc = rank.world_comm();
                    let me = rank.world_rank();
                    let sub = rank
                        .split(&wc, (me % 2) as i64, me as i64)
                        .expect("non-negative colors always yield a subcomm");
                    // Subcomm traffic under faults: dropped messages are
                    // retransmitted, interleaving with the collective
                    // registrations below.
                    let peer = 1 - sub.index();
                    let got = rank.exchange(&sub, peer, peer, &[me as f64; 8]).payload[0];
                    let elems = if skewed_elems && me == 3 { 7 } else { 64 };
                    rank.collective_begin(&sub, CollectiveOp::AllReduce, elems);
                    rank.hard_sync();
                    got
                })
        }));
        match result {
            Ok(out) => Ok(out.values.iter().sum()),
            Err(payload) => Err(panic_text(payload)),
        }
    }

    #[test]
    fn mismatch_in_a_subcomm_is_flagged_with_faults_armed() {
        let report = run(true).expect_err("skewed subcomm counts must abort");
        assert!(report.contains("collective mismatch"), "missing headline: {report}");
        assert!(report.contains("64"), "missing majority count: {report}");
        assert!(report.contains("7"), "missing skewed count: {report}");
        // The repro hint must name the deterministic schedule.
        assert!(report.contains("PMM_SEED="), "missing seed repro: {report}");
    }

    #[test]
    fn matching_subcomm_collectives_run_clean_with_faults_armed() {
        // The valid twin: identical split + retried traffic + subcomm
        // registrations, but every member agrees — no false positive
        // from retransmissions crossing the split rendezvous.
        let sum = run(false).expect("matching subcomm collectives must pass");
        assert_eq!(sum, 0.0 + 1.0 + 2.0 + 3.0, "ring exchange payloads survived the faults");
    }
}

mod split_order {
    use super::*;
    use proptest::prelude::*;

    /// One rank issues its world-communicator collectives in a different
    /// order (split first vs. barrier-style registration first). Detection
    /// must not depend on thread scheduling: registration happens
    /// synchronously on entry, so whichever side reaches the skewed round
    /// first, the round holds conflicting descriptors and the lint fires.
    fn run_skewed(p: usize, skew: usize) -> String {
        let result = catch_unwind(AssertUnwindSafe(move || {
            World::new(p, MachineParams::BANDWIDTH_ONLY).with_watchdog(WATCHDOG).run(move |rank| {
                let wc = rank.world_comm();
                if rank.world_rank() == skew {
                    // Skewed issue order: the collective that the rest
                    // of the world issues *second* comes first here, so
                    // this rank's split_seq for the split is 1, not 0.
                    rank.collective_begin(&wc, CollectiveOp::Barrier, 0);
                    rank.split(&wc, 0, 0);
                } else {
                    rank.split(&wc, 0, 0);
                    rank.collective_begin(&wc, CollectiveOp::Barrier, 0);
                }
            });
        }));
        panic_text(result.expect_err("skewed split order must abort"))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn skewed_split_seq_is_flagged_deterministically(p in 2usize..6, skew_raw in 0usize..6) {
            let skew = skew_raw % p;
            let report = run_skewed(p, skew);
            // Same detection on every run regardless of interleaving:
            // round 0 mixes a split with a barrier registration.
            prop_assert!(report.contains("collective mismatch"), "{}", report);
            prop_assert!(report.contains("split"), "{}", report);
            prop_assert!(report.contains("barrier"), "{}", report);
        }
    }
}
