//! Structured per-rank event tracing and per-phase cost attribution.
//!
//! When a [`World`](crate::World) is built with
//! [`with_trace(true)`](crate::World::with_trace), every communication
//! operation, compute call, collective entry, and algorithm phase scope
//! emits a [`TraceEvent`] carrying the payload words, the retransmission
//! overhead words, and the logical-clock interval `[t0, t1]` the
//! operation occupied on its rank. The per-world [`Tracer`] collects the
//! per-rank streams and builds three artifacts on top:
//!
//! * [`Tracer::phase_totals`] — per-phase, per-rank goodput word counts
//!   (the quantity eq. (3) of the paper predicts phase by phase);
//! * [`Tracer::critical_path`] — a backward walk over the dependency
//!   chain that realized the final clock, attributing every word of the
//!   longest chain to the phase that spent it;
//! * [`Tracer::chrome_json`] / [`Tracer::render_text`] — a Chrome
//!   `trace_event` JSON export loadable in `chrome://tracing` / Perfetto,
//!   and a compact text rendering for CI logs.
//!
//! Tracing is zero-cost when disabled (every emission site is gated on
//! the per-rank trace buffer existing, and never touches meters or
//! clocks) and deterministic under a seeded scheduler: the event streams
//! and their timestamps are part of the golden replay artifact.
//!
//! ```
//! use pmm_model::MachineParams;
//! use pmm_simnet::{Tracer, World};
//!
//! // Rank 0 streams 4 words to rank 1 inside a labelled phase.
//! let out = World::new(2, MachineParams::BANDWIDTH_ONLY).with_trace(true).run(|rank| {
//!     let wc = rank.world_comm();
//!     rank.phase_begin("exchange");
//!     if rank.world_rank() == 0 {
//!         rank.send(&wc, 1, &[1.0; 4]);
//!     } else {
//!         rank.recv(&wc, 0);
//!     }
//!     rank.phase_end("exchange");
//! });
//! let tracer = Tracer::from_streams(
//!     out.reports.iter().map(|r| r.trace.clone().unwrap()).collect(),
//! );
//! let phases = tracer.phase_totals();
//! assert_eq!(phases[0].label, "exchange");
//! assert_eq!(phases[0].sent[0], 4);
//! assert_eq!(phases[0].recv[1], 4);
//! // The longest dependency chain is the one 4-word transfer.
//! assert_eq!(tracer.critical_path().total, 4.0);
//! ```

use std::collections::HashMap;
use std::fmt::{self, Write as _};

use crate::fabric::Ctx;
use crate::verify::CollectiveOp;

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// A send; `to_world` is the receiver's world rank.
    Send {
        /// Receiver's world rank.
        to_world: usize,
    },
    /// A receive (blocking, duplex, or redeemed nonblocking); `from_world`
    /// is the sender's world rank.
    Recv {
        /// Sender's world rank.
        from_world: usize,
    },
    /// Local computation accounted via [`Rank::compute`](crate::Rank::compute).
    Compute {
        /// Scalar operations accounted.
        flops: f64,
    },
    /// Entry into a collective (emitted by
    /// [`Rank::collective_begin`](crate::Rank::collective_begin), which every
    /// `pmm-collectives` entry point calls).
    Collective {
        /// The collective kind.
        op: CollectiveOp,
        /// Element count registered with the matching lint.
        elems: u64,
    },
    /// Opening of a named phase scope (see
    /// [`Rank::phase_begin`](crate::Rank::phase_begin) and the
    /// [`phase!`](crate::phase) macro).
    PhaseBegin {
        /// The phase label.
        label: &'static str,
    },
    /// Closing of a named phase scope.
    PhaseEnd {
        /// The phase label (must match the open scope).
        label: &'static str,
    },
    /// A caller-placed marker with no cost (see [`Rank::mark`](crate::Rank::mark)).
    Mark(String),
}

/// One entry of a rank's structured trace: the operation, the
/// communicator context it ran on, its payload and retransmission-overhead
/// word counts, and the logical-clock interval it occupied.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Communicator context the operation ran on (`0` = world; phase and
    /// mark events use the world context).
    pub ctx: Ctx,
    /// The operation.
    pub op: TraceOp,
    /// Goodput payload words moved by this operation (0 for non-message
    /// events).
    pub words: u64,
    /// Retransmission-overhead words charged to this operation by the
    /// reliable-delivery layer (0 without a fault plan).
    pub retry_words: u64,
    /// Rank-local clock when the operation started.
    pub t0: f64,
    /// Rank-local clock when the operation finished (`t0 == t1` for
    /// instantaneous events: collectives entries, marks, phase edges).
    pub t1: f64,
}

/// Per-phase goodput totals extracted from a trace: for one phase label,
/// the words each rank sent and received while that phase was open.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTotals {
    /// The phase label (innermost open scope wins for nested phases).
    pub label: String,
    /// Words sent per world rank inside this phase.
    pub sent: Vec<u64>,
    /// Words received per world rank inside this phase.
    pub recv: Vec<u64>,
}

impl PhaseTotals {
    /// Duplex words of rank `r` in this phase: `max(sent, recv)` — the
    /// bandwidth term a full-duplex link pays, and what eq. (3) predicts.
    pub fn duplex(&self, r: usize) -> u64 {
        self.sent[r].max(self.recv[r])
    }

    /// Maximum duplex words over all ranks (the per-processor cost a
    /// balanced phase charges every rank equally).
    pub fn max_duplex(&self) -> u64 {
        (0..self.sent.len()).map(|r| self.duplex(r)).max().unwrap_or(0)
    }
}

/// Result of the critical-path walk: the longest dependency chain that
/// realized the final clock, attributed per phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Total cost of the chain — equals the world's final
    /// critical-path clock ([`WorldResult::critical_path_time`]) on a
    /// fault-free traced run.
    ///
    /// [`WorldResult::critical_path_time`]: crate::WorldResult::critical_path_time
    pub total: f64,
    /// World rank whose clock finished last (where the walk starts).
    pub end_rank: usize,
    /// Cost attributed to each phase, in execution order. Cost spent
    /// outside any phase scope lands under the label `"(unphased)"`.
    pub per_phase: Vec<(String, f64)>,
    /// Number of cross-rank hops the chain took (each hop follows a
    /// message from its receive back to its send).
    pub hops: usize,
}

impl CriticalPath {
    /// Cost attributed to `label`, or 0 if the phase never appears on the
    /// chain.
    pub fn phase_cost(&self, label: &str) -> f64 {
        self.per_phase.iter().find(|(l, _)| l == label).map_or(0.0, |(_, c)| *c)
    }
}

/// One row of a per-phase [`Attribution`] report.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDiff {
    /// The phase label.
    pub label: String,
    /// Words per rank the model predicts for this phase.
    pub predicted: f64,
    /// Maximum measured duplex words over all ranks.
    pub measured_max: u64,
    /// Number of ranks whose measured duplex words differ from the
    /// prediction.
    pub ranks_diverging: usize,
}

impl PhaseDiff {
    /// Whether any rank diverged from the prediction in this phase.
    pub fn diverges(&self) -> bool {
        self.ranks_diverging > 0
    }
}

/// A per-phase diff of measured goodput against a model prediction (see
/// [`Tracer::attribution`]). [`Display`](fmt::Display) renders the table
/// and names the first divergent phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// One row per predicted phase, in the order given.
    pub rows: Vec<PhaseDiff>,
    /// Label of the first phase where any rank's measurement differs from
    /// the prediction, or `None` when every phase matches exactly.
    pub first_divergent: Option<String>,
}

impl Attribution {
    /// Whether every phase of every rank matched the prediction exactly.
    pub fn matches(&self) -> bool {
        self.first_divergent.is_none()
    }
}

impl fmt::Display for Attribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let wid = self.rows.iter().map(|r| r.label.len()).max().unwrap_or(5).max(5);
        writeln!(f, "{:wid$}  {:>14}  {:>14}  verdict", "phase", "predicted", "measured")?;
        for row in &self.rows {
            let verdict = if row.diverges() {
                format!("DIVERGES ({} rank(s))", row.ranks_diverging)
            } else {
                "exact".to_string()
            };
            writeln!(
                f,
                "{:wid$}  {:>14}  {:>14}  {verdict}",
                row.label, row.predicted, row.measured_max
            )?;
        }
        match &self.first_divergent {
            Some(label) => write!(f, "first divergent phase: {label}"),
            None => write!(f, "all phases match the prediction exactly"),
        }
    }
}

/// The per-world trace: one [`TraceEvent`] stream per rank, indexed by
/// world rank, plus the analyses built on top (see the module docs).
#[derive(Debug, Clone)]
pub struct Tracer {
    streams: Vec<Vec<TraceEvent>>,
}

impl Tracer {
    /// Build a tracer from per-rank event streams (index = world rank).
    /// [`WorldResult::tracer`](crate::WorldResult::tracer) does this for a
    /// finished traced run.
    pub fn from_streams(streams: Vec<Vec<TraceEvent>>) -> Tracer {
        Tracer { streams }
    }

    /// Number of ranks in the traced world.
    pub fn ranks(&self) -> usize {
        self.streams.len()
    }

    /// The event stream of world rank `r`.
    pub fn events(&self, r: usize) -> &[TraceEvent] {
        &self.streams[r]
    }

    /// Innermost open phase label for every event of every rank
    /// (`None` outside any scope).
    fn phase_labels(&self) -> Vec<Vec<Option<&'static str>>> {
        self.streams
            .iter()
            .map(|stream| {
                let mut stack: Vec<&'static str> = Vec::new();
                stream
                    .iter()
                    .map(|e| match e.op {
                        TraceOp::PhaseBegin { label } => {
                            stack.push(label);
                            Some(label)
                        }
                        TraceOp::PhaseEnd { label } => {
                            let open = stack.pop();
                            assert_eq!(
                                open,
                                Some(label),
                                "phase scopes must nest (phase_end without matching begin)"
                            );
                            Some(label)
                        }
                        _ => stack.last().copied(),
                    })
                    .collect()
            })
            .collect()
    }

    /// Per-phase, per-rank goodput totals, with phases ordered by first
    /// appearance (scanning ranks in order). Repeated scopes with the same
    /// label (e.g. the per-slab gathers of the streamed variant)
    /// accumulate into one entry.
    pub fn phase_totals(&self) -> Vec<PhaseTotals> {
        let p = self.streams.len();
        let labels = self.phase_labels();
        let mut order: Vec<String> = Vec::new();
        let mut by_label: HashMap<String, PhaseTotals> = HashMap::new();
        for (r, stream) in self.streams.iter().enumerate() {
            for (i, e) in stream.iter().enumerate() {
                let Some(label) = labels[r][i] else { continue };
                let entry = by_label.entry(label.to_string()).or_insert_with(|| {
                    order.push(label.to_string());
                    PhaseTotals { label: label.to_string(), sent: vec![0; p], recv: vec![0; p] }
                });
                match e.op {
                    TraceOp::Send { .. } => entry.sent[r] += e.words,
                    TraceOp::Recv { .. } => entry.recv[r] += e.words,
                    _ => {}
                }
            }
        }
        order.into_iter().map(|l| by_label.remove(&l).expect("ordered label exists")).collect()
    }

    /// FIFO-match every receive event to its send event. Returns, per
    /// rank, per event index: `Some((sender_rank, send_event_index))` for
    /// matched receives, `None` otherwise. Matching is per channel
    /// `(ctx, sender_world, receiver_world)` — the fabric delivers each
    /// channel in FIFO order (asserted by the happens-before audit), so
    /// the k-th receive pairs with the k-th send.
    fn match_messages(&self) -> Vec<Vec<Option<(usize, usize)>>> {
        // channel -> ordered send sites
        let mut sends: HashMap<(Ctx, usize, usize), Vec<(usize, usize)>> = HashMap::new();
        for (r, stream) in self.streams.iter().enumerate() {
            for (i, e) in stream.iter().enumerate() {
                if let TraceOp::Send { to_world } = e.op {
                    sends.entry((e.ctx, r, to_world)).or_default().push((r, i));
                }
            }
        }
        let mut cursor: HashMap<(Ctx, usize, usize), usize> = HashMap::new();
        self.streams
            .iter()
            .enumerate()
            .map(|(r, stream)| {
                stream
                    .iter()
                    .map(|e| {
                        let TraceOp::Recv { from_world } = e.op else { return None };
                        let key = (e.ctx, from_world, r);
                        let k = cursor.entry(key).or_insert(0);
                        let site = sends.get(&key).and_then(|v| v.get(*k)).copied();
                        *k += 1;
                        site
                    })
                    .collect()
            })
            .collect()
    }

    /// Walk the longest dependency chain backward from the last-finishing
    /// rank and attribute its cost per phase.
    ///
    /// Each rank's clock already *is* the length of its longest dependency
    /// chain (every operation advances it by the α-β-γ rule from the later
    /// of its local and remote predecessors), so the walk is pure
    /// attribution: at each event the charge is
    /// `t1 − max(previous local t1, matched send t0)`, and the walk
    /// follows whichever predecessor was binding (ties prefer the local
    /// one, deterministically). The charges sum to exactly the final
    /// clock. On fault-injected runs retransmission timeouts shift send
    /// starts, so the attribution is exact only for fault-free runs —
    /// which is what the eq. (3) conformance gate runs.
    pub fn critical_path(&self) -> CriticalPath {
        let matches = self.match_messages();
        let labels = self.phase_labels();
        let (end_rank, mut t) = self
            .streams
            .iter()
            .enumerate()
            .map(|(r, s)| (r, s.last().map_or(0.0, |e| e.t1)))
            // max_by on (t1, rank): deterministic winner on clock ties.
            .max_by(|a, b| (a.1, a.0).partial_cmp(&(b.1, b.0)).expect("finite clocks"))
            .unwrap_or((0, 0.0));
        let total = t;
        let mut rank = end_rank;
        let mut idx = self.streams[rank].len() as isize - 1;
        let mut order: Vec<String> = Vec::new();
        let mut cost: HashMap<String, f64> = HashMap::new();
        let mut hops = 0usize;
        let mut charge = |label: Option<&'static str>, c: f64, order: &mut Vec<String>| {
            if c <= 0.0 {
                return;
            }
            let key = label.unwrap_or("(unphased)").to_string();
            if !cost.contains_key(&key) {
                order.push(key.clone());
            }
            *cost.entry(key).or_insert(0.0) += c;
        };
        while t > 0.0 && idx >= 0 {
            let i = idx as usize;
            let pred_local = if i > 0 { self.streams[rank][i - 1].t1 } else { 0.0 };
            let remote = matches[rank][i].map(|(sr, si)| (self.streams[sr][si].t0, sr, si));
            let pred_remote = remote.map_or(f64::NEG_INFINITY, |(t0, _, _)| t0);
            let pred = pred_local.max(pred_remote).max(0.0);
            charge(labels[rank][i], t - pred, &mut order);
            t = pred;
            match remote {
                Some((t0, sr, si)) if t0 > pred_local => {
                    // The message was the binding dependency: hop to the
                    // sender, resuming just before its send.
                    rank = sr;
                    idx = si as isize - 1;
                    hops += 1;
                }
                _ => idx -= 1,
            }
        }
        // Execution order = reverse of discovery order (the walk runs
        // backward in time).
        order.reverse();
        let per_phase = order.into_iter().map(|l| (l.clone(), cost[&l])).collect();
        CriticalPath { total, end_rank, per_phase, hops }
    }

    /// Diff measured per-phase goodput against a model prediction:
    /// `expected` lists `(phase label, predicted duplex words per rank)`
    /// pairs (e.g. zipped from
    /// `pmm_model::alg1_prediction(dims, grid).phases()`). A phase
    /// diverges if *any* rank's duplex words differ from the prediction;
    /// the report names the first divergent phase in the order given.
    pub fn attribution(&self, expected: &[(&str, f64)]) -> Attribution {
        let totals = self.phase_totals();
        let rows: Vec<PhaseDiff> = expected
            .iter()
            .map(|&(label, predicted)| {
                let found = totals.iter().find(|t| t.label == label);
                match found {
                    Some(t) => {
                        let ranks_diverging =
                            (0..t.sent.len()).filter(|&r| t.duplex(r) as f64 != predicted).count();
                        PhaseDiff {
                            label: label.to_string(),
                            predicted,
                            measured_max: t.max_duplex(),
                            ranks_diverging,
                        }
                    }
                    // A predicted phase that never ran diverges on every rank.
                    None => PhaseDiff {
                        label: label.to_string(),
                        predicted,
                        measured_max: 0,
                        ranks_diverging: self.streams.len(),
                    },
                }
            })
            .collect();
        let first_divergent = rows.iter().find(|r| r.diverges()).map(|r| r.label.clone());
        Attribution { rows, first_divergent }
    }

    /// Export the trace in Chrome `trace_event` JSON format — load the
    /// file in `chrome://tracing` or <https://ui.perfetto.dev>. One track
    /// (`tid`) per rank; phases render as nested duration slices,
    /// messages and compute as complete events, collectives and marks as
    /// instants. Timestamps are the simulator's logical clock (words at
    /// β = 1), passed through unscaled.
    ///
    /// The output is byte-deterministic for a given trace: floats render
    /// via Rust's shortest-round-trip `Display`, and events keep their
    /// per-rank order.
    pub fn chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for (r, stream) in self.streams.iter().enumerate() {
            for e in stream {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                self.chrome_event(&mut out, r, e);
            }
        }
        out.push_str("\n]}\n");
        out
    }

    fn chrome_event(&self, out: &mut String, rank: usize, e: &TraceEvent) {
        let common = |out: &mut String, ts: f64| {
            let _ = write!(out, "\"ts\":{ts},\"pid\":0,\"tid\":{rank}");
        };
        out.push('{');
        match &e.op {
            TraceOp::PhaseBegin { label } => {
                let _ = write!(out, "\"name\":{},\"cat\":\"phase\",\"ph\":\"B\",", json_str(label));
                common(out, e.t0);
            }
            TraceOp::PhaseEnd { label } => {
                let _ = write!(out, "\"name\":{},\"cat\":\"phase\",\"ph\":\"E\",", json_str(label));
                common(out, e.t1);
            }
            TraceOp::Send { to_world } => {
                let _ =
                    write!(out, "\"name\":\"send to {to_world}\",\"cat\":\"comm\",\"ph\":\"X\",");
                common(out, e.t0);
                let _ = write!(
                    out,
                    ",\"dur\":{},\"args\":{{\"ctx\":{},\"words\":{},\"retry_words\":{}}}",
                    e.t1 - e.t0,
                    e.ctx,
                    e.words,
                    e.retry_words
                );
            }
            TraceOp::Recv { from_world } => {
                let _ = write!(
                    out,
                    "\"name\":\"recv from {from_world}\",\"cat\":\"comm\",\"ph\":\"X\","
                );
                common(out, e.t0);
                let _ = write!(
                    out,
                    ",\"dur\":{},\"args\":{{\"ctx\":{},\"words\":{},\"retry_words\":{}}}",
                    e.t1 - e.t0,
                    e.ctx,
                    e.words,
                    e.retry_words
                );
            }
            TraceOp::Compute { flops } => {
                let _ = write!(out, "\"name\":\"compute\",\"cat\":\"compute\",\"ph\":\"X\",");
                common(out, e.t0);
                let _ = write!(out, ",\"dur\":{},\"args\":{{\"flops\":{flops}}}", e.t1 - e.t0);
            }
            TraceOp::Collective { op, elems } => {
                let _ = write!(
                    out,
                    "\"name\":\"{op}\",\"cat\":\"collective\",\"ph\":\"i\",\"s\":\"t\","
                );
                common(out, e.t0);
                let _ = write!(out, ",\"args\":{{\"ctx\":{},\"elems\":{elems}}}", e.ctx);
            }
            TraceOp::Mark(label) => {
                let _ = write!(
                    out,
                    "\"name\":{},\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"t\",",
                    json_str(label)
                );
                common(out, e.t0);
            }
        }
        out.push('}');
    }

    /// Compact text rendering for CI logs: per-phase word totals and the
    /// critical-path attribution, one line each.
    pub fn render_text(&self) -> String {
        let totals = self.phase_totals();
        let cp = self.critical_path();
        let mut out = String::new();
        let _ = writeln!(out, "# trace: {} rank(s), {} phase(s)", self.ranks(), totals.len());
        let wid = totals.iter().map(|t| t.label.len()).max().unwrap_or(5).max(5);
        let _ = writeln!(
            out,
            "{:wid$}  {:>16}  {:>18}",
            "phase", "max duplex w/rank", "critical-path cost"
        );
        for t in &totals {
            let _ = writeln!(
                out,
                "{:wid$}  {:>16}  {:>18}",
                t.label,
                t.max_duplex(),
                cp.phase_cost(&t.label)
            );
        }
        let unphased = cp.phase_cost("(unphased)");
        if unphased > 0.0 {
            let _ = writeln!(out, "{:wid$}  {:>16}  {:>18}", "(unphased)", "-", unphased);
        }
        let _ = writeln!(
            out,
            "critical path: {} (ends at rank {}, {} cross-rank hop(s))",
            cp.total, cp.end_rank, cp.hops
        );
        out
    }
}

/// Minimal JSON string escaping (labels are programmer-chosen ASCII; the
/// escapes cover the mandatory set).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Run a block as a named phase scope on `rank`: emits
/// [`TraceOp::PhaseBegin`]/[`TraceOp::PhaseEnd`] trace events around the
/// block (no cost, no-op when tracing is off) and evaluates to the
/// block's value.
///
/// ```
/// use pmm_model::MachineParams;
/// use pmm_simnet::{phase, World};
///
/// let out = World::new(1, MachineParams::BANDWIDTH_ONLY).with_trace(true).run(|rank| {
///     phase!(rank, "local multiply", {
///         rank.compute(8.0);
///         42
///     })
/// });
/// assert_eq!(out.values[0], 42);
/// ```
#[macro_export]
macro_rules! phase {
    ($rank:expr, $label:expr, $body:expr) => {{
        $rank.phase_begin($label);
        let __pmm_phase_value = $body;
        $rank.phase_end($label);
        __pmm_phase_value
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ctx: Ctx, op: TraceOp, words: u64, t0: f64, t1: f64) -> TraceEvent {
        TraceEvent { ctx, op, words, retry_words: 0, t0, t1 }
    }

    /// Rank 0 sends 10 words inside phase "p"; rank 1 receives them.
    fn two_rank_trace() -> Tracer {
        Tracer::from_streams(vec![
            vec![
                ev(0, TraceOp::PhaseBegin { label: "p" }, 0, 0.0, 0.0),
                ev(0, TraceOp::Send { to_world: 1 }, 10, 0.0, 10.0),
                ev(0, TraceOp::PhaseEnd { label: "p" }, 0, 10.0, 10.0),
            ],
            vec![
                ev(0, TraceOp::PhaseBegin { label: "p" }, 0, 0.0, 0.0),
                ev(0, TraceOp::Recv { from_world: 0 }, 10, 0.0, 10.0),
                ev(0, TraceOp::PhaseEnd { label: "p" }, 0, 10.0, 10.0),
            ],
        ])
    }

    #[test]
    fn phase_totals_split_words_by_scope() {
        let t = two_rank_trace();
        let totals = t.phase_totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].label, "p");
        assert_eq!(totals[0].sent, vec![10, 0]);
        assert_eq!(totals[0].recv, vec![0, 10]);
        assert_eq!(totals[0].max_duplex(), 10);
    }

    #[test]
    fn critical_path_attributes_the_transfer_once() {
        let t = two_rank_trace();
        let cp = t.critical_path();
        assert_eq!(cp.total, 10.0);
        assert_eq!(cp.per_phase, vec![("p".to_string(), 10.0)]);
        // The receiver's charge covers the transfer; the chain never needs
        // to hop (the send started at t = 0).
        assert_eq!(cp.hops, 0);
    }

    #[test]
    fn critical_path_hops_through_a_relay() {
        // 0 sends 5w to 1 (t 0→5); 1 relays 5w to 2 (t 5→10); 2 was idle.
        let t = Tracer::from_streams(vec![
            vec![ev(0, TraceOp::Send { to_world: 1 }, 5, 0.0, 5.0)],
            vec![
                ev(0, TraceOp::Recv { from_world: 0 }, 5, 0.0, 5.0),
                ev(0, TraceOp::Send { to_world: 2 }, 5, 5.0, 10.0),
            ],
            vec![ev(0, TraceOp::Recv { from_world: 1 }, 5, 0.0, 10.0)],
        ]);
        let cp = t.critical_path();
        assert_eq!(cp.total, 10.0);
        assert_eq!(cp.end_rank, 2);
        // 2's receive charges 10 − send.t0 = 5 … then hops to rank 1,
        // whose receive charges 5.
        assert_eq!(cp.hops, 1);
        assert_eq!(cp.per_phase, vec![("(unphased)".to_string(), 10.0)]);
    }

    #[test]
    fn attribution_flags_the_first_divergent_phase() {
        let t = two_rank_trace();
        let exact = t.attribution(&[("p", 10.0)]);
        assert!(exact.matches(), "{exact}");
        let off = t.attribution(&[("p", 12.0)]);
        assert_eq!(off.first_divergent.as_deref(), Some("p"));
        assert_eq!(off.rows[0].ranks_diverging, 2);
        assert!(off.to_string().contains("first divergent phase: p"), "{off}");
        let missing = t.attribution(&[("q", 4.0)]);
        assert_eq!(missing.first_divergent.as_deref(), Some("q"));
    }

    #[test]
    fn chrome_json_is_wellformed_and_stable() {
        let t = two_rank_trace();
        let a = t.chrome_json();
        let b = t.chrome_json();
        assert_eq!(a, b, "export must be deterministic");
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.trim_end().ends_with("]}"));
        assert!(a.contains("\"ph\":\"B\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"name\":\"send to 1\""));
        // One JSON object per event.
        assert_eq!(a.matches("\"tid\":").count(), 6);
    }

    #[test]
    fn json_str_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn render_text_names_each_phase() {
        let text = two_rank_trace().render_text();
        assert!(text.contains("p"), "{text}");
        assert!(text.contains("critical path: 10"), "{text}");
    }

    #[test]
    #[should_panic(expected = "must nest")]
    fn mismatched_phase_scopes_panic() {
        let t = Tracer::from_streams(vec![vec![
            ev(0, TraceOp::PhaseBegin { label: "a" }, 0, 0.0, 0.0),
            ev(0, TraceOp::PhaseEnd { label: "b" }, 0, 0.0, 0.0),
        ]]);
        let _ = t.phase_totals();
    }
}
