//! The per-rank handle: messaging, clocks, meters, memory.
//!
//! Every communication primitive has two forms sharing one body: the
//! async `_a` form (what event-loop programs and the async collectives
//! call) and a sync wrapper that drives the same future to completion in
//! a single poll via [`poll_now`]. On [`Engine::Threads`](crate::Engine::Threads)
//! the body blocks inside `poll` exactly as the
//! seed-era code did, so both forms behave identically there; on the
//! event-loop engine the body suspends at the scheduler's yield points
//! and only the `_a` forms may be used.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::panic::Location;
use std::sync::Arc;
use std::task::Poll;

use pmm_model::MachineParams;

use crate::comm::Comm;
use crate::engine::poll_now;
use crate::fabric::{Ctx, Fabric, Message, WORLD_CTX};
use crate::fault::{self, FaultAction, FaultKick, FaultPanic, MsgMeta, RankFailed};
use crate::meter::{MemTracker, Meter};
use crate::tracer::{TraceEvent, TraceOp};
use crate::verify::CollectiveOp;

/// Base sequence number of [`Rank::recovery_split`] rendezvous, far above
/// any per-communicator split counter a program could reach, so recovery
/// splits can never collide with a rendezvous abandoned at a kill.
const RECOVERY_SPLIT_SEQ_BASE: u64 = 1 << 32;

thread_local! {
    /// Set by the event-loop executor while it drops the continuations of
    /// ranks torn down by a world abort — the event-loop analogue of
    /// `std::thread::panicking()` during a rank thread's unwind, which is
    /// what keeps the leak checks in `Drop` impls quiet on the thread
    /// backend.
    static ABORT_TEARDOWN: Cell<bool> = const { Cell::new(false) };
}

pub(crate) fn begin_abort_teardown() {
    ABORT_TEARDOWN.with(|t| t.set(true));
}

pub(crate) fn end_abort_teardown() {
    ABORT_TEARDOWN.with(|t| t.set(false));
}

fn in_abort_teardown() -> bool {
    ABORT_TEARDOWN.with(Cell::get)
}

/// Error returned by [`Rank::try_mem_acquire`] when the configured local
/// memory `M` would be exceeded (§6.2 limited-memory scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLimitExceeded {
    /// Words that would have been resident after the acquire.
    pub requested_total: u64,
    /// The configured capacity.
    pub limit: u64,
}

impl std::fmt::Display for MemoryLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "local memory limit exceeded: need {} words, capacity {}",
            self.requested_total, self.limit
        )
    }
}

impl std::error::Error for MemoryLimitExceeded {}

/// A pending nonblocking receive (see [`Rank::irecv`]). Dropping a
/// never-redeemed request panics in debug form via the `Drop` check —
/// a leaked request means a message is silently never accounted.
#[derive(Debug)]
pub struct RecvRequest {
    ctx: u64,
    from: usize,
    #[allow(dead_code)]
    comm_size: usize,
    redeemed: bool,
}

impl Drop for RecvRequest {
    fn drop(&mut self) {
        debug_assert!(
            self.redeemed || std::thread::panicking() || in_abort_teardown(),
            "RecvRequest dropped without wait() — a message from {} on ctx {} was leaked",
            self.from,
            self.ctx
        );
    }
}

/// Token of an open fault-catching scope (see [`Rank::fault_watch_arm`]).
/// Holds the enclosing scope's watermark so scopes nest correctly.
#[must_use = "an armed fault watch must be restored with Rank::fault_watch_restore"]
pub struct FaultWatch {
    prev: Option<u64>,
}

/// Classify an unwind payload caught around a fault-catching scope:
/// injected-failure panics become the typed [`RankFailed`]; anything else
/// (assertion failures, verifier aborts) resumes unwinding unchanged.
fn fault_panic_payload(payload: Box<dyn std::any::Any + Send>) -> RankFailed {
    match payload.downcast::<FaultPanic>() {
        Ok(fp) => {
            let FaultPanic(failed) = *fp;
            failed
        }
        Err(other) => std::panic::resume_unwind(other),
    }
}

/// Poll `fut` to completion, converting an injected rank failure raised
/// during any poll — this rank killed by the fault plan, or a peer dying
/// while it was suspended — into a typed [`RankFailed`] error. Panics
/// that are not injected faults propagate unchanged. The caller must have
/// armed the scope with [`Rank::fault_watch_arm`] first; see that method
/// for the full bracketing pattern (or use
/// [`catch_failures_async!`](crate::catch_failures_async)).
pub async fn catch_fault_panics<T>(fut: impl Future<Output = T>) -> Result<T, RankFailed> {
    let mut fut = std::pin::pin!(fut);
    let result = std::future::poll_fn(|cx| {
        let poll = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.as_mut().poll(cx)));
        match poll {
            Ok(Poll::Ready(v)) => Poll::Ready(Ok(v)),
            Ok(Poll::Pending) => Poll::Pending,
            Err(payload) => Poll::Ready(Err(payload)),
        }
    })
    .await;
    match result {
        Ok(v) => Ok(v),
        Err(payload) => Err(fault_panic_payload(payload)),
    }
}

/// Async form of [`Rank::catch_failures`]: run a future-producing
/// expression in a fault-catching scope on `rank`, yielding
/// `Result<T, RankFailed>`.
///
/// ```
/// use pmm_simnet::{catch_failures_async, FaultPlan, MachineParams, World};
///
/// let out = World::new(2, MachineParams::BANDWIDTH_ONLY)
///     .with_faults(FaultPlan::none().with_kill(1, 1))
///     .run_async(|rank| {
///         Box::pin(async move {
///             let wc = rank.world_comm();
///             let me = rank.world_rank();
///             let r = catch_failures_async!(rank, async {
///                 if me == 0 {
///                     rank.recv_a(&wc, 1).await; // blocks on the killed rank
///                 } else {
///                     rank.send_a(&wc, 0, &[1.0]).await; // killed here
///                 }
///             });
///             r.is_err()
///         })
///     });
/// assert_eq!(out.values, vec![true, true]);
/// ```
///
/// The expansion brackets the body with [`Rank::fault_watch_arm`] /
/// [`Rank::fault_watch_restore`] and polls it through
/// [`catch_fault_panics`], so the scope semantics match the sync form
/// exactly.
#[macro_export]
macro_rules! catch_failures_async {
    ($rank:expr, $body:expr) => {{
        let __pmm_watch = $rank.fault_watch_arm();
        let __pmm_result = $crate::catch_fault_panics($body).await;
        $rank.fault_watch_restore(__pmm_watch);
        __pmm_result
    }};
}

/// A simulated processor. Each rank runs on its own OS thread; the closure
/// passed to [`World::run`](crate::World::run) receives `&mut Rank` and may
/// keep arbitrary private state — the only inter-rank data path is
/// [`Rank::send`] / [`Rank::recv`].
pub struct Rank {
    world_rank: usize,
    world_members: Arc<Vec<usize>>,
    fabric: Arc<Fabric>,
    params: MachineParams,
    time: f64,
    meter: Meter,
    mem: MemTracker,
    /// Out-of-order stash for directed receives, keyed by (ctx, from index).
    pending: HashMap<(Ctx, usize), VecDeque<Message>>,
    trace: Option<Vec<TraceEvent>>,
    /// Happens-before vector clock, indexed by world rank (see
    /// `crate::verify`). Ticks on every send and receive; merged
    /// elementwise on receive — i.e. only along communication edges.
    vclock: Vec<u64>,
    /// Last sender-clock value observed per (ctx, sender index), to assert
    /// per-channel monotonicity (no duplicated or reordered delivery).
    last_seen: HashMap<(Ctx, usize), u64>,
    /// Operation index at which the fault plan kills this rank, if any.
    kill_at: Option<u64>,
    /// Fault epoch at which a cascade entry kills this rank, if any
    /// (checked at every communication operation).
    cascade_at: Option<u64>,
    /// Straggler factor from the fault plan (1.0 = full speed; multiplies
    /// every local busy-time advance).
    slowdown: f64,
    /// Communication operations entered so far (the kill schedule's
    /// clock; only ticked when a fault plan is attached).
    op_count: u64,
    /// Fault-epoch watermark while inside [`Rank::catch_failures`]; when
    /// the fabric's epoch moves past it, blocking operations raise a
    /// typed failure instead of waiting on a dead rank.
    fault_watch: Option<u64>,
    /// Reliable-delivery send sequence numbers per (ctx, receiver index).
    send_seq: HashMap<(Ctx, usize), u64>,
    /// Next expected receive sequence number per (ctx, sender index).
    recv_seq: HashMap<(Ctx, usize), u64>,
}

impl Rank {
    #[allow(clippy::too_many_arguments)] // crate-internal constructor; World owns the knobs
    pub(crate) fn new(
        world_rank: usize,
        world_members: Arc<Vec<usize>>,
        fabric: Arc<Fabric>,
        params: MachineParams,
        mem_limit: Option<u64>,
        trace: bool,
        vclock_audit: bool,
    ) -> Rank {
        let world_size = world_members.len();
        let (kill_at, cascade_at, slowdown) = match fabric.fault() {
            Some(f) => (
                f.plan.kill_at(world_rank),
                f.plan.cascade_at(world_rank),
                f.plan.slowdown_of(f.seed, world_rank),
            ),
            None => (None, None, 1.0),
        };
        Rank {
            world_rank,
            world_members,
            fabric,
            params,
            time: 0.0,
            meter: Meter::default(),
            mem: MemTracker::new(mem_limit),
            pending: HashMap::new(),
            trace: if trace { Some(Vec::new()) } else { None },
            // An empty clock disables the happens-before audit: stamps
            // are skipped entirely (O(P) per message otherwise — see
            // `World::with_vclock_audit`).
            vclock: if vclock_audit { vec![0; world_size] } else { Vec::new() },
            last_seen: HashMap::new(),
            kill_at,
            cascade_at,
            slowdown,
            op_count: 0,
            fault_watch: None,
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
        }
    }

    /// Tear this rank down if the verifier has aborted the world (called
    /// at every communication entry point so even compute-only ranks
    /// notice promptly once they next touch the fabric).
    fn check_abort(&self) {
        if self.fabric.verify.is_aborted() {
            self.fabric.verify.abort_panic(self.world_rank);
        }
    }

    // ----- fault injection ---------------------------------------------------

    /// Fault hook at the entry of every communication operation (send,
    /// receive, exchange, wait, split, barrier): observe peer deaths when
    /// inside a catching scope, advance the kill clock, and die here if
    /// the fault plan says so. No-op without a fault plan.
    fn fault_tick(&mut self) {
        if self.fabric.fault().is_none() {
            return;
        }
        // Cascade entries fire before peer-death observation: a rank
        // slated to die *because* the epoch moved must die, not merely
        // observe the death that armed it.
        if let Some(at_epoch) = self.cascade_at {
            if self.fabric.fault_epoch() >= at_epoch {
                let seed_note = match self.fabric.sched_repro().and_then(|r| r.env()) {
                    Some(env) => format!("{env}, "),
                    None => String::new(),
                };
                let fault_seed = self.fabric.fault().map_or(0, |f| f.seed);
                let detail = format!(
                    "rank {} killed by fault-plan entry cascade={}@{} (replay: {}fault seed {:#x})",
                    self.world_rank, self.world_rank, at_epoch, seed_note, fault_seed
                );
                self.fabric.mark_rank_dead(self.world_rank, detail.clone());
                std::panic::panic_any(FaultPanic(RankFailed { rank: self.world_rank, detail }));
            }
        }
        if self.fault_kicked() {
            self.raise_peer_failure();
        }
        self.op_count += 1;
        if self.kill_at == Some(self.op_count) {
            let seed_note = match self.fabric.sched_repro().and_then(|r| r.env()) {
                Some(env) => format!("{env}, "),
                None => String::new(),
            };
            let fault_seed = self.fabric.fault().map_or(0, |f| f.seed);
            let detail = format!(
                "rank {} killed by fault-plan entry kill={}@{} (replay: {}fault seed {:#x})",
                self.world_rank, self.world_rank, self.op_count, seed_note, fault_seed
            );
            self.fabric.mark_rank_dead(self.world_rank, detail.clone());
            std::panic::panic_any(FaultPanic(RankFailed { rank: self.world_rank, detail }));
        }
    }

    /// Whether the fault epoch moved past this rank's catching-scope
    /// watermark (a rank died while we were working).
    fn fault_kicked(&self) -> bool {
        self.fault_watch.is_some_and(|watch| self.fabric.fault_epoch() > watch)
    }

    /// Unwind to the nearest [`Rank::catch_failures`] boundary because a
    /// peer died under us.
    fn raise_peer_failure(&self) -> ! {
        let dead = self.fabric.dead_ranks();
        let rank = dead.first().copied().unwrap_or(self.world_rank);
        let detail = format!(
            "rank {} observed the death of rank(s) {dead:?} injected by the fault plan",
            self.world_rank
        );
        std::panic::panic_any(FaultPanic(RankFailed { rank, detail }));
    }

    /// Run `f`, converting an injected rank failure — this rank killed by
    /// the plan, or a peer dying while this rank was blocked on it — into
    /// a typed [`RankFailed`] error instead of a thread panic. While the
    /// scope is active, every blocking operation watches the fault epoch
    /// and is kicked out promptly when any rank dies; outside a scope a
    /// death surfaces through the watchdog / scheduler failure report.
    /// Panics that are not injected faults propagate unchanged.
    ///
    /// After an `Err` the program must not reuse communicators that may
    /// have been abandoned mid-collective: synchronize the survivors with
    /// [`Rank::hard_sync`] and rebuild communicators from a
    /// [`Rank::recovery_split`].
    pub fn catch_failures<T>(&mut self, f: impl FnOnce(&mut Rank) -> T) -> Result<T, RankFailed> {
        let watch = self.fault_watch_arm();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self)));
        self.fault_watch_restore(watch);
        match result {
            Ok(v) => Ok(v),
            Err(payload) => Err(fault_panic_payload(payload)),
        }
    }

    /// Open a fault-catching scope by hand: the async counterpart of
    /// [`Rank::catch_failures`]. A closure-based async scope cannot be
    /// expressed without `'static` bounds (the scoped future would have
    /// to borrow both the rank and the closure's captures), so async
    /// programs bracket the scope explicitly:
    ///
    /// ```text
    /// let watch = rank.fault_watch_arm();
    /// let result = catch_fault_panics(body_a(&mut *rank, ...)).await;
    /// rank.fault_watch_restore(watch);
    /// ```
    ///
    /// or use the [`catch_failures_async!`](crate::catch_failures_async)
    /// macro, which expands to exactly that. The scope contract (armed
    /// ranks are kicked out of blocking operations promptly when a peer
    /// dies) is identical to the sync form.
    pub fn fault_watch_arm(&mut self) -> FaultWatch {
        let prev = self.fault_watch;
        self.fault_watch = Some(self.fabric.fault_epoch());
        FaultWatch { prev }
    }

    /// Open a fault-catching scope whose watermark is an explicit death
    /// count rather than the current fault epoch. [`Rank::fault_watch_arm`]
    /// snapshots `fault_epoch()` at arm time, which is correct for a scope
    /// that only cares about deaths *after* it opens — but a rank joining
    /// a multi-rank protocol round late would then never be kicked by the
    /// death that its peers already reacted to, and could strand in a
    /// collective its (live) peers have abandoned. Arming at the round's
    /// agreed basis — the number of deaths when the round's membership was
    /// fixed — makes any newer death kick this rank out immediately, no
    /// matter when it armed relative to the kill.
    pub fn fault_watch_arm_at(&mut self, deaths_at_basis: u64) -> FaultWatch {
        let prev = self.fault_watch;
        self.fault_watch = Some(deaths_at_basis);
        FaultWatch { prev }
    }

    /// Close a fault-catching scope opened by [`Rank::fault_watch_arm`],
    /// restoring the enclosing scope's watermark (scopes nest).
    pub fn fault_watch_restore(&mut self, watch: FaultWatch) {
        self.fault_watch = watch.prev;
    }

    /// World ranks killed by the fault plan so far (empty without one).
    pub fn dead_ranks(&self) -> Vec<usize> {
        self.fabric.dead_ranks()
    }

    /// Post `payload` to member `to` of `comm`, running the reliable-
    /// delivery protocol when a fault plan is attached: each transmission
    /// attempt is dropped / corrupted / duplicated / delayed according to
    /// the plan's seeded decision function, failed attempts cost the
    /// sender `α + βw` plus the (exponentially backed-off, capped)
    /// retransmission timeout and are metered as retry overhead, and the
    /// accepted copy's transmit start is returned — the `sent_at` the
    /// receiver will see and the base for the sender's own clock advance.
    /// Without a plan this is a single un-sequenced post at `self.time`.
    fn transmit(&mut self, comm: &Comm, to: usize, payload: &[f64]) -> f64 {
        let fabric = self.fabric.clone();
        let start = self.time;
        let from = comm.index();
        let Some(fstate) = fabric.fault() else {
            let vclock = self.vclock_stamp();
            fabric.post(
                comm.ctx,
                to,
                Message { from, sent_at: start, payload: payload.to_vec(), vclock, meta: None },
            );
            return start;
        };
        let w = payload.len() as u64;
        let to_world = comm.world_rank_of(to);
        let seq = {
            let counter = self.send_seq.entry((comm.ctx, to)).or_insert(0);
            let seq = *counter;
            *counter += 1;
            seq
        };
        let meta = Some(MsgMeta { seq, check: fault::checksum(payload) });
        let plan = &fstate.plan;
        let per_copy = self.slowdown * (self.params.alpha + self.params.beta * w as f64);
        let mut sent_at = start;
        for attempt in 0..=plan.max_retries {
            let tx = fault::Transmission {
                ctx: comm.ctx,
                from_world: self.world_rank,
                to_world,
                seq,
                attempt,
            };
            match plan.decide(fstate.seed, tx) {
                FaultAction::Deliver => {
                    let vclock = self.vclock_stamp();
                    fabric.post(
                        comm.ctx,
                        to,
                        Message { from, sent_at, payload: payload.to_vec(), vclock, meta },
                    );
                    return sent_at;
                }
                FaultAction::Delay(d) => {
                    // The copy loiters in flight; the sender's own clock
                    // is unaffected (the delay stays under the timeout).
                    let vclock = self.vclock_stamp();
                    fabric.post(
                        comm.ctx,
                        to,
                        Message {
                            from,
                            sent_at: sent_at + d,
                            payload: payload.to_vec(),
                            vclock,
                            meta,
                        },
                    );
                    return sent_at;
                }
                FaultAction::Duplicate => {
                    // Both copies arrive; the receiver's sequence check
                    // discards the second. The extra copy is overhead.
                    let vclock = self.vclock_stamp();
                    let msg = Message { from, sent_at, payload: payload.to_vec(), vclock, meta };
                    fabric.post(comm.ctx, to, msg.clone());
                    fabric.post(comm.ctx, to, msg);
                    self.meter.retry_words_sent += w;
                    self.meter.retry_msgs_sent += 1;
                    return sent_at;
                }
                FaultAction::Drop => {
                    // Nothing arrives; the sender pays the transmit plus
                    // the timeout before the next attempt.
                    self.meter.retry_words_sent += w;
                    self.meter.retry_msgs_sent += 1;
                    sent_at += per_copy + plan.rto(attempt);
                }
                FaultAction::Corrupt => {
                    // A damaged copy arrives (the receiver's checksum
                    // rejects it); the sender times out and retransmits.
                    let (word, bit) = plan.corrupt_site(fstate.seed, tx, payload.len());
                    let mut damaged = payload.to_vec();
                    if let Some(v) = damaged.get_mut(word) {
                        *v = f64::from_bits(v.to_bits() ^ (1u64 << bit));
                    }
                    let vclock = self.vclock_stamp();
                    fabric.post(
                        comm.ctx,
                        to,
                        Message { from, sent_at, payload: damaged, vclock, meta },
                    );
                    self.meter.retry_words_sent += w;
                    self.meter.retry_msgs_sent += 1;
                    sent_at += per_copy + plan.rto(attempt);
                }
            }
        }
        let report = format!(
            "pmm-fault: rank {} exhausted {} retransmission(s) of message #{seq} to world rank \
             {to_world} on ctx {} — delivery failed under fault plan [{plan}] (fault seed {:#x})",
            self.world_rank, plan.max_retries, comm.ctx, fstate.seed
        );
        fabric.abort(report);
        fabric.verify.abort_panic(self.world_rank);
    }

    /// Receiver half of the reliable-delivery protocol: accept a message
    /// iff it carries the next expected sequence number for its channel
    /// and its checksum matches. Rejected copies (duplicates, corruption)
    /// are metered as retry overhead, cost the receiver the transfer time
    /// it wasted examining them, and never reach the happens-before audit
    /// or the goodput meters. Messages without metadata (no fault plan)
    /// are always accepted.
    fn fault_accept(&mut self, ctx: Ctx, msg: &Message) -> bool {
        let Some(meta) = msg.meta else { return true };
        let expected = self.recv_seq.entry((ctx, msg.from)).or_insert(0);
        if meta.seq == *expected && fault::checksum(&msg.payload) == meta.check {
            *expected += 1;
            return true;
        }
        let w = msg.payload.len() as u64;
        self.meter.retry_words_recv += w;
        self.meter.retry_msgs_recv += 1;
        self.time = self.time.max(msg.sent_at)
            + self.slowdown * (self.params.alpha + self.params.beta * w as f64);
        false
    }

    /// Tick the local component and snapshot the clock for attachment to
    /// an outgoing message; `None` when the audit is disabled for this
    /// world (large `P` — see `World::with_vclock_audit`).
    fn vclock_stamp(&mut self) -> Option<Arc<[u64]>> {
        if self.vclock.is_empty() {
            return None;
        }
        self.vclock[self.world_rank] += 1;
        Some(self.vclock.clone().into())
    }

    /// Fold a received message's clock into ours: assert the sender's own
    /// component strictly increased (per-channel FIFO, no duplication),
    /// then take the elementwise max and tick our component.
    fn vclock_observe(&mut self, ctx: Ctx, from_index: usize, sender_world: usize, msg: &Message) {
        if self.vclock.is_empty() {
            return; // audit disabled for this world
        }
        let Some(vc) = &msg.vclock else { return };
        let stamp = vc[sender_world];
        let last = self.last_seen.insert((ctx, from_index), stamp);
        assert!(
            last.is_none_or(|l| stamp > l),
            "pmm-verify: happens-before violation at rank {}: sender clock {stamp} from world \
             rank {sender_world} on ctx {ctx} did not increase (last seen {last:?})",
            self.world_rank
        );
        for (mine, theirs) in self.vclock.iter_mut().zip(vc.iter()) {
            *mine = (*mine).max(*theirs);
        }
        self.vclock[self.world_rank] += 1;
    }

    /// Final happens-before clock (for [`RankReport`](crate::RankReport)).
    pub(crate) fn final_vclock(&self) -> Vec<u64> {
        self.vclock.clone()
    }

    // ----- identity --------------------------------------------------------

    /// This rank's id in the world communicator.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.world_members.len()
    }

    /// The world communicator (all ranks, identity ordering).
    pub fn world_comm(&self) -> Comm {
        Comm::new(WORLD_CTX, self.world_members.clone(), self.world_rank)
    }

    /// The machine parameters this world was created with.
    #[inline]
    pub fn params(&self) -> MachineParams {
        self.params
    }

    // ----- accounting ------------------------------------------------------

    /// Current critical-path clock of this rank.
    #[inline]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Snapshot of the traffic/compute meter (cheap; `Copy`).
    #[inline]
    pub fn meter(&self) -> Meter {
        self.meter
    }

    /// The memory tracker (peak, current, limit).
    #[inline]
    pub fn mem(&self) -> &MemTracker {
        &self.mem
    }

    /// Declare `words` of working memory resident. Panics if the limit is
    /// exceeded — use [`Rank::try_mem_acquire`] when overflow is an
    /// expected outcome (limited-memory experiments).
    pub fn mem_acquire(&mut self, words: u64) {
        self.try_mem_acquire(words).unwrap_or_else(|e| panic!("rank {}: {}", self.world_rank, e));
    }

    /// Fallible version of [`Rank::mem_acquire`]; on failure nothing is
    /// acquired.
    pub fn try_mem_acquire(&mut self, words: u64) -> Result<(), MemoryLimitExceeded> {
        self.mem
            .acquire(words)
            .map_err(|(requested_total, limit)| MemoryLimitExceeded { requested_total, limit })
    }

    /// Release previously acquired working memory.
    pub fn mem_release(&mut self, words: u64) {
        self.mem.release(words);
    }

    /// Place a marker in the trace (no cost, no-op when tracing is off).
    pub fn mark(&mut self, label: impl Into<String>) {
        if self.trace.is_some() {
            let now = self.time;
            self.trace_event(WORLD_CTX, TraceOp::Mark(label.into()), 0, 0, now, now);
        }
    }

    /// Open a named phase scope in the trace (no cost, no-op when tracing
    /// is off). Scopes must nest and close via [`Rank::phase_end`] with
    /// the same label; the [`phase!`](crate::phase) macro wraps a block in
    /// a balanced pair. The [`Tracer`](crate::Tracer) analyses attribute
    /// every message and every critical-path word to the innermost open
    /// scope.
    pub fn phase_begin(&mut self, label: &'static str) {
        if self.trace.is_some() {
            let now = self.time;
            self.trace_event(WORLD_CTX, TraceOp::PhaseBegin { label }, 0, 0, now, now);
        }
    }

    /// Close the innermost phase scope (see [`Rank::phase_begin`]).
    pub fn phase_end(&mut self, label: &'static str) {
        if self.trace.is_some() {
            let now = self.time;
            self.trace_event(WORLD_CTX, TraceOp::PhaseEnd { label }, 0, 0, now, now);
        }
    }

    /// Append an event to the trace buffer (call sites gate on
    /// `self.trace.is_some()` first, so the disabled path costs one branch).
    fn trace_event(
        &mut self,
        ctx: Ctx,
        op: TraceOp,
        words: u64,
        retry_words: u64,
        t0: f64,
        t1: f64,
    ) {
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent { ctx, op, words, retry_words, t0, t1 });
        }
    }

    pub(crate) fn take_trace(&mut self) -> Option<Vec<TraceEvent>> {
        self.trace.take()
    }

    // ----- computation -----------------------------------------------------

    /// Account `flops` scalar operations of local computation
    /// (advances the clock by `γ · flops`).
    pub fn compute(&mut self, flops: f64) {
        debug_assert!(flops >= 0.0);
        let t0 = self.time;
        self.meter.flops += flops;
        // `slowdown` is exactly 1.0 without a straggler entry, keeping
        // fault-free clocks bitwise-identical to the unfaulted model.
        self.time += self.slowdown * (self.params.gamma * flops);
        if self.trace.is_some() {
            let t1 = self.time;
            self.trace_event(WORLD_CTX, TraceOp::Compute { flops }, 0, 0, t0, t1);
        }
    }

    // ----- point-to-point messaging ----------------------------------------

    /// Send `payload` to member `to` of `comm`.
    ///
    /// Cost model (eager/postal): the sender is busy for `α + βw`; the
    /// message arrives at `send_start + α + βw`, and the receiver is busy
    /// for `α + βw` after the later of (its own readiness, the send start).
    pub fn send(&mut self, comm: &Comm, to: usize, payload: &[f64]) {
        poll_now(self.send_a(comm, to, payload));
    }

    /// Async form of [`Rank::send`] (event-loop programs).
    pub async fn send_a(&mut self, comm: &Comm, to: usize, payload: &[f64]) {
        self.check_abort();
        self.fault_tick();
        assert!(to < comm.size(), "send target {to} out of communicator of size {}", comm.size());
        assert_ne!(to, comm.index(), "send to self is not allowed (use local state)");
        let w = payload.len() as u64;
        let t0 = self.time;
        let retry_before = self.meter.retry_words_sent;
        self.meter.words_sent += w;
        self.meter.msgs_sent += 1;
        let sent_at = self.transmit(comm, to, payload);
        self.time = sent_at + self.slowdown * (self.params.alpha + self.params.beta * w as f64);
        if self.trace.is_some() {
            let (t1, retry) = (self.time, self.meter.retry_words_sent - retry_before);
            let op = TraceOp::Send { to_world: comm.world_rank_of(to) };
            self.trace_event(comm.ctx, op, w, retry, t0, t1);
        }
        // Deterministic mode: record the post and yield the baton.
        if self.fabric.is_event_loop() {
            self.fabric.yield_post(self.world_rank, comm.ctx, comm.world_rank_of(to), w).await;
        } else {
            self.fabric.sched_post_event(self.world_rank, comm.ctx, comm.world_rank_of(to), w);
        }
    }

    /// Blockingly receive the next message from member `from` of `comm`.
    #[track_caller]
    pub fn recv(&mut self, comm: &Comm, from: usize) -> Message {
        poll_now(self.recv_a(comm, from))
    }

    /// Async form of [`Rank::recv`] (event-loop programs).
    #[track_caller]
    pub fn recv_a<'r>(
        &'r mut self,
        comm: &'r Comm,
        from: usize,
    ) -> impl Future<Output = Message> + 'r {
        // `#[track_caller]` does not reach into an async body, so the
        // call site is captured here, at construction.
        let site = Location::caller();
        async move {
            self.check_abort();
            self.fault_tick();
            assert!(from < comm.size(), "recv source {from} out of communicator");
            assert_ne!(from, comm.index(), "recv from self is not allowed");
            let t0 = self.time;
            let retry_before = self.meter.retry_words_recv;
            let msg = self.match_directed(comm, from, site).await;
            self.vclock_observe(comm.ctx, from, comm.world_rank_of(from), &msg);
            let w = msg.payload.len() as u64;
            self.meter.words_recv += w;
            self.meter.msgs_recv += 1;
            // Transfer occupies the receiver from when both sides are ready.
            self.time = self.time.max(msg.sent_at)
                + self.slowdown * (self.params.alpha + self.params.beta * w as f64);
            if self.trace.is_some() {
                let (t1, retry) = (self.time, self.meter.retry_words_recv - retry_before);
                let op = TraceOp::Recv { from_world: comm.world_rank_of(from) };
                self.trace_event(comm.ctx, op, w, retry, t0, t1);
            }
            msg
        }
    }

    /// Full-duplex exchange with `partner`: send `payload` and receive the
    /// partner's message *in the same transfer step*.
    ///
    /// Both sides must call `sendrecv` for the duplex costing to be
    /// symmetric. Cost: `α + β·max(w_sent, w_recv)` starting when both
    /// sides are ready — this is the §3.1 "pair of processors can exchange
    /// data with no contention" rule, and what bandwidth-optimal collectives
    /// (recursive doubling/halving, bidirectional ring) rely on.
    #[track_caller]
    pub fn sendrecv(&mut self, comm: &Comm, partner: usize, payload: &[f64]) -> Message {
        self.exchange(comm, partner, partner, payload)
    }

    /// Async form of [`Rank::sendrecv`] (event-loop programs).
    #[track_caller]
    pub fn sendrecv_a<'r>(
        &'r mut self,
        comm: &'r Comm,
        partner: usize,
        payload: &'r [f64],
    ) -> impl Future<Output = Message> + 'r {
        self.exchange_a(comm, partner, partner, payload)
    }

    /// Full-duplex exchange with distinct peers: send `payload` to `to`
    /// while receiving from `from` (ring shifts, pairwise all-to-all).
    ///
    /// Cost: `α + β·max(w_sent, w_recv)` starting when both this rank and
    /// the incoming message are ready — §3.1 allows simultaneous send and
    /// receive on the bidirectional links, and every rank is engaged in at
    /// most one send and one receive.
    #[track_caller]
    pub fn exchange(&mut self, comm: &Comm, to: usize, from: usize, payload: &[f64]) -> Message {
        poll_now(self.exchange_a(comm, to, from, payload))
    }

    /// Async form of [`Rank::exchange`] (event-loop programs).
    #[track_caller]
    pub fn exchange_a<'r>(
        &'r mut self,
        comm: &'r Comm,
        to: usize,
        from: usize,
        payload: &'r [f64],
    ) -> impl Future<Output = Message> + 'r {
        let site = Location::caller();
        async move {
            self.check_abort();
            self.fault_tick();
            assert!(to < comm.size() && from < comm.size(), "exchange peer out of communicator");
            assert_ne!(to, comm.index(), "exchange send-to-self is not allowed");
            assert_ne!(from, comm.index(), "exchange recv-from-self is not allowed");
            let ws = payload.len() as u64;
            let t_entry = self.time;
            let retry_sent_before = self.meter.retry_words_sent;
            let retry_recv_before = self.meter.retry_words_recv;
            self.meter.words_sent += ws;
            self.meter.msgs_sent += 1;
            let tx_start = self.transmit(comm, to, payload);
            if self.trace.is_some() {
                // The send half occupies no exclusive time of its own — the
                // duplex transfer is charged once, on the receive half below.
                let retry = self.meter.retry_words_sent - retry_sent_before;
                let op = TraceOp::Send { to_world: comm.world_rank_of(to) };
                self.trace_event(comm.ctx, op, ws, retry, t_entry, t_entry);
            }
            if self.fabric.is_event_loop() {
                self.fabric.yield_post(self.world_rank, comm.ctx, comm.world_rank_of(to), ws).await;
            } else {
                self.fabric.sched_post_event(self.world_rank, comm.ctx, comm.world_rank_of(to), ws);
            }
            let msg = self.match_directed(comm, from, site).await;
            self.vclock_observe(comm.ctx, from, comm.world_rank_of(from), &msg);
            let wr = msg.payload.len() as u64;
            self.meter.words_recv += wr;
            self.meter.msgs_recv += 1;
            let wmax = ws.max(wr) as f64;
            self.time = tx_start.max(msg.sent_at)
                + self.slowdown * (self.params.alpha + self.params.beta * wmax);
            if self.trace.is_some() {
                let (t1, retry) = (self.time, self.meter.retry_words_recv - retry_recv_before);
                let op = TraceOp::Recv { from_world: comm.world_rank_of(from) };
                self.trace_event(comm.ctx, op, wr, retry, t_entry, t1);
            }
            msg
        }
    }

    /// Post a nonblocking receive for the next message from member `from`
    /// of `comm`. The returned handle must be redeemed with
    /// [`Rank::wait`]; handles from the same `(comm, from)` pair redeem in
    /// FIFO order.
    ///
    /// The point of the nonblocking form is **overlap**: computation
    /// performed between `irecv` and `wait` hides the transfer. At `wait`
    /// the clock advances to `max(now, sent_at + α + βw)` — the receiver
    /// pays only the part of the transfer not already covered by its own
    /// elapsed work, instead of the full `α + βw` the blocking
    /// [`Rank::recv`] charges after the rendezvous.
    pub fn irecv(&mut self, comm: &Comm, from: usize) -> RecvRequest {
        assert!(from < comm.size(), "irecv source out of communicator");
        assert_ne!(from, comm.index(), "irecv from self is not allowed");
        RecvRequest { ctx: comm.ctx(), from, comm_size: comm.size(), redeemed: false }
    }

    /// Complete a nonblocking receive (see [`Rank::irecv`]).
    #[track_caller]
    pub fn wait(&mut self, req: RecvRequest, comm: &Comm) -> Message {
        poll_now(self.wait_a(req, comm))
    }

    /// Async form of [`Rank::wait`] (event-loop programs).
    #[track_caller]
    pub fn wait_a<'r>(
        &'r mut self,
        req: RecvRequest,
        comm: &'r Comm,
    ) -> impl Future<Output = Message> + 'r {
        let site = Location::caller();
        async move {
            // Rebind to move the whole request into the continuation —
            // disjoint field capture would copy out the `Copy` fields and
            // drop the request (unredeemed) at future construction.
            let mut req = req;
            self.check_abort();
            self.fault_tick();
            assert_eq!(req.ctx, comm.ctx(), "wait called with a different communicator");
            req.redeemed = true;
            let t0 = self.time;
            let retry_before = self.meter.retry_words_recv;
            let msg = self.match_directed(comm, req.from, site).await;
            self.vclock_observe(comm.ctx, req.from, comm.world_rank_of(req.from), &msg);
            let w = msg.payload.len() as u64;
            self.meter.words_recv += w;
            self.meter.msgs_recv += 1;
            let arrival = msg.sent_at + self.params.alpha + self.params.beta * w as f64;
            self.time = self.time.max(arrival);
            if self.trace.is_some() {
                let (t1, retry) = (self.time, self.meter.retry_words_recv - retry_before);
                let op = TraceOp::Recv { from_world: comm.world_rank_of(req.from) };
                self.trace_event(comm.ctx, op, w, retry, t0, t1);
            }
            msg
        }
    }

    async fn match_directed(
        &mut self,
        comm: &Comm,
        from: usize,
        site: &'static Location<'static>,
    ) -> Message {
        if let Some(q) = self.pending.get_mut(&(comm.ctx, from)) {
            if let Some(m) = q.pop_front() {
                return m;
            }
        }
        let from_world = comm.world_rank_of(from);
        loop {
            let fabric = self.fabric.clone();
            let taken = if fabric.is_event_loop() {
                fabric
                    .take_any_a(
                        comm.ctx,
                        comm.index(),
                        self.world_rank,
                        from_world,
                        site,
                        self.fault_watch,
                    )
                    .await
            } else {
                fabric.take_any(
                    comm.ctx,
                    comm.index(),
                    self.world_rank,
                    from_world,
                    site,
                    self.fault_watch,
                )
            };
            let Some(msg) = taken else {
                // Kicked out of the blocking wait: a rank died while we
                // were waiting inside a catch_failures scope.
                self.raise_peer_failure();
            };
            if !self.fault_accept(comm.ctx, &msg) {
                continue;
            }
            if msg.from == from {
                return msg;
            }
            self.pending.entry((comm.ctx, msg.from)).or_default().push_back(msg);
        }
    }

    // ----- communicator management -----------------------------------------

    /// Collective split of `comm` into sub-communicators by `color`
    /// (members with equal color land in the same sub-communicator, ordered
    /// by `(key, parent index)`). Negative color opts out and yields
    /// `None`. All members of `comm` must call `split` the same number of
    /// times in the same order.
    ///
    /// Splits are bookkeeping, not communication: they are **not** metered
    /// and do not advance the clock (an implementation on a real machine
    /// would piggyback the group agreement on the setup phase).
    #[track_caller]
    pub fn split(&mut self, comm: &Comm, color: i64, key: i64) -> Option<Comm> {
        poll_now(self.split_a(comm, color, key))
    }

    /// Async form of [`Rank::split`] (event-loop programs).
    #[track_caller]
    pub fn split_a<'r>(
        &'r mut self,
        comm: &'r Comm,
        color: i64,
        key: i64,
    ) -> impl Future<Output = Option<Comm>> + 'r {
        let site = Location::caller();
        async move {
            self.fault_tick();
            // A split is a collective over the parent communicator: register
            // it with the matching lint so members that issue splits in
            // different orders (relative to other collectives) are flagged.
            self.collective_begin_at(comm, CollectiveOp::Split, 0, site).await;
            let seq = comm.next_split_seq();
            let fabric = self.fabric.clone();
            let result = if fabric.is_event_loop() {
                fabric
                    .split_a(
                        comm.ctx,
                        comm.members(),
                        seq,
                        comm.index(),
                        self.world_rank,
                        color,
                        key,
                        site,
                        self.fault_watch,
                    )
                    .await
            } else {
                fabric.split(
                    comm.ctx,
                    comm.members(),
                    seq,
                    comm.index(),
                    self.world_rank,
                    color,
                    key,
                    site,
                    self.fault_watch,
                )
            };
            let group = match result {
                Err(FaultKick) => self.raise_peer_failure(),
                Ok(None) => return None,
                Ok(Some(group)) => group,
            };
            let my_index =
                group.members.iter().position(|&w| w == self.world_rank).unwrap_or_else(|| {
                    panic!(
                        "world rank {} missing from its own split group (ctx {}) — fabric bug",
                        self.world_rank, group.ctx
                    )
                });
            Some(Comm::new(group.ctx, group.members, my_index))
        }
    }

    /// Rebuild a communicator over the **surviving** world ranks after a
    /// fault (color 0, ordered by world rank). Unlike [`Rank::split`] this
    /// rendezvous lives outside the regular split-sequence and collective
    /// ledgers — survivors of a kill may have diverged arbitrarily in how
    /// many splits they issued before the failure, so recovery must not
    /// depend on any pre-failure counter. `round` distinguishes successive
    /// recoveries (use an incrementing counter).
    ///
    /// All survivors must call this with the same `round`; dead ranks are
    /// counted as opted out.
    #[track_caller]
    pub fn recovery_split(&mut self, round: u64) -> Comm {
        poll_now(self.recovery_split_a(round))
    }

    /// Async form of [`Rank::recovery_split`] (event-loop programs).
    #[track_caller]
    pub fn recovery_split_a(&mut self, round: u64) -> impl Future<Output = Comm> + '_ {
        let site = Location::caller();
        async move {
            self.check_abort();
            let wc = self.world_comm();
            let fabric = self.fabric.clone();
            let result = if fabric.is_event_loop() {
                fabric
                    .split_a(
                        wc.ctx,
                        wc.members(),
                        RECOVERY_SPLIT_SEQ_BASE + round,
                        wc.index(),
                        self.world_rank,
                        0,
                        self.world_rank as i64,
                        site,
                        None,
                    )
                    .await
            } else {
                fabric.split(
                    wc.ctx,
                    wc.members(),
                    RECOVERY_SPLIT_SEQ_BASE + round,
                    wc.index(),
                    self.world_rank,
                    0,
                    self.world_rank as i64,
                    site,
                    None,
                )
            };
            let group = match result {
                Ok(Some(group)) => group,
                Ok(None) | Err(FaultKick) => panic!(
                    "rank {}: recovery split round {round} failed — fabric bug (color 0 cannot \
                     opt out, and recovery splits do not watch the fault epoch)",
                    self.world_rank
                ),
            };
            let my_index =
                group.members.iter().position(|&w| w == self.world_rank).unwrap_or_else(|| {
                    panic!(
                        "world rank {} missing from its own recovery group (ctx {}) — fabric bug",
                        self.world_rank, group.ctx
                    )
                });
            Comm::new(group.ctx, group.members, my_index)
        }
    }

    /// Zero-cost synchronization of **all world ranks** (not metered). For
    /// delimiting test phases; real synchronization should use the metered
    /// barrier collective from `pmm-collectives`. Ranks killed by a fault
    /// plan are counted as arrived, so survivors can rally here after a
    /// failure.
    #[track_caller]
    pub fn hard_sync(&mut self) {
        poll_now(self.hard_sync_a());
    }

    /// Async form of [`Rank::hard_sync`] (event-loop programs).
    #[track_caller]
    pub fn hard_sync_a(&mut self) -> impl Future<Output = ()> + '_ {
        let site = Location::caller();
        async move {
            self.check_abort();
            self.fault_tick();
            let fabric = self.fabric.clone();
            if fabric.is_event_loop() {
                fabric.hard_sync_a(self.world_rank, site).await;
            } else {
                fabric.hard_sync(self.world_rank, site);
            }
        }
    }

    // ----- communication-correctness hooks ----------------------------------

    /// Register entry into a collective on `comm` with the matching lint
    /// (see `crate::verify`): the `n`-th collective on a communicator must
    /// agree on `op` (and on `elems`, for symmetric ops) across all
    /// members. On disagreement the world is aborted with a report diffing
    /// the registered descriptors — deterministically, before the mismatch
    /// can turn into a hang or silent corruption.
    ///
    /// Collective implementations (e.g. `pmm-collectives`) call this once
    /// at their entry point; user programs composed of raw sends/receives
    /// don't need it.
    #[track_caller]
    pub fn collective_begin(&mut self, comm: &Comm, op: CollectiveOp, elems: u64) {
        poll_now(self.collective_begin_a(comm, op, elems));
    }

    /// Async form of [`Rank::collective_begin`] (event-loop programs —
    /// and the async collective implementations in `pmm-collectives`).
    #[track_caller]
    pub fn collective_begin_a<'r>(
        &'r mut self,
        comm: &'r Comm,
        op: CollectiveOp,
        elems: u64,
    ) -> impl Future<Output = ()> + 'r {
        self.collective_begin_at(comm, op, elems, Location::caller())
    }

    /// [`Rank::collective_begin_a`] with an explicit call site.
    ///
    /// Collective libraries whose public entry points are
    /// `#[track_caller]` functions returning futures (the `_a` pattern:
    /// capture `Location::caller()` before the `async move` block) use
    /// this to attribute the collective to the *user's* call site rather
    /// than a line inside the library.
    pub async fn collective_begin_at(
        &mut self,
        comm: &Comm,
        op: CollectiveOp,
        elems: u64,
        site: &'static Location<'static>,
    ) {
        self.check_abort();
        if let Err(report) = self.fabric.verify.register_collective(
            comm.ctx,
            comm.size(),
            comm.index(),
            self.world_rank,
            op,
            elems,
            site,
        ) {
            self.fabric.abort(report);
            self.fabric.verify.abort_panic(self.world_rank);
        }
        if self.trace.is_some() {
            let now = self.time;
            self.trace_event(comm.ctx, TraceOp::Collective { op, elems }, 0, 0, now, now);
        }
        // Deterministic mode: collective entries are trace events and
        // yield points, so schedules interleave across collectives too.
        if self.fabric.is_event_loop() {
            self.fabric.yield_collective(self.world_rank, comm.ctx(), op, elems).await;
        } else {
            self.fabric.sched_collective_event(self.world_rank, comm.ctx(), op, elems);
        }
    }

    /// Description of messages received but never consumed by a directed
    /// receive (strict-drain audit), or `None` if the stash is clean.
    pub(crate) fn undrained_stash(&self) -> Option<String> {
        let mut leftovers: Vec<String> = self
            .pending
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&(ctx, from), q)| {
                format!("{} message(s) from index {from} on ctx {ctx}", q.len())
            })
            .collect();
        if leftovers.is_empty() {
            return None;
        }
        leftovers.sort();
        Some(leftovers.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    fn bw() -> MachineParams {
        MachineParams::BANDWIDTH_ONLY
    }

    #[test]
    fn ping_pong_content_and_meters() {
        let out = World::new(2, bw()).run(|rank| {
            let wc = rank.world_comm();
            if rank.world_rank() == 0 {
                rank.send(&wc, 1, &[1.0, 2.0, 3.0]);
                let m = rank.recv(&wc, 1);
                m.payload.iter().sum::<f64>()
            } else {
                let m = rank.recv(&wc, 0);
                let back: Vec<f64> = m.payload.iter().map(|x| x * 10.0).collect();
                rank.send(&wc, 0, &back);
                0.0
            }
        });
        assert_eq!(out.values[0], 60.0);
        assert_eq!(out.reports[0].meter.words_sent, 3);
        assert_eq!(out.reports[0].meter.words_recv, 3);
        assert_eq!(out.reports[1].meter.words_sent, 3);
        assert_eq!(out.reports[1].meter.msgs_recv, 1);
    }

    #[test]
    fn clock_ping_pong_bandwidth_only() {
        // 0 sends 5 words (t: 0→5); 1 receives (t = max(0,0)+5 = 5), sends
        // 7 words back (t: 5→12); 0 receives (t = max(5,5)+7 = 12).
        let out = World::new(2, bw()).run(|rank| {
            let wc = rank.world_comm();
            if rank.world_rank() == 0 {
                rank.send(&wc, 1, &[0.0; 5]);
                rank.recv(&wc, 1);
            } else {
                rank.recv(&wc, 0);
                rank.send(&wc, 0, &[0.0; 7]);
            }
            rank.time()
        });
        assert_eq!(out.values[0], 12.0);
        assert_eq!(out.values[1], 12.0);
    }

    #[test]
    fn clock_includes_latency_and_flops() {
        let params = MachineParams::new(100.0, 1.0, 0.5);
        let out = World::new(2, params).run(|rank| {
            let wc = rank.world_comm();
            rank.compute(10.0); // t = 5
            if rank.world_rank() == 0 {
                rank.send(&wc, 1, &[0.0; 20]); // t = 5 + 100 + 20 = 125
            } else {
                rank.recv(&wc, 0); // t = max(5, 5) + 120 = 125
            }
            rank.time()
        });
        assert_eq!(out.values[0], 125.0);
        assert_eq!(out.values[1], 125.0);
    }

    #[test]
    fn sendrecv_duplex_costs_once() {
        // Symmetric 8-word exchange: each side's clock advances by β·8 once.
        let out = World::new(2, bw()).run(|rank| {
            let wc = rank.world_comm();
            let partner = 1 - rank.world_rank();
            let m = rank.sendrecv(&wc, partner, &[rank.world_rank() as f64; 8]);
            (rank.time(), m.payload[0])
        });
        assert_eq!(out.values[0], (8.0, 1.0));
        assert_eq!(out.values[1], (8.0, 0.0));
    }

    #[test]
    fn irecv_overlaps_compute_with_transfer() {
        // Sender ships 100 words at t = 0; receiver computes 100 flops.
        // Blocking: t = max(100, 0) + 100 = 200. Overlapped: the transfer
        // (arrival t = 100) hides behind the compute (t = 100) → t = 100.
        let params = MachineParams::new(0.0, 1.0, 1.0);
        let run = |overlap: bool| {
            World::new(2, params).run(move |rank| {
                let wc = rank.world_comm();
                if rank.world_rank() == 0 {
                    rank.send(&wc, 1, &[0.0; 100]);
                } else if overlap {
                    let req = rank.irecv(&wc, 0);
                    rank.compute(100.0);
                    rank.wait(req, &wc);
                } else {
                    rank.recv(&wc, 0);
                    rank.compute(100.0);
                }
                rank.time()
            })
        };
        let blocking = run(false);
        let overlapped = run(true);
        assert_eq!(blocking.values[1], 200.0);
        assert_eq!(overlapped.values[1], 100.0);
        // Meters are identical either way.
        assert_eq!(blocking.reports[1].meter.words_recv, overlapped.reports[1].meter.words_recv);
    }

    #[test]
    fn irecv_requests_redeem_in_fifo_order() {
        let out = World::new(2, bw()).run(|rank| {
            let wc = rank.world_comm();
            if rank.world_rank() == 0 {
                rank.send(&wc, 1, &[1.0]);
                rank.send(&wc, 1, &[2.0]);
                Vec::new()
            } else {
                let r1 = rank.irecv(&wc, 0);
                let r2 = rank.irecv(&wc, 0);
                let a = rank.wait(r1, &wc).payload[0];
                let b = rank.wait(r2, &wc).payload[0];
                vec![a, b]
            }
        });
        assert_eq!(out.values[1], vec![1.0, 2.0]);
    }

    #[test]
    fn wait_still_blocks_until_arrival() {
        // If the receiver has done less work than the transfer takes, wait
        // charges the remainder: compute 30 then wait on a 100-word message
        // ⇒ t = max(30, 100) = 100.
        let params = MachineParams::new(0.0, 1.0, 1.0);
        let out = World::new(2, params).run(|rank| {
            let wc = rank.world_comm();
            if rank.world_rank() == 0 {
                rank.send(&wc, 1, &[0.0; 100]);
            } else {
                let req = rank.irecv(&wc, 0);
                rank.compute(30.0);
                rank.wait(req, &wc);
            }
            rank.time()
        });
        assert_eq!(out.values[1], 100.0);
    }

    #[test]
    fn exchange_shifts_around_a_ring() {
        // Each of 5 ranks sends to the right, receives from the left; the
        // duplex clock advances by one β·w step.
        let out = World::new(5, bw()).run(|rank| {
            let wc = rank.world_comm();
            let p = wc.size();
            let me = wc.index();
            let m = rank.exchange(&wc, (me + 1) % p, (me + p - 1) % p, &[me as f64; 4]);
            (m.payload[0] as usize, rank.time())
        });
        for r in 0..5 {
            assert_eq!(out.values[r].0, (r + 4) % 5);
            assert_eq!(out.values[r].1, 4.0);
        }
    }

    #[test]
    fn out_of_order_senders_are_matched_by_source() {
        let out = World::new(3, bw()).run(|rank| {
            let wc = rank.world_comm();
            match rank.world_rank() {
                0 => {
                    // Receive from 2 first even though 1 may arrive earlier.
                    let a = rank.recv(&wc, 2).payload[0];
                    let b = rank.recv(&wc, 1).payload[0];
                    a * 100.0 + b
                }
                r => {
                    rank.send(&wc, 0, &[r as f64]);
                    0.0
                }
            }
        });
        assert_eq!(out.values[0], 201.0);
    }

    #[test]
    fn fifo_per_sender_is_preserved() {
        let out = World::new(2, bw()).run(|rank| {
            let wc = rank.world_comm();
            if rank.world_rank() == 1 {
                for i in 0..10 {
                    rank.send(&wc, 0, &[i as f64]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| rank.recv(&wc, 1).payload[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(out.values[0], (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_into_rows_and_exchange() {
        // 4 ranks in a 2x2 grid; split by row, exchange within row.
        let out = World::new(4, bw()).run(|rank| {
            let wc = rank.world_comm();
            let row = (rank.world_rank() / 2) as i64;
            let comm = rank.split(&wc, row, rank.world_rank() as i64).unwrap();
            assert_eq!(comm.size(), 2);
            let partner = 1 - comm.index();
            let m = rank.sendrecv(&comm, partner, &[rank.world_rank() as f64]);
            m.payload[0]
        });
        assert_eq!(out.values, vec![1.0, 0.0, 3.0, 2.0]);
    }

    #[test]
    fn nested_splits() {
        // 8 ranks → split into halves → split each half into pairs.
        let out = World::new(8, bw()).run(|rank| {
            let wc = rank.world_comm();
            let r = rank.world_rank();
            let half = rank.split(&wc, (r / 4) as i64, r as i64).unwrap();
            assert_eq!(half.size(), 4);
            let pair = rank.split(&half, (half.index() / 2) as i64, half.index() as i64).unwrap();
            assert_eq!(pair.size(), 2);
            let m = rank.sendrecv(&pair, 1 - pair.index(), &[r as f64]);
            m.payload[0] as usize
        });
        assert_eq!(out.values, vec![1, 0, 3, 2, 5, 4, 7, 6]);
    }

    #[test]
    fn split_opt_out_with_negative_color() {
        let out = World::new(4, bw()).run(|rank| {
            let wc = rank.world_comm();
            let color = if rank.world_rank() < 2 { 0 } else { -1 };
            rank.split(&wc, color, 0).map(|c| c.size())
        });
        assert_eq!(out.values, vec![Some(2), Some(2), None, None]);
    }

    #[test]
    fn memory_tracking_and_limit() {
        let out = World::new(1, bw()).with_memory_limit(Some(1000)).run(|rank| {
            rank.mem_acquire(600);
            let err = rank.try_mem_acquire(500).unwrap_err();
            assert_eq!(err.limit, 1000);
            rank.mem_acquire(400);
            rank.mem_release(1000);
            rank.mem().peak()
        });
        assert_eq!(out.values[0], 1000);
    }

    #[test]
    fn compute_meters_flops() {
        let out = World::new(1, MachineParams::new(0.0, 0.0, 2.0)).run(|rank| {
            rank.compute(21.0);
            (rank.meter().flops, rank.time())
        });
        assert_eq!(out.values[0], (21.0, 42.0));
    }

    #[test]
    fn traces_record_sends_and_recvs() {
        let out = World::new(2, bw()).with_trace(true).run(|rank| {
            let wc = rank.world_comm();
            rank.mark("phase-1");
            if rank.world_rank() == 0 {
                rank.send(&wc, 1, &[1.0, 2.0]);
            } else {
                rank.recv(&wc, 0);
            }
        });
        let t0 = out.reports[0].trace.as_ref().unwrap();
        assert_eq!(t0[0].op, TraceOp::Mark("phase-1".into()));
        assert_eq!(
            t0[1],
            TraceEvent {
                ctx: 0,
                op: TraceOp::Send { to_world: 1 },
                words: 2,
                retry_words: 0,
                t0: 0.0,
                t1: 2.0,
            }
        );
        let t1 = out.reports[1].trace.as_ref().unwrap();
        assert_eq!(t1[1].op, TraceOp::Recv { from_world: 0 });
        assert_eq!(t1[1].words, 2);
        assert_eq!(t1[1].t1, 2.0);
    }

    #[test]
    fn phase_scopes_bracket_events_at_no_cost() {
        let out = World::new(2, bw()).with_trace(true).run(|rank| {
            let wc = rank.world_comm();
            let partner = 1 - rank.world_rank();
            crate::phase!(rank, "swap", rank.sendrecv(&wc, partner, &[0.0; 3]));
            rank.time()
        });
        assert_eq!(out.values[0], 3.0, "phase scopes must not advance the clock");
        let t0 = out.reports[0].trace.as_ref().unwrap();
        assert_eq!(t0[0].op, TraceOp::PhaseBegin { label: "swap" });
        assert!(matches!(t0.last().unwrap().op, TraceOp::PhaseEnd { label: "swap" }));
        // The duplex exchange traces a zero-width send and a full-width recv.
        assert_eq!((t0[1].t0, t0[1].t1), (0.0, 0.0));
        assert_eq!((t0[2].t0, t0[2].t1), (0.0, 3.0));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let out = World::new(1, bw()).run(|rank| {
            rank.phase_begin("p");
            rank.compute(4.0);
            rank.phase_end("p");
        });
        assert!(out.reports[0].trace.is_none(), "tracing off ⇒ no buffer at all");
    }
}
