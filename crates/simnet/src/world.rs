//! World construction: run a rank program on an execution engine —
//! the single-threaded deterministic event loop ([`Engine::EventLoop`],
//! the primary engine for async programs) or one OS thread per rank
//! ([`Engine::Threads`]) — and collect reports.

use std::future::Future;
use std::panic::AssertUnwindSafe;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use pmm_model::{Cost, MachineParams};

use crate::engine::{engine_from_env, poll_now, Engine, LocalBoxFuture};
use crate::fabric::Fabric;
use crate::fault::{FaultPanic, FaultPlan};
use crate::meter::Meter;
use crate::rank::Rank;
use crate::trace::{ChoicePoint, Repro, Schedule, ScheduleTrace};
use crate::tracer::{TraceEvent, Tracer};
use crate::verify::{lock_unpoisoned, AbortPanic, VerifyConfig, VerifyState};

/// Worlds at or below this size run the vector-clock happens-before
/// audit by default; larger worlds skip it (each stamp copies an O(P)
/// clock onto every message, which is O(P²) total — prohibitive at the
/// 10^5–10^6 scales the event-loop engine targets). Override with
/// [`World::with_vclock_audit`].
const VCLOCK_AUDIT_MAX_WORLD: usize = 4096;

/// Marks a rank `done` in the verify registry on scope exit — including
/// panics — so the watchdog treats dead ranks as inert (anyone blocked on
/// them is then provably deadlocked, not "maybe about to be served").
struct DoneGuard<'a> {
    verify: &'a VerifyState,
    rank: usize,
}

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        self.verify.mark_done(self.rank);
    }
}

/// Retires a rank from the deterministic scheduler on scope exit —
/// including panics — so the baton is handed on (or a deadlock among the
/// survivors is reported) when a rank dies. No-op in free-running mode.
struct SchedGuard<'a> {
    fabric: &'a Fabric,
    rank: usize,
}

impl Drop for SchedGuard<'_> {
    fn drop(&mut self) {
        self.fabric.sched_finish(self.rank);
    }
}

/// Rank threads torn down by a verifier abort die via a sentinel
/// [`AbortPanic`] that `World::run` filters out — but each such death
/// would also print the default "thread panicked" message and backtrace,
/// burying the one report that matters under per-rank teardown noise.
/// Chain a process-wide panic hook (installed once; everything that is
/// not the sentinel is delegated to the previously installed hook) that
/// swallows exactly that sentinel.
fn silence_abort_teardown_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // FaultPanic is the injected-kill sentinel: either the program
            // converts it to a typed error via Rank::catch_failures, or
            // World::run raises a single rank-failure report after the
            // joins. Per-thread noise helps neither case.
            if info.payload().downcast_ref::<AbortPanic>().is_none()
                && info.payload().downcast_ref::<FaultPanic>().is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Configuration for a simulated machine run.
///
/// ```
/// use pmm_simnet::{World, MachineParams};
/// let result = World::new(8, MachineParams::BANDWIDTH_ONLY)
///     .run(|rank| rank.world_rank() * 2);
/// assert_eq!(result.values[3], 6);
/// ```
#[derive(Clone)]
pub struct World {
    size: usize,
    params: MachineParams,
    mem_limit: Option<u64>,
    trace: bool,
    stack_bytes: usize,
    verify: VerifyConfig,
    schedule: Option<Schedule>,
    faults: Option<FaultPlan>,
    engine: Option<Engine>,
    record_schedule: bool,
    targeted_wakeup: bool,
    vclock_audit: Option<bool>,
}

/// One rank's resumable continuation on the event loop: `Some` while the
/// program is still suspended, `None` once it has produced its value and
/// report.
type RankCell<'f, T> = Option<Pin<Box<dyn Future<Output = (T, RankReport)> + 'f>>>;

impl World {
    /// A world of `size` ranks with machine parameters `params`.
    pub fn new(size: usize, params: MachineParams) -> World {
        assert!(size >= 1, "world size must be >= 1");
        World {
            size,
            params,
            mem_limit: None,
            trace: false,
            stack_bytes: 4 << 20,
            verify: VerifyConfig::default(),
            schedule: None,
            faults: None,
            engine: None,
            record_schedule: true,
            targeted_wakeup: false,
            vclock_audit: None,
        }
    }

    /// Run under the seeded deterministic scheduler: rank progress is
    /// serialized at every blocking point (mailbox receive, split
    /// rendezvous, barrier) and at every send / collective entry, with
    /// ties among runnable ranks broken by a PRNG seeded with `seed`.
    /// Identical `(program, seed)` pairs produce byte-identical schedule
    /// traces ([`WorldResult::schedule_trace`]); failure reports name the
    /// seed and a `PMM_SEED=` repro command. See also
    /// [`seed_from_env`](crate::trace::seed_from_env) and
    /// [`fuzz_schedules`](crate::trace::fuzz_schedules).
    #[must_use]
    pub fn with_seed(self, seed: u64) -> World {
        self.with_schedule(Schedule::Seeded(seed))
    }

    /// Run under the deterministic scheduler with an explicit
    /// [`Schedule`]: either [`Schedule::Seeded`] (what [`World::with_seed`]
    /// is sugar for) or [`Schedule::Prefix`] — replay a recorded choice
    /// prefix pick by pick, then complete canonically by always picking
    /// the smallest runnable rank. Prefix runs record the same trace and
    /// [`ChoicePoint`] stream as seeded runs ([`WorldResult::choice_points`]),
    /// which is what schedule-space exploration (`pmm-explore`) drives:
    /// each explored branch is just a `World` run with a longer prefix.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Schedule) -> World {
        self.schedule = Some(schedule);
        self
    }

    /// Pin the execution engine for [`World::run_async`] /
    /// [`World::try_run_async`], overriding the `PMM_ENGINE` environment
    /// variable (see [`crate::engine`] for the selection precedence).
    /// Sync-closure [`World::run`] / [`World::try_run`] always use the
    /// thread backend: a sync closure cannot suspend, and blocking the
    /// single event-loop thread would wedge the whole world.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> World {
        self.engine = Some(engine);
        self
    }

    /// Toggle recording of the [`ScheduleTrace`] / [`ChoicePoint`] stream
    /// on deterministic runs (on by default). Large-`P` runs turn this
    /// off: the recorded ready-set snapshot is O(P) *per pick*, which is
    /// the difference between executing 10^6 ranks and drowning in
    /// bookkeeping. With recording off, [`WorldResult::schedule_trace`]
    /// and [`WorldResult::choice_points`] are `None` even on seeded runs.
    #[must_use]
    pub fn with_schedule_recording(mut self, record: bool) -> World {
        self.record_schedule = record;
        self
    }

    /// Opt into targeted wakeups in the deterministic scheduler: a rank
    /// blocked on a mailbox / split / barrier becomes runnable only when
    /// *that* resource is touched, instead of at every unblock broadcast.
    /// This keeps the runnable set small at large `P` (fewer spurious
    /// ready→blocked→ready round trips), but changes which ranks are
    /// runnable at each pick and therefore the schedule stream — seeded
    /// golden traces recorded without it will not match. Off by default.
    #[must_use]
    pub fn with_targeted_wakeup(mut self, targeted: bool) -> World {
        self.targeted_wakeup = targeted;
        self
    }

    /// Force the vector-clock happens-before audit on or off. By default
    /// it is on for worlds of at most 4096 ranks and off above that
    /// (every message would carry an O(P) clock — O(P²) words of pure
    /// bookkeeping at the scales the event engine targets).
    #[must_use]
    pub fn with_vclock_audit(mut self, audit: bool) -> World {
        self.vclock_audit = Some(audit);
        self
    }

    /// Whether ranks of this world stamp and audit vector clocks.
    fn vclock_audit_on(&self) -> bool {
        self.vclock_audit.unwrap_or(self.size <= VCLOCK_AUDIT_MAX_WORLD)
    }

    /// The engine [`World::run_async`] will use: explicit builder choice,
    /// else `PMM_ENGINE`, else the event loop.
    fn resolved_engine(&self) -> Engine {
        self.engine.unwrap_or_else(|| engine_from_env(Engine::EventLoop))
    }

    /// Attach a fault plan: message-level faults (drop / duplicate /
    /// corrupt / delay, absorbed by the reliable-delivery layer and
    /// metered as retry overhead), stragglers, and rank kills. Fault
    /// decisions draw from the plan's own seed when set, otherwise from
    /// the schedule seed's SplitMix64 stream — either way
    /// `(program, seed, plan)` replays byte-identically.
    ///
    /// Panics (on [`World::run`]) if the plan is malformed — rates
    /// outside `[0, 1)`, nonpositive straggler factors, etc.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> World {
        self.faults = Some(plan);
        self
    }

    /// Set a per-rank local memory capacity `M` in words (§6.2). `None`
    /// models the memory-independent setting (M = ∞).
    #[must_use]
    pub fn with_memory_limit(mut self, limit: Option<u64>) -> World {
        self.mem_limit = limit;
        self
    }

    /// Enable per-rank structured event traces (see [`crate::tracer`]):
    /// every message, compute call, collective entry, and phase scope is
    /// recorded with its word counts and clock interval, and
    /// [`WorldResult::tracer`] assembles the per-world [`Tracer`]
    /// analyses. Off by default — and genuinely zero-cost when off: no
    /// buffer exists and no emission site does more than one branch.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> World {
        self.trace = trace;
        self
    }

    /// Per-rank thread stack size (default 4 MiB).
    #[must_use]
    pub fn with_stack_bytes(mut self, bytes: usize) -> World {
        self.stack_bytes = bytes;
        self
    }

    /// Run the deadlock watchdog with the given scan interval. In debug
    /// builds (which is what `cargo test` exercises) the watchdog is on by
    /// default with a 2 s interval; release builds opt in with this
    /// method. A confirmed deadlock aborts the run with a report naming
    /// every blocked rank, its operation, communicator context, and call
    /// site — instead of hanging.
    #[must_use]
    pub fn with_watchdog(mut self, interval: Duration) -> World {
        self.verify.watchdog = Some(interval);
        self
    }

    /// Disable the deadlock watchdog (debug builds enable it by default).
    /// A program that deadlocks in such a world blocks forever, exactly
    /// as under MPI.
    #[must_use]
    pub fn without_watchdog(mut self) -> World {
        self.verify.watchdog = None;
        self
    }

    /// Additionally fail the run if any message was sent but never
    /// received (undrained mailboxes or receive stashes at exit), and
    /// verify that the meters conserve traffic globally (Σ sent = Σ
    /// received). Off by default: programs are allowed to exit with
    /// traffic in flight.
    #[must_use]
    pub fn with_strict_drain(mut self, strict: bool) -> World {
        self.verify.strict_drain = strict;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The canonical replay recipe for runs of this world configuration.
    pub fn repro(&self) -> Repro {
        self.schedule.as_ref().map_or(Repro::Unseeded, Schedule::repro)
    }

    /// Run `program` on every rank simultaneously and collect the results.
    ///
    /// Panics in any rank propagate (with the rank id) after all threads
    /// are joined. If the verifier aborts the run (deadlock, collective
    /// mismatch), `run` panics with the verifier's report.
    pub fn run<T, F>(&self, program: F) -> WorldResult<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Send + Sync,
    {
        Self::unwrap_run(self.run_impl(program))
    }

    /// Panic with the canonical failure formatting (what [`World::run`]
    /// and [`World::run_async`] do with a failed raw run).
    fn unwrap_run<T>(result: Result<WorldResult<T>, RunFailureRaw>) -> WorldResult<T> {
        match result {
            Ok(out) => out,
            Err(raw) => {
                let note = raw.repro.note();
                match raw.error {
                    RunError::Report(report) => panic!("{report}\n[{note}]"),
                    RunError::RankPanic { rank, payload } => {
                        eprintln!("pmm-simnet: rank {rank} panicked [{note}]");
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    }

    /// Convert a raw failure into the public [`RunFailure`] value (what
    /// the `try_` runners return).
    fn raw_failure(raw: RunFailureRaw) -> RunFailure {
        let report = match raw.error {
            RunError::Report(r) => r,
            RunError::RankPanic { rank, payload } => {
                format!("pmm-simnet: rank {rank} panicked: {}", panic_message(&*payload))
            }
        };
        RunFailure {
            report,
            repro: raw.repro,
            schedule_trace: raw.schedule_trace,
            choice_points: raw.choice_points,
        }
    }

    /// Run an **async** rank program on the selected [`Engine`].
    ///
    /// On [`Engine::EventLoop`] (the default) every rank is a resumable
    /// continuation on a single-threaded deterministic event loop — this
    /// is what executes worlds of 10^5–10^6 ranks for real. The run is
    /// always deterministic: without an explicit schedule it uses the
    /// canonical [`Schedule::Prefix`]`(vec![])` (smallest runnable rank
    /// at every pick). On [`Engine::Threads`] the same program runs on
    /// the thread backend, where each async primitive completes in a
    /// single poll — schedules, traces, meters, and clocks are
    /// byte-identical across the two engines for the same [`Schedule`].
    ///
    /// `program` is a boxing closure:
    /// `world.run_async(|rank| Box::pin(async move { ... }))`.
    pub fn run_async<T, F>(&self, program: F) -> WorldResult<T>
    where
        T: Send,
        F: for<'a> Fn(&'a mut Rank) -> LocalBoxFuture<'a, T> + Send + Sync,
    {
        match self.resolved_engine() {
            Engine::EventLoop => Self::unwrap_run(self.run_event_impl(&program)),
            Engine::Threads => Self::unwrap_run(self.run_impl(|rank| poll_now(program(rank)))),
        }
    }

    /// Like [`World::run_async`], but capture every failure as a
    /// [`RunFailure`] value instead of panicking (the async analogue of
    /// [`World::try_run`]).
    pub fn try_run_async<T, F>(&self, program: F) -> Result<WorldResult<T>, RunFailure>
    where
        T: Send,
        F: for<'a> Fn(&'a mut Rank) -> LocalBoxFuture<'a, T> + Send + Sync,
    {
        match self.resolved_engine() {
            Engine::EventLoop => self.run_event_impl(&program).map_err(Self::raw_failure),
            Engine::Threads => {
                self.run_impl(|rank| poll_now(program(rank))).map_err(Self::raw_failure)
            }
        }
    }

    /// Like [`World::run`], but capture every failure — rank panic,
    /// verifier abort, unhandled rank failure, strict-drain violation —
    /// as a [`RunFailure`] value instead of panicking. The failure
    /// carries whatever the deterministic scheduler recorded before the
    /// run died (trace, [`ChoicePoint`] stream, replay recipe), which is
    /// what lets schedule-space exploration keep walking the choice tree
    /// through failing branches.
    pub fn try_run<T, F>(&self, program: F) -> Result<WorldResult<T>, RunFailure>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Send + Sync,
    {
        self.run_impl(program).map_err(Self::raw_failure)
    }

    /// Build the fabric shared by both engines: deterministic schedule
    /// (if any) and fault plan. No explicit fault seed: derive one from
    /// the schedule seed's SplitMix64 stream (0 for unseeded and
    /// prefix-replay worlds), so a single PMM_SEED pins both the
    /// interleaving and the fault pattern.
    fn make_fabric(&self, schedule: Option<Schedule>) -> Fabric {
        let mut fabric = Fabric::new(self.size);
        if let Some(schedule) = schedule {
            fabric.enable_schedule(schedule, self.record_schedule, self.targeted_wakeup);
        }
        if let Some(plan) = &self.faults {
            let fault_seed = plan.seed.unwrap_or_else(|| {
                let mut s = match &self.schedule {
                    Some(Schedule::Seeded(seed)) => *seed,
                    _ => 0,
                };
                crate::fabric::splitmix64(&mut s)
            });
            fabric.enable_faults(plan.clone(), fault_seed);
        }
        fabric
    }

    fn run_impl<T, F>(&self, program: F) -> Result<WorldResult<T>, RunFailureRaw>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Send + Sync,
    {
        silence_abort_teardown_panics();
        let fabric = Arc::new(self.make_fabric(self.schedule.clone()));
        let members: Arc<Vec<usize>> = Arc::new((0..self.size).collect());
        let mut slots: Vec<Option<(T, RankReport)>> = Vec::with_capacity(self.size);
        for _ in 0..self.size {
            slots.push(None);
        }
        let strict_drain = self.verify.strict_drain;
        let vclock_audit = self.vclock_audit_on();

        let scope_result: Result<(), RunError> = std::thread::scope(|scope| {
            // Stop signal for the watchdog: flag + condvar so shutdown is
            // immediate rather than waiting out a scan interval.
            let watchdog_stop = Arc::new((Mutex::new(false), Condvar::new()));
            let watchdog = self.verify.watchdog.map(|interval| {
                let fabric = fabric.clone();
                let stop = watchdog_stop.clone();
                std::thread::Builder::new()
                    .name("pmm-watchdog".to_string())
                    .spawn_scoped(scope, move || {
                        let (lock, cv) = &*stop;
                        let mut candidate = None;
                        let mut stopped = lock_unpoisoned(lock);
                        while !*stopped {
                            let (guard, timeout) = cv
                                .wait_timeout(stopped, interval)
                                .unwrap_or_else(PoisonError::into_inner);
                            stopped = guard;
                            if *stopped || !timeout.timed_out() {
                                continue;
                            }
                            drop(stopped);
                            if let Some(report) = fabric.watchdog_scan(&mut candidate) {
                                fabric.abort(report);
                            }
                            stopped = lock_unpoisoned(lock);
                        }
                    })
                    .expect("failed to spawn watchdog thread")
            });

            let mut handles = Vec::with_capacity(self.size);
            for (r, slot) in slots.iter_mut().enumerate() {
                let fabric = fabric.clone();
                let members = members.clone();
                let program = &program;
                let params = self.params;
                let mem_limit = self.mem_limit;
                let trace = self.trace;
                let builder = std::thread::Builder::new()
                    .name(format!("pmm-rank-{r}"))
                    .stack_size(self.stack_bytes);
                let handle = builder
                    .spawn_scoped(scope, move || {
                        let _done = DoneGuard { verify: &fabric.verify, rank: r };
                        let _sched = SchedGuard { fabric: &fabric, rank: r };
                        fabric.sched_attach(r);
                        let mut rank = Rank::new(
                            r,
                            members,
                            fabric.clone(),
                            params,
                            mem_limit,
                            trace,
                            vclock_audit,
                        );
                        let value = program(&mut rank);
                        if strict_drain {
                            if let Some(desc) = rank.undrained_stash() {
                                // A verifier abort, not a rank panic: the
                                // violation surfaces as a report and the
                                // AbortPanic teardown stays quiet.
                                fabric.abort(format!(
                                    "pmm-verify: rank {r} finished with undrained receive \
                                     stash: {desc}"
                                ));
                                fabric.verify.abort_panic(r);
                            }
                        }
                        let report = RankReport {
                            meter: rank.meter(),
                            time: rank.time(),
                            peak_mem_words: rank.mem().peak(),
                            trace: rank.take_trace(),
                            final_vclock: rank.final_vclock(),
                        };
                        *slot = Some((value, report));
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }

            let mut first_panic = None;
            let mut abort_note: Option<String> = None;
            let mut fault_note: Option<String> = None;
            for (r, h) in handles.into_iter().enumerate() {
                if let Err(payload) = h.join() {
                    // Ranks torn down by a verifier abort carry an
                    // AbortPanic; the report is raised once, below. A
                    // FaultPanic is an injected kill the program chose not
                    // to catch — reported once, after genuine panics. Any
                    // other panic is the program's own and wins.
                    if let Some(AbortPanic(note)) = payload.downcast_ref::<AbortPanic>() {
                        abort_note.get_or_insert_with(|| note.clone());
                    } else if let Some(FaultPanic(failed)) = payload.downcast_ref::<FaultPanic>() {
                        fault_note.get_or_insert_with(|| failed.to_string());
                    } else {
                        first_panic.get_or_insert((r, payload));
                    }
                }
            }

            // All ranks are done; retire the watchdog before deciding the
            // run's fate so it cannot fire on a finished world.
            if let Some(h) = watchdog {
                *lock_unpoisoned(&watchdog_stop.0) = true;
                watchdog_stop.1.notify_all();
                h.join().expect("watchdog thread panicked");
            }

            if let Some((r, payload)) = first_panic {
                return Err(RunError::RankPanic { rank: r, payload });
            }
            if fabric.verify.is_aborted() {
                let report =
                    fabric.verify.report_text().or(abort_note).unwrap_or_else(|| {
                        "pmm-verify: world aborted with no stored report".into()
                    });
                return Err(RunError::Report(report));
            }
            if let Some(detail) = fault_note {
                return Err(RunError::Report(format!(
                    "pmm-fault: rank failure was not handled by the program — {detail}\n\
                     (wrap the failable region in Rank::catch_failures to recover)"
                )));
            }
            Ok(())
        });

        self.collect(&fabric, slots, scope_result)
    }

    /// Run an async program on the single-threaded deterministic event
    /// loop. Every rank is a pinned continuation in a slab
    /// ([`RankCell`]s); the loop polls exactly the rank the scheduler's
    /// baton names, so a blocked rank costs one suspended future, not a
    /// parked OS thread. Deadlock and divergence are proven synchronously
    /// at pick time (there is no watchdog thread — and no need for one).
    fn run_event_impl<T, F>(&self, program: &F) -> Result<WorldResult<T>, RunFailureRaw>
    where
        T: Send,
        F: for<'a> Fn(&'a mut Rank) -> LocalBoxFuture<'a, T> + Send + Sync,
    {
        silence_abort_teardown_panics();
        // The event loop *is* the deterministic scheduler; without an
        // explicit schedule, run under the canonical one (empty prefix:
        // smallest runnable rank at every pick).
        let schedule = self.schedule.clone().unwrap_or(Schedule::Prefix(Vec::new()));
        let mut fabric = self.make_fabric(Some(schedule));
        fabric.enable_event_loop();
        let fabric = Arc::new(fabric);
        let members: Arc<Vec<usize>> = Arc::new((0..self.size).collect());
        let strict_drain = self.verify.strict_drain;
        let vclock_audit = self.vclock_audit_on();

        let mut slots: Vec<Option<(T, RankReport)>> = Vec::with_capacity(self.size);
        let mut cells: Vec<RankCell<'_, T>> = Vec::with_capacity(self.size);
        for r in 0..self.size {
            slots.push(None);
            let fabric = fabric.clone();
            let members = members.clone();
            let params = self.params;
            let mem_limit = self.mem_limit;
            let trace = self.trace;
            cells.push(Some(Box::pin(async move {
                let mut rank =
                    Rank::new(r, members, fabric.clone(), params, mem_limit, trace, vclock_audit);
                let value = program(&mut rank).await;
                if strict_drain {
                    if let Some(desc) = rank.undrained_stash() {
                        fabric.abort(format!(
                            "pmm-verify: rank {r} finished with undrained receive \
                             stash: {desc}"
                        ));
                        fabric.verify.abort_panic(r);
                    }
                }
                let report = RankReport {
                    meter: rank.meter(),
                    time: rank.time(),
                    peak_mem_words: rank.mem().peak(),
                    trace: rank.take_trace(),
                    final_vclock: rank.final_vclock(),
                };
                (value, report)
            })));
        }

        // All ranks enter the scheduler at once; the first pick is made
        // here (identical to the last thread attaching in thread mode).
        fabric.sched_attach_all();

        let mut remaining = self.size;
        let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        let mut abort_note: Option<String> = None;
        let mut fault_note: Option<String> = None;
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        while remaining > 0 && !fabric.verify.is_aborted() {
            let Some(r) = fabric.sched_current() else {
                if fabric.verify.is_aborted() {
                    break;
                }
                panic!(
                    "pmm-engine: event loop stalled with {remaining} unfinished rank(s) and \
                     no baton holder — scheduler bug"
                );
            };
            let cell = cells[r].as_mut().expect("baton held by a finished rank");
            match std::panic::catch_unwind(AssertUnwindSafe(|| cell.as_mut().poll(&mut cx))) {
                Ok(Poll::Pending) => {
                    // The continuation yielded the baton; the pick it made
                    // on the way out tells the next iteration whom to poll.
                }
                Ok(Poll::Ready((value, report))) => {
                    cells[r] = None;
                    slots[r] = Some((value, report));
                    remaining -= 1;
                    // Same order as the thread backend's scope guards:
                    // retire from the scheduler first, then mark done in
                    // the verifier registry.
                    fabric.sched_finish(r);
                    fabric.verify.mark_done(r);
                }
                Err(payload) => {
                    cells[r] = None;
                    remaining -= 1;
                    // Classification mirrors the thread-join loop below.
                    if let Some(AbortPanic(note)) = payload.downcast_ref::<AbortPanic>() {
                        abort_note.get_or_insert_with(|| note.clone());
                    } else if let Some(FaultPanic(failed)) = payload.downcast_ref::<FaultPanic>() {
                        fault_note.get_or_insert_with(|| failed.to_string());
                    } else {
                        first_panic.get_or_insert((r, payload));
                    }
                    fabric.sched_finish(r);
                    fabric.verify.mark_done(r);
                }
            }
        }

        // Continuations of ranks that never ran to completion (the world
        // aborted) are dropped here on a non-panicking thread; flag the
        // teardown so leak checks in Drop impls (RecvRequest) stay quiet,
        // exactly as `std::thread::panicking()` keeps them quiet on the
        // thread backend.
        if cells.iter().any(Option::is_some) {
            crate::rank::begin_abort_teardown();
            cells.clear();
            crate::rank::end_abort_teardown();
        }
        drop(cells);

        let scope_result: Result<(), RunError> = if let Some((r, payload)) = first_panic {
            Err(RunError::RankPanic { rank: r, payload })
        } else if fabric.verify.is_aborted() {
            let report = fabric
                .verify
                .report_text()
                .or(abort_note)
                .unwrap_or_else(|| "pmm-verify: world aborted with no stored report".into());
            Err(RunError::Report(report))
        } else if let Some(detail) = fault_note {
            Err(RunError::Report(format!(
                "pmm-fault: rank failure was not handled by the program — {detail}\n\
                 (wrap the failable region in Rank::catch_failures to recover)"
            )))
        } else {
            Ok(())
        };
        self.collect(&fabric, slots, scope_result)
    }

    /// Shared epilogue of both engines: harvest the scheduler's artifacts
    /// and the canonical replay recipe exactly once on every failure path
    /// (prefix replays report the choices actually made, seeded runs
    /// their seed), run the strict-drain audits, and assemble the
    /// [`WorldResult`].
    fn collect<T>(
        &self,
        fabric: &Fabric,
        slots: Vec<Option<(T, RankReport)>>,
        scope_result: Result<(), RunError>,
    ) -> Result<WorldResult<T>, RunFailureRaw> {
        let fail = |error: RunError| RunFailureRaw {
            error,
            repro: fabric.sched_repro().unwrap_or(Repro::Unseeded),
            schedule_trace: fabric.take_sched_trace(),
            choice_points: fabric.take_choice_points(),
        };
        if let Err(error) = scope_result {
            return Err(fail(error));
        }

        let strict_drain = self.verify.strict_drain;
        if strict_drain {
            let residual = fabric.residual_messages();
            if !residual.is_empty() {
                return Err(fail(RunError::Report(format!(
                    "pmm-verify: world finished with {} undrained mailbox(es) \
                     [(ctx, member, messages)]: {residual:?}",
                    residual.len()
                ))));
            }
        }

        let (values, reports): (Vec<T>, Vec<RankReport>) =
            slots.into_iter().map(|s| s.expect("rank completed without panicking")).unzip();

        if strict_drain {
            let sent: u64 = reports.iter().map(|r| r.meter.words_sent).sum();
            let recv: u64 = reports.iter().map(|r| r.meter.words_recv).sum();
            let msent: u64 = reports.iter().map(|r| r.meter.msgs_sent).sum();
            let mrecv: u64 = reports.iter().map(|r| r.meter.msgs_recv).sum();
            if sent != recv || msent != mrecv {
                return Err(fail(RunError::Report(format!(
                    "pmm-verify: meter conservation violated: {sent} words sent vs {recv} \
                     received, {msent} messages sent vs {mrecv} received"
                ))));
            }
        }
        Ok(WorldResult {
            params: self.params,
            values,
            reports,
            schedule_trace: fabric.take_sched_trace(),
            choice_points: fabric.take_choice_points(),
        })
    }
}

/// How a run died, before formatting.
enum RunError {
    /// A report-shaped failure (verifier abort, unhandled rank failure,
    /// strict-drain violation).
    Report(String),
    /// A rank's program panicked with its own payload.
    RankPanic { rank: usize, payload: Box<dyn std::any::Any + Send> },
}

/// [`World::run_impl`]'s error: the failure plus the scheduler artifacts
/// harvested from the fabric.
struct RunFailureRaw {
    error: RunError,
    repro: Repro,
    schedule_trace: Option<ScheduleTrace>,
    choice_points: Option<Vec<ChoicePoint>>,
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(AbortPanic(s)) = payload.downcast_ref::<AbortPanic>() {
        s.clone()
    } else if let Some(FaultPanic(f)) = payload.downcast_ref::<FaultPanic>() {
        f.to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A failed [`World::try_run`], as a value: the failure report, the
/// canonical replay recipe ([`Repro`]), and the schedule artifacts
/// recorded before the run died.
#[derive(Debug)]
pub struct RunFailure {
    /// The failure report (verifier report, rank panic text, fault note,
    /// strict-drain violation, ...).
    pub report: String,
    /// Canonical replay recipe for this run's schedule.
    pub repro: Repro,
    /// Schedule trace recorded up to the failure; `Some` iff the run was
    /// deterministic.
    pub schedule_trace: Option<ScheduleTrace>,
    /// [`ChoicePoint`] stream recorded up to the failure; `Some` iff the
    /// run was deterministic.
    pub choice_points: Option<Vec<ChoicePoint>>,
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n[{}]", self.report, self.repro.note())
    }
}

impl std::error::Error for RunFailure {}

/// Final accounting for one rank.
#[derive(Debug, Clone)]
pub struct RankReport {
    /// Cumulative traffic/compute counters.
    pub meter: Meter,
    /// Final critical-path clock.
    pub time: f64,
    /// Memory high-water mark in words.
    pub peak_mem_words: u64,
    /// Structured event trace, if the world ran with
    /// [`World::with_trace`]`(true)`.
    pub trace: Option<Vec<TraceEvent>>,
    /// Final happens-before vector clock, indexed by world rank (see
    /// `crate::verify`).
    pub final_vclock: Vec<u64>,
}

/// Results of a [`World::run`]: per-rank return values and reports, plus
/// aggregate views.
#[derive(Debug)]
pub struct WorldResult<T> {
    /// Machine parameters of the run.
    pub params: MachineParams,
    /// Per-rank return values, indexed by world rank.
    pub values: Vec<T>,
    /// Per-rank reports, indexed by world rank.
    pub reports: Vec<RankReport>,
    /// The recorded schedule trace; `Some` iff the world ran under
    /// [`World::with_seed`] / [`World::with_schedule`]. Byte-identical
    /// across runs of the same `(program, schedule)` pair — see
    /// [`ScheduleTrace::render`].
    pub schedule_trace: Option<ScheduleTrace>,
    /// The recorded scheduler pick stream; `Some` iff the world ran
    /// deterministically. One [`ChoicePoint`] per pick: the runnable
    /// set, the chosen rank, and the fabric resources the chosen
    /// segment touched — the raw material for schedule-space
    /// exploration (replay any prefix of `chosen` values via
    /// [`Schedule::Prefix`] to steer a re-run down the same branch).
    pub choice_points: Option<Vec<ChoicePoint>>,
}

impl<T> WorldResult<T> {
    /// The simulated makespan: the maximum final clock over ranks. Under
    /// [`MachineParams::BANDWIDTH_ONLY`] this is the bandwidth cost along
    /// the critical path — the quantity Theorem 3 lower-bounds.
    pub fn critical_path_time(&self) -> f64 {
        self.reports.iter().map(|r| r.time).fold(0.0, f64::max)
    }

    /// Total words sent across all ranks (each word counted once at the
    /// sender).
    pub fn total_words_sent(&self) -> f64 {
        self.reports.iter().map(|r| r.meter.words_sent as f64).sum()
    }

    /// Maximum over ranks of `max(words_sent, words_recv)` — the per-rank
    /// duplex communication volume.
    pub fn max_duplex_words(&self) -> u64 {
        self.reports.iter().map(|r| r.meter.duplex_words()).max().unwrap_or(0)
    }

    /// Maximum flops performed by any rank.
    pub fn max_flops(&self) -> f64 {
        self.reports.iter().map(|r| r.meter.flops).fold(0.0, f64::max)
    }

    /// Maximum memory high-water mark over ranks, in words.
    pub fn max_peak_mem_words(&self) -> u64 {
        self.reports.iter().map(|r| r.peak_mem_words).max().unwrap_or(0)
    }

    /// Assemble the per-world [`Tracer`] from the per-rank event streams;
    /// `Some` iff the world ran with [`World::with_trace`]`(true)`. The
    /// tracer provides per-phase goodput totals, the critical-path
    /// attribution, and the Chrome JSON / text exports (see
    /// [`crate::tracer`]).
    pub fn tracer(&self) -> Option<Tracer> {
        let streams: Option<Vec<Vec<TraceEvent>>> =
            self.reports.iter().map(|r| r.trace.clone()).collect();
        streams.map(Tracer::from_streams)
    }

    /// Aggregate critical-path [`Cost`] view: message/word/flop maxima are
    /// taken per rank and the largest is reported (exact for the
    /// symmetric schedules used throughout this workspace).
    pub fn critical_path_cost(&self) -> Cost {
        let mut c = Cost::ZERO;
        for r in &self.reports {
            c = c.par(Cost {
                messages: r.meter.msgs_sent.max(r.meter.msgs_recv) as f64,
                words: r.meter.duplex_words() as f64,
                flops: r.meter.flops,
            });
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_indexed_by_world_rank() {
        let out = World::new(5, MachineParams::BANDWIDTH_ONLY).run(|r| r.world_rank());
        assert_eq!(out.values, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.reports.len(), 5);
    }

    #[test]
    fn aggregates_on_idle_world_are_zero() {
        let out = World::new(3, MachineParams::BANDWIDTH_ONLY).run(|_| ());
        assert_eq!(out.critical_path_time(), 0.0);
        assert_eq!(out.total_words_sent(), 0.0);
        assert_eq!(out.max_duplex_words(), 0);
        assert_eq!(out.max_peak_mem_words(), 0);
    }

    #[test]
    fn critical_path_is_max_over_ranks() {
        let out = World::new(4, MachineParams::new(0.0, 0.0, 1.0))
            .run(|r| r.compute((r.world_rank() * 10) as f64));
        assert_eq!(out.critical_path_time(), 30.0);
        assert_eq!(out.max_flops(), 30.0);
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        World::new(2, MachineParams::BANDWIDTH_ONLY).run(|r| {
            if r.world_rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn many_ranks_spawn_and_join() {
        let out = World::new(128, MachineParams::BANDWIDTH_ONLY)
            .with_stack_bytes(1 << 20)
            .run(|r| r.world_rank());
        assert_eq!(out.values.len(), 128);
    }

    #[test]
    fn hard_sync_allows_phase_delimiting() {
        let out = World::new(4, MachineParams::BANDWIDTH_ONLY).run(|r| {
            r.hard_sync();
            r.time()
        });
        assert_eq!(out.values, vec![0.0; 4], "hard_sync is not metered");
    }

    /// An all-to-one program with enough concurrency for schedules to
    /// actually differ between seeds.
    fn gather_program(rank: &mut Rank) -> f64 {
        let wc = rank.world_comm();
        if rank.world_rank() == 0 {
            (1..wc.size()).map(|from| rank.recv(&wc, from).payload[0]).sum()
        } else {
            rank.send(&wc, 0, &[rank.world_rank() as f64]);
            0.0
        }
    }

    #[test]
    fn same_seed_gives_byte_identical_traces() {
        let run = || World::new(6, MachineParams::BANDWIDTH_ONLY).with_seed(42).run(gather_program);
        let (a, b) = (run(), run());
        let ta = a.schedule_trace.expect("seeded run records a trace");
        let tb = b.schedule_trace.expect("seeded run records a trace");
        assert!(!ta.events.is_empty());
        assert_eq!(ta.render(), tb.render(), "same (program, seed) must replay byte-identically");
        ta.assert_matches(&tb);
    }

    #[test]
    fn different_seeds_change_the_schedule_but_not_the_result() {
        let run = |s| World::new(6, MachineParams::BANDWIDTH_ONLY).with_seed(s).run(gather_program);
        let outs: Vec<_> = (0u64..8).map(run).collect();
        assert!(
            outs.windows(2).any(|w| {
                let (x, y) = (w[0].schedule_trace.as_ref(), w[1].schedule_trace.as_ref());
                x.expect("trace").events != y.expect("trace").events
            }),
            "8 seeds on a 6-rank gather should exercise more than one schedule"
        );
        for o in &outs {
            assert_eq!(o.values[0], 15.0, "result must not depend on the schedule");
        }
    }

    #[test]
    fn unseeded_runs_record_no_trace() {
        let out = World::new(2, MachineParams::BANDWIDTH_ONLY).run(gather_program);
        assert!(out.schedule_trace.is_none());
    }

    #[test]
    fn choice_points_record_ready_sets_and_footprints() {
        let out = World::new(4, MachineParams::BANDWIDTH_ONLY).with_seed(11).run(gather_program);
        let choices = out.choice_points.expect("deterministic run records choice points");
        assert!(!choices.is_empty());
        for cp in &choices {
            assert!(cp.ready.contains(&cp.chosen), "{cp:?}");
            assert!(cp.ready.windows(2).all(|w| w[0] < w[1]), "ready must be ascending: {cp:?}");
        }
        assert!(
            choices.iter().any(|cp| !cp.touched.is_empty()),
            "a gather must touch mailboxes somewhere"
        );
        let unseeded = World::new(2, MachineParams::BANDWIDTH_ONLY).run(gather_program);
        assert!(unseeded.choice_points.is_none());
    }

    #[test]
    fn full_prefix_replay_reproduces_the_seeded_run() {
        let seeded = World::new(5, MachineParams::BANDWIDTH_ONLY).with_seed(3).run(gather_program);
        let prefix: Vec<usize> =
            seeded.choice_points.as_ref().expect("choices").iter().map(|c| c.chosen).collect();
        let replay = World::new(5, MachineParams::BANDWIDTH_ONLY)
            .with_schedule(Schedule::Prefix(prefix.clone()))
            .run(gather_program);
        assert_eq!(replay.values, seeded.values);
        assert_eq!(
            seeded.schedule_trace.expect("trace").events,
            replay.schedule_trace.expect("trace").events,
            "replaying the full chosen prefix must reproduce the event log"
        );
        let replayed: Vec<usize> =
            replay.choice_points.expect("choices").iter().map(|c| c.chosen).collect();
        assert_eq!(replayed, prefix);
    }

    #[test]
    fn empty_prefix_is_the_canonical_schedule_and_is_deterministic() {
        let run = || {
            World::new(4, MachineParams::BANDWIDTH_ONLY)
                .with_schedule(Schedule::Prefix(Vec::new()))
                .run(gather_program)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.values, b.values);
        assert_eq!(
            a.schedule_trace.expect("trace").events,
            b.schedule_trace.expect("trace").events
        );
    }

    #[test]
    fn diverging_prefix_aborts_with_a_prefix_repro() {
        let err = std::panic::catch_unwind(|| {
            World::new(2, MachineParams::BANDWIDTH_ONLY)
                .with_schedule(Schedule::Prefix(vec![1, 1, 1, 1, 1, 1, 1, 1]))
                .run(|_| ())
        })
        .expect_err("a prefix that demands a finished rank must abort");
        let msg = err.downcast_ref::<String>().expect("panic message is a String");
        assert!(msg.contains("schedule prefix diverged"), "{msg}");
        assert!(msg.contains("PMM_SCHEDULE=prefix:1"), "{msg}");
    }

    #[test]
    fn try_run_captures_deadlock_as_a_value_with_choices() {
        let failure = World::new(2, MachineParams::BANDWIDTH_ONLY)
            .without_watchdog()
            .with_schedule(Schedule::Prefix(Vec::new()))
            .try_run(|r| {
                let wc = r.world_comm();
                if r.world_rank() == 0 {
                    r.recv(&wc, 1);
                }
            })
            .expect_err("deadlocked run must fail");
        assert!(failure.report.contains("deadlock detected"), "{}", failure.report);
        assert!(matches!(failure.repro, crate::trace::Repro::Prefix(_)), "{:?}", failure.repro);
        assert!(failure.to_string().contains("PMM_SCHEDULE=prefix:"), "{failure}");
        let choices = failure.choice_points.expect("choices recorded up to the failure");
        assert!(!choices.is_empty());
    }

    /// The async twin of `gather_program`, for cross-engine checks.
    fn gather_program_a(rank: &mut Rank) -> LocalBoxFuture<'_, f64> {
        Box::pin(async move {
            let wc = rank.world_comm();
            if rank.world_rank() == 0 {
                let mut sum = 0.0;
                for from in 1..wc.size() {
                    sum += rank.recv_a(&wc, from).await.payload[0];
                }
                sum
            } else {
                rank.send_a(&wc, 0, &[rank.world_rank() as f64]).await;
                0.0
            }
        })
    }

    #[test]
    fn event_loop_runs_async_programs() {
        let out = World::new(6, MachineParams::BANDWIDTH_ONLY)
            .with_engine(Engine::EventLoop)
            .run_async(gather_program_a);
        assert_eq!(out.values[0], 15.0);
        assert!(out.schedule_trace.is_some(), "event runs are always deterministic");
    }

    #[test]
    fn engines_agree_on_seeded_gather_byte_for_byte() {
        for seed in 0..4 {
            let ev = World::new(6, MachineParams::BANDWIDTH_ONLY)
                .with_seed(seed)
                .with_engine(Engine::EventLoop)
                .run_async(gather_program_a);
            let th = World::new(6, MachineParams::BANDWIDTH_ONLY)
                .with_seed(seed)
                .with_engine(Engine::Threads)
                .run_async(gather_program_a);
            assert_eq!(ev.values, th.values, "seed {seed}");
            let (te, tt) = (ev.schedule_trace.unwrap(), th.schedule_trace.unwrap());
            assert_eq!(te.render(), tt.render(), "seed {seed}");
            for (a, b) in ev.reports.iter().zip(&th.reports) {
                assert_eq!(a.meter, b.meter, "seed {seed}");
                assert_eq!(a.time, b.time, "seed {seed}");
            }
        }
    }

    #[test]
    fn event_loop_splits_barriers_and_exchanges() {
        let run = |engine| {
            World::new(8, MachineParams::BANDWIDTH_ONLY).with_seed(5).with_engine(engine).run_async(
                |rank: &mut Rank| {
                    Box::pin(async move {
                        let wc = rank.world_comm();
                        let r = rank.world_rank();
                        let half = rank.split_a(&wc, (r / 4) as i64, r as i64).await.unwrap();
                        rank.hard_sync_a().await;
                        let m = rank
                            .sendrecv_a(&half, half.size() - 1 - half.index(), &[r as f64])
                            .await;
                        m.payload[0] as usize
                    }) as LocalBoxFuture<'_, usize>
                },
            )
        };
        let ev = run(Engine::EventLoop);
        let th = run(Engine::Threads);
        assert_eq!(ev.values, vec![3, 2, 1, 0, 7, 6, 5, 4]);
        assert_eq!(ev.values, th.values);
        assert_eq!(ev.schedule_trace.unwrap().render(), th.schedule_trace.unwrap().render());
    }

    #[test]
    fn event_loop_detects_deadlock_synchronously() {
        let failure = World::new(2, MachineParams::BANDWIDTH_ONLY)
            .with_engine(Engine::EventLoop)
            .try_run_async(|r: &mut Rank| {
                Box::pin(async move {
                    let wc = r.world_comm();
                    if r.world_rank() == 0 {
                        r.recv_a(&wc, 1).await;
                    }
                }) as LocalBoxFuture<'_, ()>
            })
            .expect_err("deadlocked event run must fail");
        assert!(failure.report.contains("deadlock detected"), "{}", failure.report);
    }

    #[test]
    fn event_loop_prefix_replay_matches_seeded_run() {
        let seeded = World::new(5, MachineParams::BANDWIDTH_ONLY)
            .with_seed(3)
            .with_engine(Engine::EventLoop)
            .run_async(gather_program_a);
        let prefix: Vec<usize> =
            seeded.choice_points.as_ref().expect("choices").iter().map(|c| c.chosen).collect();
        let replay = World::new(5, MachineParams::BANDWIDTH_ONLY)
            .with_schedule(Schedule::Prefix(prefix))
            .with_engine(Engine::EventLoop)
            .run_async(gather_program_a);
        assert_eq!(replay.values, seeded.values);
        assert_eq!(
            seeded.schedule_trace.expect("trace").events,
            replay.schedule_trace.expect("trace").events
        );
    }

    #[test]
    fn schedule_recording_off_drops_artifacts_but_not_results() {
        let out = World::new(6, MachineParams::BANDWIDTH_ONLY)
            .with_seed(9)
            .with_schedule_recording(false)
            .with_engine(Engine::EventLoop)
            .run_async(gather_program_a);
        assert_eq!(out.values[0], 15.0);
        assert!(out.schedule_trace.is_none());
        assert!(out.choice_points.is_none());
    }

    #[test]
    fn targeted_wakeup_changes_bookkeeping_not_results() {
        let base = World::new(6, MachineParams::BANDWIDTH_ONLY)
            .with_seed(2)
            .with_engine(Engine::EventLoop)
            .run_async(gather_program_a);
        let targeted = World::new(6, MachineParams::BANDWIDTH_ONLY)
            .with_seed(2)
            .with_targeted_wakeup(true)
            .with_engine(Engine::EventLoop)
            .run_async(gather_program_a);
        assert_eq!(base.values, targeted.values);
        for (a, b) in base.reports.iter().zip(&targeted.reports) {
            assert_eq!(a.meter, b.meter);
            assert_eq!(a.time, b.time);
        }
    }

    #[test]
    fn vclock_audit_off_empties_final_clocks() {
        let out = World::new(4, MachineParams::BANDWIDTH_ONLY)
            .with_vclock_audit(false)
            .with_engine(Engine::EventLoop)
            .run_async(gather_program_a);
        assert_eq!(out.values[0], 6.0);
        assert!(out.reports.iter().all(|r| r.final_vclock.is_empty()));
    }

    #[test]
    fn det_mode_detects_deadlock_synchronously_and_names_the_seed() {
        // Rank 0 receives from rank 1, which never sends: in deterministic
        // mode the scheduler proves the deadlock at pick time — no
        // watchdog interval has to elapse.
        let err = std::panic::catch_unwind(|| {
            World::new(2, MachineParams::BANDWIDTH_ONLY).without_watchdog().with_seed(7).run(|r| {
                let wc = r.world_comm();
                if r.world_rank() == 0 {
                    r.recv(&wc, 1);
                }
            })
        })
        .expect_err("deadlocked deterministic run must abort");
        let msg = err.downcast_ref::<String>().expect("panic message is a String");
        assert!(msg.contains("deadlock detected"), "{msg}");
        assert!(msg.contains("PMM_SEED=7"), "{msg}");
    }
}
