//! World construction: spawn `P` rank threads, run a program, collect
//! reports.

use std::sync::Arc;

use pmm_model::{Cost, MachineParams};

use crate::fabric::Fabric;
use crate::meter::{Meter, TraceEvent};
use crate::rank::Rank;

/// Configuration for a simulated machine run.
///
/// ```
/// use pmm_simnet::{World, MachineParams};
/// let result = World::new(8, MachineParams::BANDWIDTH_ONLY)
///     .run(|rank| rank.world_rank() * 2);
/// assert_eq!(result.values[3], 6);
/// ```
pub struct World {
    size: usize,
    params: MachineParams,
    mem_limit: Option<u64>,
    trace: bool,
    stack_bytes: usize,
}

impl World {
    /// A world of `size` ranks with machine parameters `params`.
    pub fn new(size: usize, params: MachineParams) -> World {
        assert!(size >= 1, "world size must be >= 1");
        World { size, params, mem_limit: None, trace: false, stack_bytes: 4 << 20 }
    }

    /// Set a per-rank local memory capacity `M` in words (§6.2). `None`
    /// models the memory-independent setting (M = ∞).
    #[must_use]
    pub fn with_memory_limit(mut self, limit: Option<u64>) -> World {
        self.mem_limit = limit;
        self
    }

    /// Enable per-rank communication traces.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> World {
        self.trace = trace;
        self
    }

    /// Per-rank thread stack size (default 4 MiB).
    #[must_use]
    pub fn with_stack_bytes(mut self, bytes: usize) -> World {
        self.stack_bytes = bytes;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `program` on every rank simultaneously and collect the results.
    ///
    /// Panics in any rank propagate (with the rank id) after all threads
    /// are joined or detached.
    pub fn run<T, F>(&self, program: F) -> WorldResult<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Send + Sync,
    {
        let fabric = Arc::new(Fabric::new(self.size));
        let members: Arc<Vec<usize>> = Arc::new((0..self.size).collect());
        let mut slots: Vec<Option<(T, RankReport)>> = Vec::with_capacity(self.size);
        for _ in 0..self.size {
            slots.push(None);
        }

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.size);
            for (r, slot) in slots.iter_mut().enumerate() {
                let fabric = fabric.clone();
                let members = members.clone();
                let program = &program;
                let params = self.params;
                let mem_limit = self.mem_limit;
                let trace = self.trace;
                let builder = std::thread::Builder::new()
                    .name(format!("pmm-rank-{r}"))
                    .stack_size(self.stack_bytes);
                let handle = builder
                    .spawn_scoped(scope, move || {
                        let mut rank =
                            Rank::new(r, members, fabric, params, mem_limit, trace);
                        let value = program(&mut rank);
                        let report = RankReport {
                            meter: rank.meter(),
                            time: rank.time(),
                            peak_mem_words: rank.mem().peak(),
                            trace: rank.take_trace(),
                        };
                        *slot = Some((value, report));
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            let mut first_panic = None;
            for (r, h) in handles.into_iter().enumerate() {
                if let Err(payload) = h.join() {
                    first_panic.get_or_insert((r, payload));
                }
            }
            if let Some((r, payload)) = first_panic {
                eprintln!("pmm-simnet: rank {r} panicked");
                std::panic::resume_unwind(payload);
            }
        });

        let (values, reports): (Vec<T>, Vec<RankReport>) = slots
            .into_iter()
            .map(|s| s.expect("rank completed without panicking"))
            .unzip();
        WorldResult { params: self.params, values, reports }
    }
}

/// Final accounting for one rank.
#[derive(Debug, Clone)]
pub struct RankReport {
    /// Cumulative traffic/compute counters.
    pub meter: Meter,
    /// Final critical-path clock.
    pub time: f64,
    /// Memory high-water mark in words.
    pub peak_mem_words: u64,
    /// Communication trace, if enabled.
    pub trace: Option<Vec<TraceEvent>>,
}

/// Results of a [`World::run`]: per-rank return values and reports, plus
/// aggregate views.
#[derive(Debug)]
pub struct WorldResult<T> {
    /// Machine parameters of the run.
    pub params: MachineParams,
    /// Per-rank return values, indexed by world rank.
    pub values: Vec<T>,
    /// Per-rank reports, indexed by world rank.
    pub reports: Vec<RankReport>,
}

impl<T> WorldResult<T> {
    /// The simulated makespan: the maximum final clock over ranks. Under
    /// [`MachineParams::BANDWIDTH_ONLY`] this is the bandwidth cost along
    /// the critical path — the quantity Theorem 3 lower-bounds.
    pub fn critical_path_time(&self) -> f64 {
        self.reports.iter().map(|r| r.time).fold(0.0, f64::max)
    }

    /// Total words sent across all ranks (each word counted once at the
    /// sender).
    pub fn total_words_sent(&self) -> f64 {
        self.reports.iter().map(|r| r.meter.words_sent as f64).sum()
    }

    /// Maximum over ranks of `max(words_sent, words_recv)` — the per-rank
    /// duplex communication volume.
    pub fn max_duplex_words(&self) -> u64 {
        self.reports.iter().map(|r| r.meter.duplex_words()).max().unwrap_or(0)
    }

    /// Maximum flops performed by any rank.
    pub fn max_flops(&self) -> f64 {
        self.reports.iter().map(|r| r.meter.flops).fold(0.0, f64::max)
    }

    /// Maximum memory high-water mark over ranks, in words.
    pub fn max_peak_mem_words(&self) -> u64 {
        self.reports.iter().map(|r| r.peak_mem_words).max().unwrap_or(0)
    }

    /// Aggregate critical-path [`Cost`] view: message/word/flop maxima are
    /// taken per rank and the largest is reported (exact for the
    /// symmetric schedules used throughout this workspace).
    pub fn critical_path_cost(&self) -> Cost {
        let mut c = Cost::ZERO;
        for r in &self.reports {
            c = c.par(Cost {
                messages: r.meter.msgs_sent.max(r.meter.msgs_recv) as f64,
                words: r.meter.duplex_words() as f64,
                flops: r.meter.flops,
            });
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_indexed_by_world_rank() {
        let out = World::new(5, MachineParams::BANDWIDTH_ONLY).run(|r| r.world_rank());
        assert_eq!(out.values, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.reports.len(), 5);
    }

    #[test]
    fn aggregates_on_idle_world_are_zero() {
        let out = World::new(3, MachineParams::BANDWIDTH_ONLY).run(|_| ());
        assert_eq!(out.critical_path_time(), 0.0);
        assert_eq!(out.total_words_sent(), 0.0);
        assert_eq!(out.max_duplex_words(), 0);
        assert_eq!(out.max_peak_mem_words(), 0);
    }

    #[test]
    fn critical_path_is_max_over_ranks() {
        let out = World::new(4, MachineParams::new(0.0, 0.0, 1.0))
            .run(|r| r.compute((r.world_rank() * 10) as f64));
        assert_eq!(out.critical_path_time(), 30.0);
        assert_eq!(out.max_flops(), 30.0);
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        World::new(2, MachineParams::BANDWIDTH_ONLY).run(|r| {
            if r.world_rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn many_ranks_spawn_and_join() {
        let out = World::new(128, MachineParams::BANDWIDTH_ONLY)
            .with_stack_bytes(1 << 20)
            .run(|r| r.world_rank());
        assert_eq!(out.values.len(), 128);
    }

    #[test]
    fn hard_sync_allows_phase_delimiting() {
        let out = World::new(4, MachineParams::BANDWIDTH_ONLY).run(|r| {
            r.hard_sync();
            r.time()
        });
        assert_eq!(out.values, vec![0.0; 4], "hard_sync is not metered");
    }
}
