//! World construction: spawn `P` rank threads, run a program, collect
//! reports.

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use pmm_model::{Cost, MachineParams};

use crate::fabric::Fabric;
use crate::fault::{FaultPanic, FaultPlan};
use crate::meter::Meter;
use crate::rank::Rank;
use crate::trace::{repro_hint, ScheduleTrace};
use crate::tracer::{TraceEvent, Tracer};
use crate::verify::{lock_unpoisoned, AbortPanic, VerifyConfig, VerifyState};

/// Marks a rank `done` in the verify registry on scope exit — including
/// panics — so the watchdog treats dead ranks as inert (anyone blocked on
/// them is then provably deadlocked, not "maybe about to be served").
struct DoneGuard<'a> {
    verify: &'a VerifyState,
    rank: usize,
}

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        self.verify.mark_done(self.rank);
    }
}

/// Retires a rank from the deterministic scheduler on scope exit —
/// including panics — so the baton is handed on (or a deadlock among the
/// survivors is reported) when a rank dies. No-op in free-running mode.
struct SchedGuard<'a> {
    fabric: &'a Fabric,
    rank: usize,
}

impl Drop for SchedGuard<'_> {
    fn drop(&mut self) {
        self.fabric.sched_finish(self.rank);
    }
}

/// Rank threads torn down by a verifier abort die via a sentinel
/// [`AbortPanic`] that `World::run` filters out — but each such death
/// would also print the default "thread panicked" message and backtrace,
/// burying the one report that matters under per-rank teardown noise.
/// Chain a process-wide panic hook (installed once; everything that is
/// not the sentinel is delegated to the previously installed hook) that
/// swallows exactly that sentinel.
fn silence_abort_teardown_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // FaultPanic is the injected-kill sentinel: either the program
            // converts it to a typed error via Rank::catch_failures, or
            // World::run raises a single rank-failure report after the
            // joins. Per-thread noise helps neither case.
            if info.payload().downcast_ref::<AbortPanic>().is_none()
                && info.payload().downcast_ref::<FaultPanic>().is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Configuration for a simulated machine run.
///
/// ```
/// use pmm_simnet::{World, MachineParams};
/// let result = World::new(8, MachineParams::BANDWIDTH_ONLY)
///     .run(|rank| rank.world_rank() * 2);
/// assert_eq!(result.values[3], 6);
/// ```
#[derive(Clone)]
pub struct World {
    size: usize,
    params: MachineParams,
    mem_limit: Option<u64>,
    trace: bool,
    stack_bytes: usize,
    verify: VerifyConfig,
    seed: Option<u64>,
    faults: Option<FaultPlan>,
}

impl World {
    /// A world of `size` ranks with machine parameters `params`.
    pub fn new(size: usize, params: MachineParams) -> World {
        assert!(size >= 1, "world size must be >= 1");
        World {
            size,
            params,
            mem_limit: None,
            trace: false,
            stack_bytes: 4 << 20,
            verify: VerifyConfig::default(),
            seed: None,
            faults: None,
        }
    }

    /// Run under the seeded deterministic scheduler: rank progress is
    /// serialized at every blocking point (mailbox receive, split
    /// rendezvous, barrier) and at every send / collective entry, with
    /// ties among runnable ranks broken by a PRNG seeded with `seed`.
    /// Identical `(program, seed)` pairs produce byte-identical schedule
    /// traces ([`WorldResult::schedule_trace`]); failure reports name the
    /// seed and a `PMM_SEED=` repro command. See also
    /// [`seed_from_env`](crate::trace::seed_from_env) and
    /// [`fuzz_schedules`](crate::trace::fuzz_schedules).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> World {
        self.seed = Some(seed);
        self
    }

    /// Attach a fault plan: message-level faults (drop / duplicate /
    /// corrupt / delay, absorbed by the reliable-delivery layer and
    /// metered as retry overhead), stragglers, and rank kills. Fault
    /// decisions draw from the plan's own seed when set, otherwise from
    /// the schedule seed's SplitMix64 stream — either way
    /// `(program, seed, plan)` replays byte-identically.
    ///
    /// Panics (on [`World::run`]) if the plan is malformed — rates
    /// outside `[0, 1)`, nonpositive straggler factors, etc.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> World {
        self.faults = Some(plan);
        self
    }

    /// Set a per-rank local memory capacity `M` in words (§6.2). `None`
    /// models the memory-independent setting (M = ∞).
    #[must_use]
    pub fn with_memory_limit(mut self, limit: Option<u64>) -> World {
        self.mem_limit = limit;
        self
    }

    /// Enable per-rank structured event traces (see [`crate::tracer`]):
    /// every message, compute call, collective entry, and phase scope is
    /// recorded with its word counts and clock interval, and
    /// [`WorldResult::tracer`] assembles the per-world [`Tracer`]
    /// analyses. Off by default — and genuinely zero-cost when off: no
    /// buffer exists and no emission site does more than one branch.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> World {
        self.trace = trace;
        self
    }

    /// Per-rank thread stack size (default 4 MiB).
    #[must_use]
    pub fn with_stack_bytes(mut self, bytes: usize) -> World {
        self.stack_bytes = bytes;
        self
    }

    /// Run the deadlock watchdog with the given scan interval. In debug
    /// builds (which is what `cargo test` exercises) the watchdog is on by
    /// default with a 2 s interval; release builds opt in with this
    /// method. A confirmed deadlock aborts the run with a report naming
    /// every blocked rank, its operation, communicator context, and call
    /// site — instead of hanging.
    #[must_use]
    pub fn with_watchdog(mut self, interval: Duration) -> World {
        self.verify.watchdog = Some(interval);
        self
    }

    /// Disable the deadlock watchdog (debug builds enable it by default).
    /// A program that deadlocks in such a world blocks forever, exactly
    /// as under MPI.
    #[must_use]
    pub fn without_watchdog(mut self) -> World {
        self.verify.watchdog = None;
        self
    }

    /// Additionally fail the run if any message was sent but never
    /// received (undrained mailboxes or receive stashes at exit), and
    /// verify that the meters conserve traffic globally (Σ sent = Σ
    /// received). Off by default: programs are allowed to exit with
    /// traffic in flight.
    #[must_use]
    pub fn with_strict_drain(mut self, strict: bool) -> World {
        self.verify.strict_drain = strict;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `program` on every rank simultaneously and collect the results.
    ///
    /// Panics in any rank propagate (with the rank id) after all threads
    /// are joined. If the verifier aborts the run (deadlock, collective
    /// mismatch), `run` panics with the verifier's report.
    pub fn run<T, F>(&self, program: F) -> WorldResult<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Send + Sync,
    {
        silence_abort_teardown_panics();
        let mut fabric = Fabric::new(self.size);
        if let Some(seed) = self.seed {
            fabric.enable_det(seed);
        }
        if let Some(plan) = &self.faults {
            // No explicit fault seed: derive one from the schedule seed's
            // SplitMix64 stream (0 for unseeded worlds), so a single
            // PMM_SEED pins both the interleaving and the fault pattern.
            let fault_seed = plan.seed.unwrap_or_else(|| {
                let mut s = self.seed.unwrap_or(0);
                crate::fabric::splitmix64(&mut s)
            });
            fabric.enable_faults(plan.clone(), fault_seed);
        }
        let fabric = Arc::new(fabric);
        let members: Arc<Vec<usize>> = Arc::new((0..self.size).collect());
        let mut slots: Vec<Option<(T, RankReport)>> = Vec::with_capacity(self.size);
        for _ in 0..self.size {
            slots.push(None);
        }
        let strict_drain = self.verify.strict_drain;

        std::thread::scope(|scope| {
            // Stop signal for the watchdog: flag + condvar so shutdown is
            // immediate rather than waiting out a scan interval.
            let watchdog_stop = Arc::new((Mutex::new(false), Condvar::new()));
            let watchdog = self.verify.watchdog.map(|interval| {
                let fabric = fabric.clone();
                let stop = watchdog_stop.clone();
                std::thread::Builder::new()
                    .name("pmm-watchdog".to_string())
                    .spawn_scoped(scope, move || {
                        let (lock, cv) = &*stop;
                        let mut candidate = None;
                        let mut stopped = lock_unpoisoned(lock);
                        while !*stopped {
                            let (guard, timeout) = cv
                                .wait_timeout(stopped, interval)
                                .unwrap_or_else(PoisonError::into_inner);
                            stopped = guard;
                            if *stopped || !timeout.timed_out() {
                                continue;
                            }
                            drop(stopped);
                            if let Some(report) = fabric.watchdog_scan(&mut candidate) {
                                fabric.abort(report);
                            }
                            stopped = lock_unpoisoned(lock);
                        }
                    })
                    .expect("failed to spawn watchdog thread")
            });

            let mut handles = Vec::with_capacity(self.size);
            for (r, slot) in slots.iter_mut().enumerate() {
                let fabric = fabric.clone();
                let members = members.clone();
                let program = &program;
                let params = self.params;
                let mem_limit = self.mem_limit;
                let trace = self.trace;
                let builder = std::thread::Builder::new()
                    .name(format!("pmm-rank-{r}"))
                    .stack_size(self.stack_bytes);
                let handle = builder
                    .spawn_scoped(scope, move || {
                        let _done = DoneGuard { verify: &fabric.verify, rank: r };
                        let _sched = SchedGuard { fabric: &fabric, rank: r };
                        fabric.sched_attach(r);
                        let mut rank =
                            Rank::new(r, members, fabric.clone(), params, mem_limit, trace);
                        let value = program(&mut rank);
                        if strict_drain {
                            if let Some(desc) = rank.undrained_stash() {
                                panic!(
                                    "pmm-verify: rank {r} finished with undrained receive \
                                     stash: {desc}"
                                );
                            }
                        }
                        let report = RankReport {
                            meter: rank.meter(),
                            time: rank.time(),
                            peak_mem_words: rank.mem().peak(),
                            trace: rank.take_trace(),
                            final_vclock: rank.final_vclock(),
                        };
                        *slot = Some((value, report));
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }

            let mut first_panic = None;
            let mut abort_note: Option<String> = None;
            let mut fault_note: Option<String> = None;
            for (r, h) in handles.into_iter().enumerate() {
                if let Err(payload) = h.join() {
                    // Ranks torn down by a verifier abort carry an
                    // AbortPanic; the report is raised once, below. A
                    // FaultPanic is an injected kill the program chose not
                    // to catch — reported once, after genuine panics. Any
                    // other panic is the program's own and wins.
                    if let Some(AbortPanic(note)) = payload.downcast_ref::<AbortPanic>() {
                        abort_note.get_or_insert_with(|| note.clone());
                    } else if let Some(FaultPanic(failed)) = payload.downcast_ref::<FaultPanic>() {
                        fault_note.get_or_insert_with(|| failed.to_string());
                    } else {
                        first_panic.get_or_insert((r, payload));
                    }
                }
            }

            // All ranks are done; retire the watchdog before deciding the
            // run's fate so it cannot fire on a finished world.
            if let Some(h) = watchdog {
                *lock_unpoisoned(&watchdog_stop.0) = true;
                watchdog_stop.1.notify_all();
                h.join().expect("watchdog thread panicked");
            }

            // Every failure path names the schedule seed (or its absence)
            // so a failing interleaving can be replayed exactly.
            let seed_note = || match self.seed {
                Some(seed) => format!("schedule seed {seed}; {}", repro_hint(seed)),
                None => "nondeterministic schedule (no seed); use World::with_seed(..) \
                         to make this run replayable"
                    .to_string(),
            };
            if let Some((r, payload)) = first_panic {
                eprintln!("pmm-simnet: rank {r} panicked [{}]", seed_note());
                std::panic::resume_unwind(payload);
            }
            if fabric.verify.is_aborted() {
                let report =
                    fabric.verify.report_text().or(abort_note).unwrap_or_else(|| {
                        "pmm-verify: world aborted with no stored report".into()
                    });
                panic!("{report}\n[{}]", seed_note());
            }
            if let Some(detail) = fault_note {
                panic!(
                    "pmm-fault: rank failure was not handled by the program — {detail}\n\
                     (wrap the failable region in Rank::catch_failures to recover)\n[{}]",
                    seed_note()
                );
            }
        });

        if strict_drain {
            let residual = fabric.residual_messages();
            assert!(
                residual.is_empty(),
                "pmm-verify: world finished with {} undrained mailbox(es) \
                 [(ctx, member, messages)]: {residual:?}",
                residual.len()
            );
        }

        let (values, reports): (Vec<T>, Vec<RankReport>) =
            slots.into_iter().map(|s| s.expect("rank completed without panicking")).unzip();

        if strict_drain {
            let sent: u64 = reports.iter().map(|r| r.meter.words_sent).sum();
            let recv: u64 = reports.iter().map(|r| r.meter.words_recv).sum();
            let msent: u64 = reports.iter().map(|r| r.meter.msgs_sent).sum();
            let mrecv: u64 = reports.iter().map(|r| r.meter.msgs_recv).sum();
            assert!(
                sent == recv && msent == mrecv,
                "pmm-verify: meter conservation violated: {sent} words sent vs {recv} received, \
                 {msent} messages sent vs {mrecv} received"
            );
        }
        WorldResult {
            params: self.params,
            values,
            reports,
            schedule_trace: fabric.take_sched_trace(),
        }
    }
}

/// Final accounting for one rank.
#[derive(Debug, Clone)]
pub struct RankReport {
    /// Cumulative traffic/compute counters.
    pub meter: Meter,
    /// Final critical-path clock.
    pub time: f64,
    /// Memory high-water mark in words.
    pub peak_mem_words: u64,
    /// Structured event trace, if the world ran with
    /// [`World::with_trace`]`(true)`.
    pub trace: Option<Vec<TraceEvent>>,
    /// Final happens-before vector clock, indexed by world rank (see
    /// `crate::verify`).
    pub final_vclock: Vec<u64>,
}

/// Results of a [`World::run`]: per-rank return values and reports, plus
/// aggregate views.
#[derive(Debug)]
pub struct WorldResult<T> {
    /// Machine parameters of the run.
    pub params: MachineParams,
    /// Per-rank return values, indexed by world rank.
    pub values: Vec<T>,
    /// Per-rank reports, indexed by world rank.
    pub reports: Vec<RankReport>,
    /// The recorded schedule trace; `Some` iff the world ran under
    /// [`World::with_seed`]. Byte-identical across runs of the same
    /// `(program, seed)` pair — see [`ScheduleTrace::render`].
    pub schedule_trace: Option<ScheduleTrace>,
}

impl<T> WorldResult<T> {
    /// The simulated makespan: the maximum final clock over ranks. Under
    /// [`MachineParams::BANDWIDTH_ONLY`] this is the bandwidth cost along
    /// the critical path — the quantity Theorem 3 lower-bounds.
    pub fn critical_path_time(&self) -> f64 {
        self.reports.iter().map(|r| r.time).fold(0.0, f64::max)
    }

    /// Total words sent across all ranks (each word counted once at the
    /// sender).
    pub fn total_words_sent(&self) -> f64 {
        self.reports.iter().map(|r| r.meter.words_sent as f64).sum()
    }

    /// Maximum over ranks of `max(words_sent, words_recv)` — the per-rank
    /// duplex communication volume.
    pub fn max_duplex_words(&self) -> u64 {
        self.reports.iter().map(|r| r.meter.duplex_words()).max().unwrap_or(0)
    }

    /// Maximum flops performed by any rank.
    pub fn max_flops(&self) -> f64 {
        self.reports.iter().map(|r| r.meter.flops).fold(0.0, f64::max)
    }

    /// Maximum memory high-water mark over ranks, in words.
    pub fn max_peak_mem_words(&self) -> u64 {
        self.reports.iter().map(|r| r.peak_mem_words).max().unwrap_or(0)
    }

    /// Assemble the per-world [`Tracer`] from the per-rank event streams;
    /// `Some` iff the world ran with [`World::with_trace`]`(true)`. The
    /// tracer provides per-phase goodput totals, the critical-path
    /// attribution, and the Chrome JSON / text exports (see
    /// [`crate::tracer`]).
    pub fn tracer(&self) -> Option<Tracer> {
        let streams: Option<Vec<Vec<TraceEvent>>> =
            self.reports.iter().map(|r| r.trace.clone()).collect();
        streams.map(Tracer::from_streams)
    }

    /// Aggregate critical-path [`Cost`] view: message/word/flop maxima are
    /// taken per rank and the largest is reported (exact for the
    /// symmetric schedules used throughout this workspace).
    pub fn critical_path_cost(&self) -> Cost {
        let mut c = Cost::ZERO;
        for r in &self.reports {
            c = c.par(Cost {
                messages: r.meter.msgs_sent.max(r.meter.msgs_recv) as f64,
                words: r.meter.duplex_words() as f64,
                flops: r.meter.flops,
            });
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_indexed_by_world_rank() {
        let out = World::new(5, MachineParams::BANDWIDTH_ONLY).run(|r| r.world_rank());
        assert_eq!(out.values, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.reports.len(), 5);
    }

    #[test]
    fn aggregates_on_idle_world_are_zero() {
        let out = World::new(3, MachineParams::BANDWIDTH_ONLY).run(|_| ());
        assert_eq!(out.critical_path_time(), 0.0);
        assert_eq!(out.total_words_sent(), 0.0);
        assert_eq!(out.max_duplex_words(), 0);
        assert_eq!(out.max_peak_mem_words(), 0);
    }

    #[test]
    fn critical_path_is_max_over_ranks() {
        let out = World::new(4, MachineParams::new(0.0, 0.0, 1.0))
            .run(|r| r.compute((r.world_rank() * 10) as f64));
        assert_eq!(out.critical_path_time(), 30.0);
        assert_eq!(out.max_flops(), 30.0);
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        World::new(2, MachineParams::BANDWIDTH_ONLY).run(|r| {
            if r.world_rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn many_ranks_spawn_and_join() {
        let out = World::new(128, MachineParams::BANDWIDTH_ONLY)
            .with_stack_bytes(1 << 20)
            .run(|r| r.world_rank());
        assert_eq!(out.values.len(), 128);
    }

    #[test]
    fn hard_sync_allows_phase_delimiting() {
        let out = World::new(4, MachineParams::BANDWIDTH_ONLY).run(|r| {
            r.hard_sync();
            r.time()
        });
        assert_eq!(out.values, vec![0.0; 4], "hard_sync is not metered");
    }

    /// An all-to-one program with enough concurrency for schedules to
    /// actually differ between seeds.
    fn gather_program(rank: &mut Rank) -> f64 {
        let wc = rank.world_comm();
        if rank.world_rank() == 0 {
            (1..wc.size()).map(|from| rank.recv(&wc, from).payload[0]).sum()
        } else {
            rank.send(&wc, 0, &[rank.world_rank() as f64]);
            0.0
        }
    }

    #[test]
    fn same_seed_gives_byte_identical_traces() {
        let run = || World::new(6, MachineParams::BANDWIDTH_ONLY).with_seed(42).run(gather_program);
        let (a, b) = (run(), run());
        let ta = a.schedule_trace.expect("seeded run records a trace");
        let tb = b.schedule_trace.expect("seeded run records a trace");
        assert!(!ta.events.is_empty());
        assert_eq!(ta.render(), tb.render(), "same (program, seed) must replay byte-identically");
        ta.assert_matches(&tb);
    }

    #[test]
    fn different_seeds_change_the_schedule_but_not_the_result() {
        let run = |s| World::new(6, MachineParams::BANDWIDTH_ONLY).with_seed(s).run(gather_program);
        let outs: Vec<_> = (0u64..8).map(run).collect();
        assert!(
            outs.windows(2).any(|w| {
                let (x, y) = (w[0].schedule_trace.as_ref(), w[1].schedule_trace.as_ref());
                x.expect("trace").events != y.expect("trace").events
            }),
            "8 seeds on a 6-rank gather should exercise more than one schedule"
        );
        for o in &outs {
            assert_eq!(o.values[0], 15.0, "result must not depend on the schedule");
        }
    }

    #[test]
    fn unseeded_runs_record_no_trace() {
        let out = World::new(2, MachineParams::BANDWIDTH_ONLY).run(gather_program);
        assert!(out.schedule_trace.is_none());
    }

    #[test]
    fn det_mode_detects_deadlock_synchronously_and_names_the_seed() {
        // Rank 0 receives from rank 1, which never sends: in deterministic
        // mode the scheduler proves the deadlock at pick time — no
        // watchdog interval has to elapse.
        let err = std::panic::catch_unwind(|| {
            World::new(2, MachineParams::BANDWIDTH_ONLY).without_watchdog().with_seed(7).run(|r| {
                let wc = r.world_comm();
                if r.world_rank() == 0 {
                    r.recv(&wc, 1);
                }
            })
        })
        .expect_err("deadlocked deterministic run must abort");
        let msg = err.downcast_ref::<String>().expect("panic message is a String");
        assert!(msg.contains("deadlock detected"), "{msg}");
        assert!(msg.contains("PMM_SEED=7"), "{msg}");
    }
}
