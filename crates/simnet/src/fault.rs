//! Seeded fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] (attached with [`World::with_faults`]) makes the
//! fabric lossy: messages can be dropped, duplicated, corrupted
//! (single-bit flip, caught by a per-message checksum), or delayed; a
//! rank can be slowed into a straggler or killed outright at a chosen
//! operation. Every per-copy decision is a pure hash of
//! `(fault seed, ctx, sender, receiver, channel sequence, attempt)`
//! through the same SplitMix64 mixer the deterministic scheduler uses —
//! so outcomes are independent of thread interleaving, and the triple
//! `(program, seed, plan)` replays byte-identically.
//!
//! Beyond the single-copy faults, a plan composes three multi-fault
//! clauses:
//!
//! - **Cascading kills** ([`CascadeSpec`], `cascade=R@E`): rank `R`
//!   dies at its next communication operation once the fault epoch
//!   (deaths observed so far) reaches `E` — correlated failures that
//!   strike *because* an earlier rank died.
//! - **Healing partitions** ([`Partition`], `part=R1+R2@LO..HI#HEAL`):
//!   every copy crossing the cut between the listed ranks and the rest
//!   of the world is blackholed while its channel sequence lies in
//!   `[LO, HI)` and its attempt number is `< HEAL`. Reliable delivery
//!   retransmits through the outage; the link "heals" at attempt
//!   `HEAL`, so the payload still lands and the outage cost shows up
//!   in the `retry_*` meters. A pure function of (channel, seq,
//!   attempt) — schedule-independent like every other decision.
//! - **Straggler storms** ([`Storm`], `storm=RATExFACTOR`): each rank
//!   is independently slowed by `FACTOR` with probability `RATE`,
//!   drawn from a pure hash of (fault seed, rank).
//!
//! On top of the lossy fabric, [`Rank::send`] runs a reliable-delivery
//! protocol: sends are sequence-numbered and acknowledged, with a
//! configurable retransmission timeout and capped exponential backoff.
//! The receive side discards duplicates (by sequence number) and
//! corrupted copies (by checksum); only the accepted copy counts toward
//! the goodput meters that eq. (3) predicts, while every extra copy is
//! accounted in the `retry_*` fields of [`Meter`] — the overhead faults
//! add on top of the tight bound.
//!
//! Rank death is surfaced as a typed [`RankFailed`] error through
//! [`Rank::catch_failures`] instead of a hang: survivors blocked on the
//! dead rank are kicked out of their waits, and the watchdog/scheduler
//! report the failure (naming the fault-plan entry and replay seed)
//! rather than a spurious deadlock.
//!
//! [`World::with_faults`]: crate::World::with_faults
//! [`Rank::send`]: crate::Rank::send
//! [`Rank::catch_failures`]: crate::Rank::catch_failures
//! [`Meter`]: crate::Meter

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::fabric::{splitmix64, Ctx};
use crate::verify::lock_unpoisoned;

/// Kill world rank `rank` when it enters its `at_op`-th communication
/// operation (send, receive, exchange, wait, split, or barrier —
/// counted per rank, starting at 1). Operation counts are local to the
/// rank, so the kill strikes at the same logical point under every
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// World rank to kill.
    pub rank: usize,
    /// 1-based communication-operation index at which it dies.
    pub at_op: u64,
}

/// Slow world rank `rank` by `factor`: all of its clock advances
/// (transfers and flops) are multiplied by `factor`. A factor of `1.0`
/// is bitwise identical to no straggler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// World rank to slow down.
    pub rank: usize,
    /// Time multiplier (≥ 1.0 models a slow node; must be > 0).
    pub factor: f64,
}

/// Kill world rank `rank` at its next communication operation once the
/// fault epoch (number of deaths so far) reaches `at_epoch` — a
/// correlated kill that triggers *because* earlier ranks died. Under a
/// fixed `(program, seed, plan)` triple the deterministic scheduler
/// makes the trigger point exact, so cascades replay byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CascadeSpec {
    /// World rank to kill.
    pub rank: usize,
    /// Fault epoch (≥ 1) at which the kill arms.
    pub at_epoch: u64,
}

/// A healing link-level partition: every transmitted copy crossing the
/// cut between `ranks` and the rest of the world is blackholed while
/// its channel sequence number lies in `[from_seq, until_seq)` and its
/// attempt number is below `heal_attempt`. Reliable delivery
/// retransmits through the outage and succeeds once the link heals, so
/// partitions cost retries (and backoff time) but never goodput.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// World ranks on the isolated side of the cut.
    pub ranks: Vec<usize>,
    /// First channel sequence number affected (inclusive).
    pub from_seq: u64,
    /// First channel sequence number no longer affected (exclusive).
    pub until_seq: u64,
    /// Attempt index at which the link heals: copies with
    /// `attempt < heal_attempt` are blackholed. Must stay ≤
    /// `max_retries` so delivery still completes.
    pub heal_attempt: u32,
}

impl Partition {
    /// Whether this partition blackholes the given copy.
    fn blackholes(&self, tx: Transmission) -> bool {
        let from_in = self.ranks.contains(&tx.from_world);
        let to_in = self.ranks.contains(&tx.to_world);
        from_in != to_in
            && (self.from_seq..self.until_seq).contains(&tx.seq)
            && tx.attempt < self.heal_attempt
    }
}

/// A straggler storm: each rank is independently slowed by `factor`
/// with probability `rate`, drawn from a pure hash of
/// (fault seed, rank). Explicit [`Straggler`] entries take precedence
/// for the ranks they name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Storm {
    /// Per-rank probability of being slowed, in `[0, 1)`.
    pub rate: f64,
    /// Time multiplier applied to slowed ranks (must be > 0).
    pub factor: f64,
}

/// A seeded fault-injection plan (see the module docs). All rates are
/// per-transmission probabilities in `[0, 1)`; their sum must stay ≤ 1.
///
/// The canonical serialization ([`std::fmt::Display`] /
/// [`FaultPlan::parse`]) round-trips, so a failure report's plan line
/// plus `PMM_SEED` is a complete repro.
///
/// # Example
///
/// Reliable delivery hides a lossy fabric from the program — the result
/// is unchanged, the overhead shows up in the `retry_*` meters:
///
/// ```
/// use pmm_simnet::{FaultPlan, MachineParams, World};
///
/// let plan = FaultPlan::none().with_seed(7).with_drop(0.2).with_duplicate(0.1);
/// assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
///
/// let out = World::new(2, MachineParams::BANDWIDTH_ONLY)
///     .with_seed(42)
///     .with_faults(plan)
///     .run(|rank| {
///         let wc = rank.world_comm();
///         rank.sendrecv(&wc, 1 - wc.index(), &[rank.world_rank() as f64; 4]).payload
///     });
/// assert_eq!(out.values[0], vec![1.0; 4]); // payload intact despite drops
/// assert_eq!(out.reports[0].meter.words_sent, 4); // goodput excludes retries
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Fault-decision seed. `None` derives one from the world's schedule
    /// seed (the next draw of the same SplitMix64 stream), so a single
    /// printed seed replays both the schedule and the faults.
    pub seed: Option<u64>,
    /// Probability a transmitted copy is dropped in flight.
    pub drop: f64,
    /// Probability the fabric delivers an extra duplicate copy.
    pub duplicate: f64,
    /// Probability a copy arrives with one payload bit flipped (always
    /// caught by the checksum and discarded by the receiver).
    pub corrupt: f64,
    /// Probability a copy is delayed by a fraction of the timeout.
    pub delay: f64,
    /// Base retransmission timeout, in simulated time units.
    pub timeout: f64,
    /// Cap on the exponential backoff (`timeout · 2^attempt` is clamped
    /// to this).
    pub backoff_cap: f64,
    /// Retransmissions before the sender declares delivery failed.
    pub max_retries: u32,
    /// Ranks to kill, each at a chosen operation index.
    pub kills: Vec<KillSpec>,
    /// Ranks to slow down.
    pub stragglers: Vec<Straggler>,
    /// Correlated kills that arm when the fault epoch reaches a
    /// threshold (see [`CascadeSpec`]).
    pub cascades: Vec<CascadeSpec>,
    /// Healing link-level partitions (see [`Partition`]).
    pub partitions: Vec<Partition>,
    /// Probabilistic straggler storm (see [`Storm`]).
    pub storm: Option<Storm>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: None,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            timeout: 8.0,
            backoff_cap: 64.0,
            max_retries: 16,
            kills: Vec::new(),
            stragglers: Vec::new(),
            cascades: Vec::new(),
            partitions: Vec::new(),
            storm: None,
        }
    }
}

/// Identity of one transmitted copy — the complete hash input every
/// fault decision is a pure function of. Scheduling never contributes,
/// which is what makes fault outcomes schedule-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Transmission {
    /// Communicator context of the channel.
    pub ctx: Ctx,
    /// Sender's world rank.
    pub from_world: usize,
    /// Receiver's world rank.
    pub to_world: usize,
    /// Channel sequence number of the message.
    pub seq: u64,
    /// 0-based retransmission attempt.
    pub attempt: u32,
}

impl Transmission {
    fn parts(self) -> [u64; 5] {
        [self.ctx, self.from_world as u64, self.to_world as u64, self.seq, self.attempt as u64]
    }
}

/// Outcome of one transmission attempt, drawn by [`FaultPlan::decide`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FaultAction {
    /// The copy arrives intact.
    Deliver,
    /// The copy vanishes; the sender retransmits after the timeout.
    Drop,
    /// An extra identical copy arrives (discarded by sequence dedup).
    Duplicate,
    /// The copy arrives with one bit flipped (discarded by checksum).
    Corrupt,
    /// The copy arrives late by the given amount (within the timeout,
    /// so no retransmission is triggered).
    Delay(f64),
}

impl FaultPlan {
    /// The all-zero plan: attached fault machinery, no injected faults.
    /// Runs with this plan are meter- and trace-identical to runs with
    /// no plan at all (asserted by `tests/determinism.rs`).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Pin the fault-decision seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = Some(seed);
        self
    }

    /// Set the drop rate.
    #[must_use]
    pub fn with_drop(mut self, rate: f64) -> FaultPlan {
        self.drop = rate;
        self
    }

    /// Set the duplicate rate.
    #[must_use]
    pub fn with_duplicate(mut self, rate: f64) -> FaultPlan {
        self.duplicate = rate;
        self
    }

    /// Set the corruption rate.
    #[must_use]
    pub fn with_corrupt(mut self, rate: f64) -> FaultPlan {
        self.corrupt = rate;
        self
    }

    /// Set the delay rate.
    #[must_use]
    pub fn with_delay(mut self, rate: f64) -> FaultPlan {
        self.delay = rate;
        self
    }

    /// Add a rank kill (see [`KillSpec`]).
    #[must_use]
    pub fn with_kill(mut self, rank: usize, at_op: u64) -> FaultPlan {
        self.kills.push(KillSpec { rank, at_op });
        self
    }

    /// Add a straggler (see [`Straggler`]).
    #[must_use]
    pub fn with_straggler(mut self, rank: usize, factor: f64) -> FaultPlan {
        self.stragglers.push(Straggler { rank, factor });
        self
    }

    /// Add a cascading kill (see [`CascadeSpec`]).
    #[must_use]
    pub fn with_cascade(mut self, rank: usize, at_epoch: u64) -> FaultPlan {
        self.cascades.push(CascadeSpec { rank, at_epoch });
        self
    }

    /// Add a healing partition (see [`Partition`]).
    #[must_use]
    pub fn with_partition(
        mut self,
        ranks: Vec<usize>,
        seqs: std::ops::Range<u64>,
        heal_attempt: u32,
    ) -> FaultPlan {
        self.partitions.push(Partition {
            ranks,
            from_seq: seqs.start,
            until_seq: seqs.end,
            heal_attempt,
        });
        self
    }

    /// Arm a straggler storm (see [`Storm`]).
    #[must_use]
    pub fn with_storm(mut self, rate: f64, factor: f64) -> FaultPlan {
        self.storm = Some(Storm { rate, factor });
        self
    }

    /// Whether any per-message fault rate is nonzero.
    pub(crate) fn lossy(&self) -> bool {
        self.drop + self.duplicate + self.corrupt + self.delay > 0.0
    }

    /// Panic on a malformed plan (negative rates, rate mass > 1, zero
    /// timeout with a nonzero drop rate, non-positive straggler factor).
    pub(crate) fn validate(&self) {
        let rates = [self.drop, self.duplicate, self.corrupt, self.delay];
        assert!(rates.iter().all(|r| (0.0..1.0).contains(r)), "fault rates must be in [0, 1)");
        assert!(rates.iter().sum::<f64>() <= 1.0, "fault rates must sum to at most 1");
        assert!(self.timeout >= 0.0 && self.backoff_cap >= 0.0, "timeouts must be non-negative");
        assert!(
            self.stragglers.iter().all(|s| s.factor > 0.0),
            "straggler factors must be positive"
        );
        assert!(
            self.kills.iter().all(|k| k.at_op >= 1),
            "kill operation indices are 1-based (at_op >= 1)"
        );
        assert!(
            self.cascades.iter().all(|c| c.at_epoch >= 1),
            "cascade epochs are 1-based (at_epoch >= 1)"
        );
        for p in &self.partitions {
            assert!(!p.ranks.is_empty(), "a partition must name at least one rank");
            assert!(p.from_seq < p.until_seq, "partition sequence window must be non-empty");
            assert!(p.heal_attempt >= 1, "partition heal attempt is 1-based (>= 1)");
            assert!(
                p.heal_attempt <= self.max_retries,
                "partition must heal within max_retries ({} > {}) or delivery cannot complete",
                p.heal_attempt,
                self.max_retries
            );
        }
        if let Some(s) = self.storm {
            assert!((0.0..1.0).contains(&s.rate), "storm rate must be in [0, 1)");
            assert!(s.factor > 0.0, "storm factor must be positive");
        }
    }

    /// Draw the fate of one transmitted copy. A pure function of its
    /// arguments — never of scheduling — so fault outcomes are identical
    /// across interleavings and replay exactly under a fixed plan.
    pub(crate) fn decide(&self, seed: u64, tx: Transmission) -> FaultAction {
        // Partitions blackhole deterministically, before any random
        // draw: the cut is a property of the channel, not of chance.
        if self.partitions.iter().any(|p| p.blackholes(tx)) {
            return FaultAction::Drop;
        }
        if !self.lossy() {
            return FaultAction::Deliver;
        }
        let parts = tx.parts();
        let u = unit_interval(fault_hash(seed, parts));
        let mut acc = self.drop;
        if u < acc {
            return FaultAction::Drop;
        }
        acc += self.corrupt;
        if u < acc {
            return FaultAction::Corrupt;
        }
        acc += self.duplicate;
        if u < acc {
            return FaultAction::Duplicate;
        }
        acc += self.delay;
        if u < acc {
            // A second independent draw sizes the delay within [0, timeout)
            // so a delayed copy never looks lost to the sender.
            let frac = unit_interval(fault_hash(seed ^ 0x0DE1_A0DE_1A0D_E1A0, parts));
            return FaultAction::Delay(frac * self.timeout);
        }
        FaultAction::Deliver
    }

    /// Which payload bit a [`FaultAction::Corrupt`] outcome flips:
    /// `(word index, bit index)`, drawn from the same hash family.
    pub(crate) fn corrupt_site(&self, seed: u64, tx: Transmission, words: usize) -> (usize, u32) {
        let z = fault_hash(seed ^ 0xB17F_11B1_7F11_B17F, tx.parts());
        ((z % words.max(1) as u64) as usize, ((z >> 32) % 64) as u32)
    }

    /// Retransmission timeout for `attempt`: `timeout · 2^attempt`,
    /// clamped to `backoff_cap`.
    pub(crate) fn rto(&self, attempt: u32) -> f64 {
        let exp = attempt.min(60) as i32;
        (self.timeout * f64::powi(2.0, exp)).min(self.backoff_cap)
    }

    /// Per-rank straggler factor (1.0 when the rank is not listed). An
    /// explicit [`Straggler`] entry wins; otherwise an armed [`Storm`]
    /// draws the rank's fate from a pure hash of (fault seed, rank).
    pub(crate) fn slowdown_of(&self, seed: u64, rank: usize) -> f64 {
        if let Some(s) = self.stragglers.iter().find(|s| s.rank == rank) {
            return s.factor;
        }
        if let Some(storm) = self.storm {
            let draw =
                unit_interval(fault_hash(seed ^ 0x5708_3057_0830_5708, [rank as u64, 0, 0, 0, 0]));
            if draw < storm.rate {
                return storm.factor;
            }
        }
        1.0
    }

    /// Per-rank kill point, if any (first matching entry wins).
    pub(crate) fn kill_at(&self, rank: usize) -> Option<u64> {
        self.kills.iter().find(|k| k.rank == rank).map(|k| k.at_op)
    }

    /// Per-rank cascade trigger epoch, if any (first matching entry
    /// wins).
    pub(crate) fn cascade_at(&self, rank: usize) -> Option<u64> {
        self.cascades.iter().find(|c| c.rank == rank).map(|c| c.at_epoch)
    }

    /// Parse the canonical serialization produced by `Display`:
    /// comma-separated `key=value` pairs (`drop`, `dup`, `corrupt`,
    /// `delay`, `timeout`, `cap`, `retries`, `seed`, `storm=RATExFACTOR`,
    /// repeatable `kill=R@OP`, `slow=RxFACTOR`, `cascade=R@EPOCH` and
    /// `part=R1+R2@LO..HI#HEAL`), or the literal `none`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        for part in spec.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {part:?} is not key=value"))?;
            let rate = |v: &str| {
                v.parse::<f64>().map_err(|_| format!("fault spec {key}={v:?} is not a number"))
            };
            match key.trim() {
                "drop" => plan.drop = rate(value)?,
                "dup" => plan.duplicate = rate(value)?,
                "corrupt" => plan.corrupt = rate(value)?,
                "delay" => plan.delay = rate(value)?,
                "timeout" => plan.timeout = rate(value)?,
                "cap" => plan.backoff_cap = rate(value)?,
                "retries" => {
                    plan.max_retries = value
                        .parse()
                        .map_err(|_| format!("fault spec retries={value:?} is not a u32"))?;
                }
                "seed" => plan.seed = Some(parse_u64(value)?),
                "kill" => {
                    let (r, op) = value
                        .split_once('@')
                        .ok_or_else(|| format!("fault spec kill={value:?} is not RANK@OP"))?;
                    plan.kills.push(KillSpec {
                        rank: r
                            .parse()
                            .map_err(|_| format!("fault spec kill rank {r:?} is not a usize"))?,
                        at_op: op
                            .parse()
                            .map_err(|_| format!("fault spec kill op {op:?} is not a u64"))?,
                    });
                }
                "slow" => {
                    let (r, f) = value
                        .split_once('x')
                        .ok_or_else(|| format!("fault spec slow={value:?} is not RANKxFACTOR"))?;
                    plan.stragglers.push(Straggler {
                        rank: r
                            .parse()
                            .map_err(|_| format!("fault spec slow rank {r:?} is not a usize"))?,
                        factor: rate(f)?,
                    });
                }
                "cascade" => {
                    let (r, e) = value
                        .split_once('@')
                        .ok_or_else(|| format!("fault spec cascade={value:?} is not RANK@EPOCH"))?;
                    plan.cascades.push(CascadeSpec {
                        rank: r
                            .parse()
                            .map_err(|_| format!("fault spec cascade rank {r:?} is not a usize"))?,
                        at_epoch: e
                            .parse()
                            .map_err(|_| format!("fault spec cascade epoch {e:?} is not a u64"))?,
                    });
                }
                "part" => {
                    let (ranks, window) = value.split_once('@').ok_or_else(|| {
                        format!("fault spec part={value:?} is not R1+R2@LO..HI#HEAL")
                    })?;
                    let (seqs, heal) = window.split_once('#').ok_or_else(|| {
                        format!("fault spec part window {window:?} is not LO..HI#HEAL")
                    })?;
                    let (lo, hi) = seqs.split_once("..").ok_or_else(|| {
                        format!("fault spec part sequence window {seqs:?} is not LO..HI")
                    })?;
                    let parse_rank = |r: &str| {
                        r.parse::<usize>()
                            .map_err(|_| format!("fault spec part rank {r:?} is not a usize"))
                    };
                    plan.partitions.push(Partition {
                        ranks: ranks.split('+').map(parse_rank).collect::<Result<_, _>>()?,
                        from_seq: lo
                            .parse()
                            .map_err(|_| format!("fault spec part sequence {lo:?} is not a u64"))?,
                        until_seq: hi
                            .parse()
                            .map_err(|_| format!("fault spec part sequence {hi:?} is not a u64"))?,
                        heal_attempt: heal.parse().map_err(|_| {
                            format!("fault spec part heal attempt {heal:?} is not a u32")
                        })?,
                    });
                }
                "storm" => {
                    let (r, f) = value
                        .split_once('x')
                        .ok_or_else(|| format!("fault spec storm={value:?} is not RATExFACTOR"))?;
                    plan.storm = Some(Storm { rate: rate(r)?, factor: rate(f)? });
                }
                other => return Err(format!("fault spec key {other:?} is not recognized")),
            }
        }
        Ok(plan)
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    /// Alias for [`FaultPlan::parse`], so `--faults` specs work with
    /// `str::parse` and argument parsers.
    fn from_str(spec: &str) -> Result<FaultPlan, String> {
        FaultPlan::parse(spec)
    }
}

fn parse_u64(v: &str) -> Result<u64, String> {
    let t = v.trim();
    match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.parse(),
    }
    .map_err(|_| format!("fault spec seed {v:?} is not a u64 (decimal or 0x hex)"))
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = FaultPlan::default();
        let mut parts: Vec<String> = Vec::new();
        if let Some(s) = self.seed {
            parts.push(format!("seed={s:#x}"));
        }
        for (key, mine, default) in [
            ("drop", self.drop, d.drop),
            ("dup", self.duplicate, d.duplicate),
            ("corrupt", self.corrupt, d.corrupt),
            ("delay", self.delay, d.delay),
            ("timeout", self.timeout, d.timeout),
            ("cap", self.backoff_cap, d.backoff_cap),
        ] {
            if mine != default {
                parts.push(format!("{key}={mine}"));
            }
        }
        if self.max_retries != d.max_retries {
            parts.push(format!("retries={}", self.max_retries));
        }
        for k in &self.kills {
            parts.push(format!("kill={}@{}", k.rank, k.at_op));
        }
        for s in &self.stragglers {
            parts.push(format!("slow={}x{}", s.rank, s.factor));
        }
        for c in &self.cascades {
            parts.push(format!("cascade={}@{}", c.rank, c.at_epoch));
        }
        for p in &self.partitions {
            let ranks = p.ranks.iter().map(|r| r.to_string()).collect::<Vec<_>>().join("+");
            parts.push(format!("part={ranks}@{}..{}#{}", p.from_seq, p.until_seq, p.heal_attempt));
        }
        if let Some(s) = self.storm {
            parts.push(format!("storm={}x{}", s.rate, s.factor));
        }
        if parts.is_empty() {
            f.write_str("none")
        } else {
            f.write_str(&parts.join(","))
        }
    }
}

/// Mix `seed` and `parts` through SplitMix64 into one draw. Each part
/// perturbs the generator state before the next advance, so every field
/// changes the outcome.
fn fault_hash(seed: u64, parts: [u64; 5]) -> u64 {
    let mut state = seed;
    let mut z = splitmix64(&mut state);
    for p in parts {
        state ^= p.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = splitmix64(&mut state);
    }
    z
}

/// Map a draw to `[0, 1)` with 53 bits of precision.
fn unit_interval(z: u64) -> f64 {
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// FNV-1a over the payload's bit patterns. Per word the state is XORed
/// then multiplied by an odd constant — both bijections — so any
/// single-bit corruption always changes the digest.
pub(crate) fn checksum(payload: &[f64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for v in payload {
        h = (h ^ v.to_bits()).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Reliable-delivery metadata carried by every message when a fault plan
/// is attached: the per-channel sequence number and the payload checksum
/// stamped at send time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MsgMeta {
    pub seq: u64,
    pub check: u64,
}

/// Typed error surfaced when a rank dies under the fault plan: returned
/// by [`Rank::catch_failures`](crate::Rank::catch_failures) both on the
/// killed rank itself and on survivors whose communication can no longer
/// complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankFailed {
    /// World rank of the failed rank this error reports.
    pub rank: usize,
    /// Human-readable detail naming the fault-plan entry and replay seed.
    pub detail: String,
}

impl std::fmt::Display for RankFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} failed: {}", self.rank, self.detail)
    }
}

impl std::error::Error for RankFailed {}

/// Panic payload used to unwind a rank to its
/// [`catch_failures`](crate::Rank::catch_failures) boundary on a fault.
/// `World::run` converts an uncaught one into a typed failure report
/// instead of a bare "rank panicked".
pub(crate) struct FaultPanic(pub(crate) RankFailed);

/// Marker returned by fabric waits that were interrupted because a rank
/// died while the caller was inside a failure-catching scope.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultKick;

/// Shared fault-injection state, owned by the fabric. The epoch counter
/// bumps on every death; ranks inside a catching scope compare it
/// against the epoch they entered with to learn that the world changed
/// under them.
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    pub(crate) seed: u64,
    epoch: AtomicU64,
    dead: Mutex<Vec<bool>>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, seed: u64, world_size: usize) -> FaultState {
        FaultState {
            plan,
            seed,
            epoch: AtomicU64::new(0),
            dead: Mutex::new(vec![false; world_size]),
        }
    }

    /// Current fault epoch (number of deaths so far).
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Whether world rank `r` has been killed.
    pub(crate) fn is_dead(&self, r: usize) -> bool {
        lock_unpoisoned(&self.dead)[r]
    }

    /// World ranks killed so far, ascending.
    pub(crate) fn dead_ranks(&self) -> Vec<usize> {
        let dead = lock_unpoisoned(&self.dead);
        dead.iter().enumerate().filter_map(|(r, &d)| d.then_some(r)).collect()
    }

    /// Record the death of `r`. The dead flag is set before the epoch
    /// bump, so any rank that observes the new epoch also sees the
    /// updated dead set. Returns false if `r` was already dead.
    pub(crate) fn mark_dead(&self, r: usize) -> bool {
        let mut dead = lock_unpoisoned(&self.dead);
        if dead[r] {
            return false;
        }
        dead[r] = true;
        drop(dead);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(ctx: Ctx, seq: u64, attempt: u32) -> Transmission {
        Transmission { ctx, from_world: 0, to_world: 1, seq, attempt }
    }

    #[test]
    fn decide_is_a_pure_function_of_its_arguments() {
        let plan = FaultPlan::none().with_drop(0.3).with_duplicate(0.1).with_corrupt(0.1);
        for seq in 0..50u64 {
            let a = plan.decide(42, tx(3, seq, 0));
            let b = plan.decide(42, tx(3, seq, 0));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn decide_rates_are_roughly_respected() {
        let plan = FaultPlan::none().with_drop(0.25);
        let drops =
            (0..4000u64).filter(|&seq| plan.decide(7, tx(0, seq, 0)) == FaultAction::Drop).count();
        // 4000 draws at p = 0.25: expect ~1000; allow a generous band.
        assert!((800..1200).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn zero_rate_plan_always_delivers() {
        let plan = FaultPlan::none();
        for seq in 0..100u64 {
            assert_eq!(plan.decide(9, tx(1, seq, 0)), FaultAction::Deliver);
        }
    }

    #[test]
    fn different_attempts_draw_independently() {
        let plan = FaultPlan::none().with_drop(0.5);
        let outcomes: Vec<FaultAction> =
            (0..64).map(|attempt| plan.decide(3, tx(0, 0, attempt))).collect();
        assert!(outcomes.contains(&FaultAction::Deliver), "some attempt must get through");
        assert!(outcomes.contains(&FaultAction::Drop), "some attempt must drop at p = 0.5");
    }

    #[test]
    fn checksum_catches_any_single_bit_flip() {
        let payload = vec![1.5, -2.25, 0.0, 1e300];
        let base = checksum(&payload);
        for word in 0..payload.len() {
            for bit in [0u32, 17, 52, 63] {
                let mut flipped = payload.clone();
                flipped[word] = f64::from_bits(flipped[word].to_bits() ^ (1u64 << bit));
                assert_ne!(checksum(&flipped), base, "flip word {word} bit {bit}");
            }
        }
    }

    #[test]
    fn rto_backs_off_exponentially_with_cap() {
        let plan = FaultPlan { timeout: 2.0, backoff_cap: 10.0, ..FaultPlan::default() };
        assert_eq!(plan.rto(0), 2.0);
        assert_eq!(plan.rto(1), 4.0);
        assert_eq!(plan.rto(2), 8.0);
        assert_eq!(plan.rto(3), 10.0, "capped");
        assert_eq!(plan.rto(60), 10.0, "large attempts stay capped");
    }

    #[test]
    fn display_parse_round_trips() {
        let plan = FaultPlan::none()
            .with_seed(0xAB)
            .with_drop(0.05)
            .with_duplicate(0.01)
            .with_corrupt(0.02)
            .with_kill(4, 12)
            .with_straggler(2, 3.0);
        let line = plan.to_string();
        let back = FaultPlan::parse(&line).expect("canonical form parses");
        assert_eq!(back, plan, "round-trip through {line:?}");
    }

    #[test]
    fn display_parse_round_trips_multi_fault_clauses() {
        let plan = FaultPlan::none()
            .with_seed(0xFA)
            .with_drop(0.08)
            .with_kill(4, 5)
            .with_cascade(7, 1)
            .with_cascade(2, 3)
            .with_partition(vec![1, 2, 3], 4..64, 3)
            .with_storm(0.25, 4.0);
        let line = plan.to_string();
        let back: FaultPlan = line.parse().expect("canonical form parses via FromStr");
        assert_eq!(back, plan, "round-trip through {line:?}");
    }

    #[test]
    fn partition_blackholes_exactly_the_cut_window_and_heals() {
        let plan = FaultPlan::none().with_partition(vec![1, 2], 4..8, 3);
        let tx = |from, to, seq, attempt| Transmission {
            ctx: 0,
            from_world: from,
            to_world: to,
            seq,
            attempt,
        };
        // Crossing the cut inside the window, before the heal: dropped.
        assert_eq!(plan.decide(7, tx(0, 1, 4, 0)), FaultAction::Drop);
        assert_eq!(plan.decide(7, tx(2, 5, 7, 2)), FaultAction::Drop);
        // Attempt at the heal index gets through.
        assert_eq!(plan.decide(7, tx(0, 1, 4, 3)), FaultAction::Deliver);
        // Outside the sequence window: unaffected.
        assert_eq!(plan.decide(7, tx(0, 1, 3, 0)), FaultAction::Deliver);
        assert_eq!(plan.decide(7, tx(0, 1, 8, 0)), FaultAction::Deliver);
        // Both endpoints on the same side of the cut: unaffected.
        assert_eq!(plan.decide(7, tx(1, 2, 5, 0)), FaultAction::Deliver);
        assert_eq!(plan.decide(7, tx(0, 3, 5, 0)), FaultAction::Deliver);
    }

    #[test]
    fn storm_draw_is_pure_and_respects_the_rate() {
        let plan = FaultPlan::none().with_storm(0.25, 4.0);
        let slowed = (0..4000).filter(|&r| plan.slowdown_of(7, r) == 4.0).count();
        assert!((800..1200).contains(&slowed), "slowed = {slowed}");
        for r in 0..64 {
            assert_eq!(plan.slowdown_of(7, r), plan.slowdown_of(7, r), "pure per (seed, rank)");
        }
        // An explicit straggler entry overrides the storm draw.
        let pinned = plan.clone().with_straggler(3, 9.0);
        assert_eq!(pinned.slowdown_of(7, 3), 9.0);
    }

    #[test]
    fn cascade_at_reports_the_first_matching_entry() {
        let plan = FaultPlan::none().with_cascade(5, 2).with_cascade(5, 9);
        assert_eq!(plan.cascade_at(5), Some(2));
        assert_eq!(plan.cascade_at(4), None);
    }

    #[test]
    fn default_plan_displays_and_parses_as_none() {
        assert_eq!(FaultPlan::default().to_string(), "none");
        assert_eq!(FaultPlan::parse("none").expect("parses"), FaultPlan::default());
        assert_eq!(FaultPlan::parse("").expect("parses"), FaultPlan::default());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop=x").is_err());
        assert!(FaultPlan::parse("kill=4").is_err());
        assert!(FaultPlan::parse("slow=2").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("cascade=4").is_err());
        assert!(FaultPlan::parse("part=1+2@4..64").is_err(), "missing heal attempt");
        assert!(FaultPlan::parse("part=1+2@4#3").is_err(), "missing sequence window");
        assert!(FaultPlan::parse("part=x@4..64#3").is_err(), "non-numeric rank");
        assert!(FaultPlan::parse("storm=0.25").is_err(), "missing factor");
    }

    #[test]
    fn fault_state_tracks_deaths_and_epochs() {
        let st = FaultState::new(FaultPlan::none(), 0, 4);
        assert_eq!(st.epoch(), 0);
        assert!(st.mark_dead(2));
        assert!(!st.mark_dead(2), "second death of the same rank is a no-op");
        assert_eq!(st.epoch(), 1);
        assert!(st.is_dead(2));
        assert_eq!(st.dead_ranks(), vec![2]);
    }
}
