//! pmm-verify: communication-correctness checking for the simulator.
//!
//! The simulator executes schedules with real blocking — a mismatched or
//! misordered collective would, like under MPI, hang every rank forever,
//! and a hang in `cargo test` is indistinguishable from a slow run. This
//! module makes communication correctness a *checked* property:
//!
//! 1. **Waiting-on registry + watchdog.** Every blocking point in the
//!    fabric (mailbox receive, split rendezvous, the hard-sync barrier)
//!    registers a `WaitInfo` describing what the rank is waiting for
//!    and which world ranks could unblock it. A watchdog thread (enabled
//!    by default in debug builds; see [`World::with_watchdog`]) builds
//!    the wait-for graph, runs a can-any-rank-progress fixpoint, and —
//!    when a set of blocked ranks is provably stuck across two
//!    consecutive scans — aborts the world with a report naming each
//!    blocked rank, the operation kind, the communicator context, and
//!    the call site, instead of hanging.
//!
//! 2. **Collective-matching lint.** Every collective registers a
//!    `CallDesc` (op kind, element count, call site) against a
//!    per-communicator ledger; the `n`-th collective on a communicator
//!    must agree on the op kind (and, for symmetric ops, the element
//!    count) across all members. Disagreement aborts the world
//!    *deterministically* — before the mismatch turns into a hang — with
//!    a diff of the disagreeing descriptors.
//!
//! 3. **Happens-before audit.** Each rank maintains a vector clock,
//!    piggybacked on every message; receipt asserts per-sender clock
//!    monotonicity (catching duplication or reordering inside the
//!    fabric), and strict-drain worlds additionally verify at exit that
//!    every metered send was matched by a metered receive — i.e. that
//!    cost accounting only merges along communication edges.
//!
//! [`World::with_watchdog`]: crate::World::with_watchdog

use std::panic::Location;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::fabric::Ctx;

/// Lock a mutex, ignoring poisoning: verify state must stay readable
/// while rank threads are being torn down by an abort panic.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The kind of collective operation, as registered with the
/// collective-matching lint by [`Rank::collective_begin`].
///
/// [`Rank::collective_begin`]: crate::Rank::collective_begin
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveOp {
    /// All-Gather (uniform or `v`-variant; per-rank contributions may
    /// legitimately differ in size).
    AllGather,
    /// All-Reduce (element counts must agree).
    AllReduce,
    /// All-to-All (element counts must agree).
    AllToAll,
    /// Barrier.
    Barrier,
    /// Broadcast.
    Bcast,
    /// Gather (root collects; per-rank contributions may differ).
    Gather,
    /// Reduce to a root (element counts must agree).
    Reduce,
    /// Reduce-Scatter (every rank contributes a full vector; element
    /// counts must agree).
    ReduceScatter,
    /// Inclusive scan (element counts must agree).
    Scan,
    /// Exclusive scan (element counts must agree).
    ExScan,
    /// Scatter from a root (per-rank shares may differ).
    Scatter,
    /// Communicator split (a collective over the parent communicator).
    Split,
}

impl CollectiveOp {
    /// Whether all members must register the same element count.
    fn uniform_elems(self) -> bool {
        matches!(
            self,
            CollectiveOp::AllReduce
                | CollectiveOp::AllToAll
                | CollectiveOp::Barrier
                | CollectiveOp::Reduce
                | CollectiveOp::ReduceScatter
                | CollectiveOp::Scan
                | CollectiveOp::ExScan
        )
    }
}

impl std::fmt::Display for CollectiveOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CollectiveOp::AllGather => "all_gather",
            CollectiveOp::AllReduce => "all_reduce",
            CollectiveOp::AllToAll => "all_to_all",
            CollectiveOp::Barrier => "barrier",
            CollectiveOp::Bcast => "bcast",
            CollectiveOp::Gather => "gather",
            CollectiveOp::Reduce => "reduce",
            CollectiveOp::ReduceScatter => "reduce_scatter",
            CollectiveOp::Scan => "scan",
            CollectiveOp::ExScan => "exscan",
            CollectiveOp::Scatter => "scatter",
            CollectiveOp::Split => "split",
        };
        f.write_str(name)
    }
}

/// One member's registered collective call, for the matching lint.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CallDesc {
    pub op: CollectiveOp,
    /// Element count the member brought to the collective (op-specific;
    /// 0 for barriers and splits).
    pub elems: u64,
    /// World rank of the registrant.
    pub world_rank: usize,
    /// Source location of the user-level call.
    pub site: &'static Location<'static>,
}

/// What a blocked rank is waiting for.
#[derive(Debug, Clone)]
pub(crate) enum WaitKind {
    /// Blocked in a directed receive.
    Recv {
        /// Sender's world rank.
        from_world: usize,
        /// This rank's index within the communicator (mailbox key).
        ctx_index: usize,
    },
    /// Blocked in a communicator-split rendezvous.
    Split {
        /// Per-parent split sequence number (rendezvous key).
        seq: u64,
    },
    /// Blocked in the zero-cost world barrier.
    Barrier {
        /// Barrier generation the rank entered on.
        generation: u64,
    },
}

impl std::fmt::Display for WaitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitKind::Recv { from_world, .. } => write!(f, "recv(from world rank {from_world})"),
            WaitKind::Split { seq } => write!(f, "comm split rendezvous (split #{seq})"),
            WaitKind::Barrier { .. } => write!(f, "world barrier"),
        }
    }
}

/// A registered blocking wait.
#[derive(Debug, Clone)]
pub(crate) struct WaitInfo {
    pub kind: WaitKind,
    /// Communicator context of the blocking operation.
    pub ctx: Ctx,
    /// World ranks whose action could unblock this rank.
    pub waiting_on: Vec<usize>,
    /// Source location of the user-level blocking call.
    pub site: &'static Location<'static>,
}

/// Per-rank verify slot. `gen` counts wait-state transitions; the
/// watchdog uses it to distinguish "still stuck in the same wait" from
/// "briefly blocked again".
#[derive(Debug, Default)]
struct RankSlot {
    wait: Option<WaitInfo>,
    gen: u64,
    done: bool,
}

/// Snapshot of one rank's verify slot, taken by the watchdog.
#[derive(Debug, Clone)]
pub(crate) struct SlotView {
    pub wait: Option<WaitInfo>,
    pub gen: u64,
    pub done: bool,
}

/// Panic payload used when a rank is torn down by a verifier abort. The
/// world run distinguishes these from genuine program panics and
/// re-raises the verifier report instead.
pub(crate) struct AbortPanic(pub String);

/// Shared verify state; owned by the fabric, one per world.
pub(crate) struct VerifyState {
    slots: Vec<Mutex<RankSlot>>,
    aborted: AtomicBool,
    report: Mutex<Option<String>>,
    ledger: Mutex<std::collections::HashMap<Ctx, CommLedger>>,
    /// One line per injected rank death, naming the fault-plan entry and
    /// the replay seed. Consulted by the watchdog and scheduler so a kill
    /// is reported as a rank failure, never as a spurious deadlock.
    fault_notes: Mutex<Vec<String>>,
}

impl VerifyState {
    pub fn new(world_size: usize) -> VerifyState {
        VerifyState {
            slots: (0..world_size).map(|_| Mutex::new(RankSlot::default())).collect(),
            aborted: AtomicBool::new(false),
            report: Mutex::new(None),
            ledger: Mutex::new(std::collections::HashMap::new()),
            fault_notes: Mutex::new(Vec::new()),
        }
    }

    /// Record an injected rank death (fault layer use).
    pub fn note_rank_failure(&self, line: String) {
        lock_unpoisoned(&self.fault_notes).push(line);
    }

    /// Lines describing injected rank deaths so far, in death order.
    pub fn rank_failures(&self) -> Vec<String> {
        lock_unpoisoned(&self.fault_notes).clone()
    }

    pub fn world_size(&self) -> usize {
        self.slots.len()
    }

    /// Register that `world_rank` is about to block.
    pub fn set_wait(&self, world_rank: usize, info: WaitInfo) {
        let mut slot = lock_unpoisoned(&self.slots[world_rank]);
        slot.wait = Some(info);
        slot.gen += 1;
    }

    /// Clear `world_rank`'s wait registration (it made progress).
    pub fn clear_wait(&self, world_rank: usize) {
        let mut slot = lock_unpoisoned(&self.slots[world_rank]);
        slot.wait = None;
        slot.gen += 1;
    }

    /// Mark `world_rank` finished (normally or by panic) — it will take
    /// no further fabric actions.
    pub fn mark_done(&self, world_rank: usize) {
        let mut slot = lock_unpoisoned(&self.slots[world_rank]);
        slot.wait = None;
        slot.done = true;
        slot.gen += 1;
    }

    /// Whether the world has been aborted by the verifier.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// First abort wins; returns whether this call set the flag.
    pub fn try_set_aborted(&self, report: String) -> bool {
        let mut stored = lock_unpoisoned(&self.report);
        if self.aborted.swap(true, Ordering::SeqCst) {
            return false;
        }
        *stored = Some(report);
        true
    }

    /// The abort report, if any.
    pub fn report_text(&self) -> Option<String> {
        lock_unpoisoned(&self.report).clone()
    }

    /// Panic this rank out of a blocking wait after an abort.
    pub fn abort_panic(&self, world_rank: usize) -> ! {
        self.mark_done(world_rank);
        let report = self
            .report_text()
            .unwrap_or_else(|| "pmm-verify: world aborted with no stored report".to_string());
        std::panic::panic_any(AbortPanic(format!(
            "pmm-verify: rank {world_rank} torn down by verifier abort\n{report}"
        )));
    }

    /// Snapshot all slots (watchdog use; slot locks are leaves, taken one
    /// at a time).
    pub fn snapshot(&self) -> Vec<SlotView> {
        self.slots
            .iter()
            .map(|s| {
                let slot = lock_unpoisoned(s);
                SlotView { wait: slot.wait.clone(), gen: slot.gen, done: slot.done }
            })
            .collect()
    }

    /// Register the next collective call of member `member_index` of the
    /// communicator `ctx` and cross-check it against the other members'
    /// registrations for the same per-communicator sequence number.
    ///
    /// Returns the mismatch report if the descriptors disagree.
    #[allow(clippy::too_many_arguments)] // a call descriptor genuinely carries all of these
    pub fn register_collective(
        &self,
        ctx: Ctx,
        comm_size: usize,
        member_index: usize,
        world_rank: usize,
        op: CollectiveOp,
        elems: u64,
        site: &'static Location<'static>,
    ) -> Result<(), String> {
        let mut ledger = lock_unpoisoned(&self.ledger);
        let cl = ledger.entry(ctx).or_insert_with(|| CommLedger::new(comm_size));
        assert_eq!(
            cl.size, comm_size,
            "communicator ctx {ctx} registered with two different sizes — fabric bug"
        );
        let seq = cl.next_seq[member_index];
        cl.next_seq[member_index] += 1;
        let round = cl.rounds.entry(seq).or_insert_with(|| Round::new(comm_size));
        let desc = CallDesc { op, elems, world_rank, site };

        let conflict = round
            .descs
            .iter()
            .flatten()
            .find(|prev| prev.op != op || (op.uniform_elems() && prev.elems != elems));
        if let Some(prev) = conflict {
            let mut report = format!(
                "pmm-verify: collective mismatch on communicator ctx {ctx} \
                 (collective #{seq} of this communicator)\n\
                 world rank {world_rank} entered `{op}` with {elems} element(s) at {site}, but \
                 world rank {} had entered `{}` with {} element(s) at {}\n\
                 descriptors registered so far for collective #{seq} on ctx {ctx}:\n",
                prev.world_rank, prev.op, prev.elems, prev.site
            );
            round.descs[member_index] = Some(desc);
            round.registered += 1;
            for (idx, d) in round.descs.iter().enumerate() {
                match d {
                    Some(d) => report.push_str(&format!(
                        "  member {idx} (world rank {}): {} [{} elems] at {}\n",
                        d.world_rank, d.op, d.elems, d.site
                    )),
                    None => report.push_str(&format!("  member {idx}: not yet entered\n")),
                }
            }
            return Err(report);
        }

        round.descs[member_index] = Some(desc);
        round.registered += 1;
        if round.registered == comm_size {
            cl.rounds.remove(&seq);
        }
        Ok(())
    }

    /// Human-readable lines describing partially-entered collectives on
    /// every communicator (for deadlock reports).
    pub fn all_pending_collectives(&self) -> Vec<String> {
        let ctxs: Vec<Ctx> = {
            let ledger = lock_unpoisoned(&self.ledger);
            let mut ctxs: Vec<Ctx> = ledger.keys().copied().collect();
            ctxs.sort_unstable();
            ctxs
        };
        ctxs.into_iter().flat_map(|ctx| self.pending_collectives(ctx)).collect()
    }

    /// Human-readable lines describing partially-entered collectives on
    /// `ctx` (for deadlock reports).
    pub fn pending_collectives(&self, ctx: Ctx) -> Vec<String> {
        let ledger = lock_unpoisoned(&self.ledger);
        let mut lines = Vec::new();
        if let Some(cl) = ledger.get(&ctx) {
            let mut seqs: Vec<u64> = cl.rounds.keys().copied().collect();
            seqs.sort_unstable();
            for seq in seqs {
                let round = &cl.rounds[&seq];
                let entered: Vec<String> = round
                    .descs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, d)| {
                        d.as_ref().map(|d| format!("member {i}=world {} ({})", d.world_rank, d.op))
                    })
                    .collect();
                let missing: Vec<usize> = round
                    .descs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, d)| d.is_none().then_some(i))
                    .collect();
                lines.push(format!(
                    "  ctx {ctx} collective #{seq}: {}/{} entered [{}]; missing members {:?}",
                    round.registered,
                    round.descs.len(),
                    entered.join(", "),
                    missing
                ));
            }
        }
        lines
    }
}

/// Per-communicator collective ledger.
struct CommLedger {
    size: usize,
    /// Per-member count of collectives registered so far.
    next_seq: Vec<u64>,
    /// Partially-entered collectives, keyed by sequence number.
    rounds: std::collections::HashMap<u64, Round>,
}

impl CommLedger {
    fn new(size: usize) -> CommLedger {
        CommLedger { size, next_seq: vec![0; size], rounds: std::collections::HashMap::new() }
    }
}

/// One collective's registrations across members.
struct Round {
    descs: Vec<Option<CallDesc>>,
    registered: usize,
}

impl Round {
    fn new(size: usize) -> Round {
        Round { descs: vec![None; size], registered: 0 }
    }
}

/// Watchdog configuration of a [`World`](crate::World).
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// Scan interval of the deadlock watchdog, or `None` to disable.
    /// A confirmed deadlock is reported after two consecutive stable
    /// scans, i.e. within roughly three intervals.
    pub watchdog: Option<Duration>,
    /// When set, the world additionally fails if any message was sent
    /// but never received (undrained mailboxes or stashes at exit), and
    /// verifies global meter conservation.
    pub strict_drain: bool,
}

impl Default for VerifyConfig {
    fn default() -> VerifyConfig {
        VerifyConfig {
            // Debug builds (which is what `cargo test` runs) get hang
            // protection by default; release/bench runs opt in.
            watchdog: if cfg!(debug_assertions) { Some(Duration::from_secs(2)) } else { None },
            strict_drain: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn matching_collectives_pass_and_rounds_are_cleaned() {
        let v = VerifyState::new(2);
        for round in 0..3u64 {
            for member in 0..2 {
                v.register_collective(0, 2, member, member, CollectiveOp::AllReduce, 8, site())
                    .unwrap_or_else(|e| panic!("round {round} member {member}: {e}"));
            }
        }
        assert!(v.pending_collectives(0).is_empty(), "completed rounds must be dropped");
    }

    #[test]
    fn op_kind_mismatch_is_reported_with_both_descriptors() {
        let v = VerifyState::new(3);
        v.register_collective(7, 3, 0, 10, CollectiveOp::AllGather, 4, site())
            .expect("first registration is vacuously consistent");
        let err = v
            .register_collective(7, 3, 2, 12, CollectiveOp::ReduceScatter, 4, site())
            .expect_err("op-kind mismatch must be flagged");
        assert!(err.contains("collective mismatch"), "{err}");
        assert!(err.contains("all_gather"), "{err}");
        assert!(err.contains("reduce_scatter"), "{err}");
        assert!(err.contains("ctx 7"), "{err}");
        assert!(err.contains("world rank 10"), "{err}");
        assert!(err.contains("world rank 12"), "{err}");
        assert!(err.contains("member 1: not yet entered"), "{err}");
    }

    #[test]
    fn uniform_ops_flag_element_count_skew() {
        let v = VerifyState::new(2);
        v.register_collective(1, 2, 0, 0, CollectiveOp::AllReduce, 10, site())
            .expect("first registration");
        let err = v
            .register_collective(1, 2, 1, 1, CollectiveOp::AllReduce, 11, site())
            .expect_err("all_reduce element counts must agree");
        assert!(err.contains("10 element"), "{err}");
        assert!(err.contains("11 element"), "{err}");
    }

    #[test]
    fn non_uniform_ops_allow_element_count_skew() {
        let v = VerifyState::new(2);
        v.register_collective(2, 2, 0, 0, CollectiveOp::AllGather, 5, site())
            .expect("first registration");
        v.register_collective(2, 2, 1, 1, CollectiveOp::AllGather, 9, site())
            .expect("all_gather contributions may be uneven");
    }

    #[test]
    fn sequence_skew_shows_up_as_pending_rounds() {
        let v = VerifyState::new(2);
        // Member 0 runs two barriers; member 1 has only run one.
        for _ in 0..2 {
            v.register_collective(0, 2, 0, 0, CollectiveOp::Barrier, 0, site())
                .expect("member 0 registrations");
        }
        v.register_collective(0, 2, 1, 1, CollectiveOp::Barrier, 0, site())
            .expect("member 1 registration");
        let pending = v.pending_collectives(0);
        assert_eq!(pending.len(), 1, "exactly the skewed round is pending: {pending:?}");
        assert!(pending[0].contains("collective #1"), "{}", pending[0]);
        assert!(pending[0].contains("missing members [1]"), "{}", pending[0]);
    }

    #[test]
    fn abort_is_first_writer_wins() {
        let v = VerifyState::new(1);
        assert!(v.try_set_aborted("first".into()));
        assert!(!v.try_set_aborted("second".into()));
        assert_eq!(v.report_text().as_deref(), Some("first"));
        assert!(v.is_aborted());
    }
}
