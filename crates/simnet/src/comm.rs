//! Communicator descriptors.
//!
//! A [`Comm`] names a group of ranks and a context on the fabric; it is a
//! cheap, clonable handle (the member list is shared). All messaging goes
//! through [`Rank`](crate::Rank) methods that take a `&Comm`, because the
//! rank owns the meters and the clock.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use crate::fabric::Ctx;

/// A communicator: an ordered group of world ranks sharing a context.
///
/// Indices *within* the communicator (`0..size()`) are the addressing used
/// by [`Rank::send`](crate::Rank::send) and friends, exactly like MPI
/// ranks within a sub-communicator.
#[derive(Clone)]
pub struct Comm {
    pub(crate) ctx: Ctx,
    /// World ranks of the members, in communicator order.
    pub(crate) members: Arc<Vec<usize>>,
    /// This rank's index within `members`.
    pub(crate) my_index: usize,
    /// Per-thread counter so successive splits on the same parent rendezvous
    /// correctly (all members must issue splits in the same order).
    pub(crate) split_seq: Rc<Cell<u64>>,
}

impl Comm {
    pub(crate) fn new(ctx: Ctx, members: Arc<Vec<usize>>, my_index: usize) -> Comm {
        debug_assert!(my_index < members.len());
        Comm { ctx, members, my_index, split_seq: Rc::new(Cell::new(0)) }
    }

    /// Number of members.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's index within the communicator.
    #[inline]
    pub fn index(&self) -> usize {
        self.my_index
    }

    /// The context id (diagnostics, trace filtering).
    #[inline]
    pub fn ctx(&self) -> Ctx {
        self.ctx
    }

    /// World rank of member `index`.
    #[inline]
    pub fn world_rank_of(&self, index: usize) -> usize {
        self.members[index]
    }

    /// The members' world ranks in communicator order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    pub(crate) fn next_split_seq(&self) -> u64 {
        let s = self.split_seq.get();
        self.split_seq.set(s + 1);
        s
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("ctx", &self.ctx)
            .field("size", &self.size())
            .field("index", &self.my_index)
            .finish()
    }
}
