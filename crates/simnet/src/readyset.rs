//! Order-statistics set of runnable ranks.
//!
//! The deterministic scheduler picks "the `k`-th smallest runnable rank"
//! at every scheduling point. The seed-era implementation materialized an
//! ascending `Vec<usize>` of ready ranks per pick — O(P) work and O(P)
//! allocation at every baton hand-off, which is what capped executed
//! worlds at a few hundred ranks. [`ReadySet`] keeps the same set as a
//! Fenwick (binary-indexed) tree of 0/1 memberships, so membership flips
//! and `select(k)` are O(log P) and the pick stream is **bitwise
//! identical** to indexing the old ascending vector: `select(k)` returns
//! exactly `ready[k]`.

/// A set over `0..n` supporting O(log n) insert/remove and O(log n)
/// selection of the `k`-th smallest member.
#[derive(Debug)]
pub(crate) struct ReadySet {
    /// 1-indexed Fenwick tree over membership counts (0 or 1 per slot).
    tree: Vec<u32>,
    /// Number of members currently in the set.
    len: usize,
    /// Domain size.
    n: usize,
    /// Largest power of two `<= n` (descent start for `select`).
    top: usize,
}

impl ReadySet {
    pub(crate) fn new(n: usize) -> ReadySet {
        let top = if n == 0 { 0 } else { usize::pow(2, n.ilog2()) };
        ReadySet { tree: vec![0; n + 1], len: 0, n, top }
    }

    /// Number of members.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Add `i` to the set. Callers guarantee `i` is absent (the scheduler
    /// status vector is the authority; debug builds assert).
    pub(crate) fn insert(&mut self, i: usize) {
        debug_assert!(!self.contains(i), "ReadySet::insert({i}) of a present member");
        self.len += 1;
        let mut idx = i + 1;
        while idx <= self.n {
            self.tree[idx] += 1;
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Remove `i` from the set. Callers guarantee `i` is present.
    pub(crate) fn remove(&mut self, i: usize) {
        debug_assert!(self.contains(i), "ReadySet::remove({i}) of an absent member");
        self.len -= 1;
        let mut idx = i + 1;
        while idx <= self.n {
            self.tree[idx] -= 1;
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Number of members `< i` (prefix count; exposed for the debug
    /// assertions).
    fn rank_below(&self, i: usize) -> usize {
        let mut idx = i; // prefix [1..=i] covers members 0..i
        let mut sum = 0usize;
        while idx > 0 {
            sum += self.tree[idx] as usize;
            idx -= idx & idx.wrapping_neg();
        }
        sum
    }

    /// Whether `i` is a member.
    pub(crate) fn contains(&self, i: usize) -> bool {
        self.rank_below(i + 1) > self.rank_below(i)
    }

    /// The `k`-th smallest member (0-indexed). Panics if `k >= len`.
    pub(crate) fn select(&self, k: usize) -> usize {
        assert!(k < self.len, "ReadySet::select({k}) with only {} member(s)", self.len);
        let mut rem = (k + 1) as u32;
        let mut pos = 0usize; // 1-indexed position walked so far
        let mut step = self.top;
        while step > 0 {
            let next = pos + step;
            if next <= self.n && self.tree[next] < rem {
                rem -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // 1-indexed slot pos+1 holds the member; member id = pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_matches_ascending_vector_semantics() {
        let mut s = ReadySet::new(10);
        for i in [7usize, 2, 9, 0, 4] {
            s.insert(i);
        }
        // Ascending membership: [0, 2, 4, 7, 9]
        assert_eq!(s.len(), 5);
        for (k, want) in [0usize, 2, 4, 7, 9].into_iter().enumerate() {
            assert_eq!(s.select(k), want, "select({k})");
        }
        s.remove(4);
        for (k, want) in [0usize, 2, 7, 9].into_iter().enumerate() {
            assert_eq!(s.select(k), want, "after remove, select({k})");
        }
    }

    #[test]
    fn contains_tracks_membership() {
        let mut s = ReadySet::new(5);
        assert!(!s.contains(3));
        s.insert(3);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        s.remove(3);
        assert!(!s.contains(3));
    }

    #[test]
    fn exhaustive_against_reference_model() {
        // Deterministic pseudo-random insert/remove churn, diffed against
        // a sorted-Vec reference at every step.
        let n = 37usize;
        let mut s = ReadySet::new(n);
        let mut model: Vec<usize> = Vec::new();
        let mut state = 0x9E37_79B9u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (state >> 33) as usize % n;
            if let Ok(pos) = model.binary_search(&i) {
                model.remove(pos);
                s.remove(i);
            } else {
                model.insert(model.binary_search(&i).unwrap_err(), i);
                s.insert(i);
            }
            assert_eq!(s.len(), model.len());
            for (k, &want) in model.iter().enumerate() {
                assert_eq!(s.select(k), want);
            }
        }
    }

    #[test]
    fn single_element_domain() {
        let mut s = ReadySet::new(1);
        s.insert(0);
        assert_eq!(s.select(0), 0);
        s.remove(0);
        assert_eq!(s.len(), 0);
    }
}
