//! Per-rank accounting: traffic meters and memory high-water marks (the
//! structured event trace lives in [`crate::tracer`]).

use std::fmt;

/// Cumulative traffic and compute counters for one rank.
///
/// Word counts are exact integers (one `f64` element = one word, following
/// the paper's convention of counting matrix elements). Snapshots are
/// `Copy`, so phase attribution is just a subtraction:
///
/// ```
/// # use pmm_simnet::Meter;
/// let before = Meter::default();
/// let mut m = before;
/// m.words_sent += 100;
/// let phase = m.diff(&before);
/// assert_eq!(phase.words_sent, 100);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Meter {
    /// Words this rank has sent.
    pub words_sent: u64,
    /// Words this rank has received.
    pub words_recv: u64,
    /// Messages this rank has sent.
    pub msgs_sent: u64,
    /// Messages this rank has received.
    pub msgs_recv: u64,
    /// Scalar operations this rank has performed.
    pub flops: f64,
    /// Retransmitted words charged to this sender by the reliable-delivery
    /// layer (dropped, corrupted, or duplicated copies) — fault-injection
    /// overhead on top of the goodput in `words_sent`.
    pub retry_words_sent: u64,
    /// Retransmitted messages charged to this sender.
    pub retry_msgs_sent: u64,
    /// Words received and then discarded (stale sequence number or failed
    /// checksum) — never counted in `words_recv`.
    pub retry_words_recv: u64,
    /// Messages received and then discarded.
    pub retry_msgs_recv: u64,
}

impl Meter {
    /// Counter-wise difference `self − earlier` (panics on counter
    /// regression, which would indicate snapshots from different ranks).
    pub fn diff(&self, earlier: &Meter) -> Meter {
        assert!(
            self.words_sent >= earlier.words_sent
                && self.words_recv >= earlier.words_recv
                && self.msgs_sent >= earlier.msgs_sent
                && self.msgs_recv >= earlier.msgs_recv
                && self.retry_words_sent >= earlier.retry_words_sent
                && self.retry_msgs_sent >= earlier.retry_msgs_sent
                && self.retry_words_recv >= earlier.retry_words_recv
                && self.retry_msgs_recv >= earlier.retry_msgs_recv,
            "meter snapshots out of order"
        );
        Meter {
            words_sent: self.words_sent - earlier.words_sent,
            words_recv: self.words_recv - earlier.words_recv,
            msgs_sent: self.msgs_sent - earlier.msgs_sent,
            msgs_recv: self.msgs_recv - earlier.msgs_recv,
            flops: self.flops - earlier.flops,
            retry_words_sent: self.retry_words_sent - earlier.retry_words_sent,
            retry_msgs_sent: self.retry_msgs_sent - earlier.retry_msgs_sent,
            retry_words_recv: self.retry_words_recv - earlier.retry_words_recv,
            retry_msgs_recv: self.retry_msgs_recv - earlier.retry_msgs_recv,
        }
    }

    /// `max(words_sent, words_recv)` — under the model's full-duplex links
    /// this is the bandwidth term a balanced schedule pays, and the natural
    /// per-rank volume to compare against the lower bounds.
    pub fn duplex_words(&self) -> u64 {
        self.words_sent.max(self.words_recv)
    }

    /// Total words moved in either direction.
    ///
    /// Goodput only: retransmissions live in the `retry_*` counters, so
    /// this (and [`Meter::duplex_words`]) stays the quantity the eq. (3)
    /// prediction and the Theorem 3 lower bounds talk about.
    pub fn total_words(&self) -> u64 {
        self.words_sent + self.words_recv
    }

    /// Total fault-injection overhead words (retransmitted plus
    /// received-and-discarded) — the price of reliability on top of the
    /// goodput that [`Meter::total_words`] reports.
    pub fn retry_overhead_words(&self) -> u64 {
        self.retry_words_sent + self.retry_words_recv
    }
}

impl fmt::Display for Meter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent {}w/{}m, recv {}w/{}m, {} flops",
            self.words_sent, self.msgs_sent, self.words_recv, self.msgs_recv, self.flops
        )?;
        // Only fault-injected runs mention retries, so fault-free output
        // stays byte-identical to the pre-fault-layer format.
        if self.retry_overhead_words() > 0 || self.retry_msgs_sent > 0 || self.retry_msgs_recv > 0 {
            write!(
                f,
                ", retry sent {}w/{}m recv {}w/{}m",
                self.retry_words_sent,
                self.retry_msgs_sent,
                self.retry_words_recv,
                self.retry_msgs_recv
            )?;
        }
        Ok(())
    }
}

/// Per-rank memory accounting with a high-water mark.
///
/// The simulator does not intercept allocations; algorithm code declares
/// the working buffers it holds (in words) via
/// [`Rank::mem_acquire`](crate::Rank::mem_acquire) /
/// [`Rank::mem_release`](crate::Rank::mem_release). The tracker enforces an
/// optional capacity `M` — the local-memory size of §3.1 / §6.2.
#[derive(Debug, Clone)]
pub struct MemTracker {
    current: u64,
    peak: u64,
    limit: Option<u64>,
}

impl MemTracker {
    pub(crate) fn new(limit: Option<u64>) -> MemTracker {
        MemTracker { current: 0, peak: 0, limit }
    }

    /// Try to acquire `words`; fails (without acquiring) if a limit is set
    /// and would be exceeded.
    pub(crate) fn acquire(&mut self, words: u64) -> Result<(), (u64, u64)> {
        let new = self.current + words;
        if let Some(limit) = self.limit {
            if new > limit {
                return Err((new, limit));
            }
        }
        self.current = new;
        self.peak = self.peak.max(new);
        Ok(())
    }

    pub(crate) fn release(&mut self, words: u64) {
        assert!(words <= self.current, "releasing more memory than acquired");
        self.current -= words;
    }

    /// Currently acquired words.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// High-water mark of acquired words.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// The configured capacity, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_subtracts_counterwise() {
        let a = Meter {
            words_sent: 10,
            words_recv: 4,
            msgs_sent: 2,
            msgs_recv: 1,
            flops: 5.0,
            retry_words_sent: 3,
            retry_msgs_sent: 1,
            ..Meter::default()
        };
        let b = Meter {
            words_sent: 25,
            words_recv: 10,
            msgs_sent: 5,
            msgs_recv: 3,
            flops: 9.0,
            retry_words_sent: 7,
            retry_msgs_sent: 2,
            ..Meter::default()
        };
        let d = b.diff(&a);
        assert_eq!(
            d,
            Meter {
                words_sent: 15,
                words_recv: 6,
                msgs_sent: 3,
                msgs_recv: 2,
                flops: 4.0,
                retry_words_sent: 4,
                retry_msgs_sent: 1,
                ..Meter::default()
            }
        );
    }

    #[test]
    fn display_mentions_retries_only_when_nonzero() {
        let clean = Meter { words_sent: 4, msgs_sent: 1, ..Meter::default() };
        assert!(!clean.to_string().contains("retry"), "{clean}");
        let retried = Meter { retry_words_recv: 8, retry_msgs_recv: 1, ..clean };
        assert!(retried.to_string().contains("retry sent 0w/0m recv 8w/1m"), "{retried}");
        assert_eq!(retried.retry_overhead_words(), 8);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn diff_detects_regression() {
        let a = Meter { words_sent: 10, ..Meter::default() };
        let _ = Meter::default().diff(&a);
    }

    #[test]
    fn duplex_words_takes_max_direction() {
        let m = Meter { words_sent: 7, words_recv: 12, ..Meter::default() };
        assert_eq!(m.duplex_words(), 12);
        assert_eq!(m.total_words(), 19);
    }

    #[test]
    fn mem_tracker_peak_and_limit() {
        let mut t = MemTracker::new(Some(100));
        t.acquire(60).unwrap();
        t.acquire(40).unwrap();
        assert_eq!(t.current(), 100);
        assert_eq!(t.acquire(1), Err((101, 100)));
        assert_eq!(t.current(), 100, "failed acquire must not change state");
        t.release(50);
        assert_eq!(t.current(), 50);
        assert_eq!(t.peak(), 100);
        t.acquire(30).unwrap();
        assert_eq!(t.peak(), 100, "peak only grows");
    }

    #[test]
    fn mem_tracker_unlimited() {
        let mut t = MemTracker::new(None);
        t.acquire(u64::MAX / 4).unwrap();
        assert_eq!(t.peak(), u64::MAX / 4);
    }

    #[test]
    #[should_panic(expected = "more memory than acquired")]
    fn over_release_panics() {
        let mut t = MemTracker::new(None);
        t.release(1);
    }
}
