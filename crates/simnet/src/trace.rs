//! Deterministic-schedule event traces: recording, canonical rendering,
//! golden-trace replay assertions, and a schedule fuzzer.
//!
//! When a [`World`] is built with [`World::with_seed`], the fabric runs a
//! cooperative seeded scheduler (see `fabric.rs`): exactly one rank
//! executes at a time, the baton is handed over at every blocking point
//! (mailbox receive, split rendezvous, barrier) and at every send /
//! collective entry, and ties among runnable ranks are broken with a
//! seeded PRNG. Every scheduling decision and every fabric event is
//! appended to a totally-ordered log — the [`ScheduleTrace`] returned in
//! [`WorldResult::schedule_trace`] — so identical `(program, seed)` pairs
//! produce **byte-identical** traces ([`ScheduleTrace::render`]).
//!
//! On top of that this module provides:
//!
//! * [`ScheduleTrace::assert_matches`] — golden-trace replay: assert a
//!   re-run reproduced a recorded schedule, reporting the first
//!   divergence with seed and repro command on failure;
//! * [`fuzz_schedules`] — re-run one program under N seeds and diff the
//!   final values and [`RankReport`] accounting, catching
//!   schedule-dependent results;
//! * [`seed_from_env`] — the `PMM_SEED` environment knob every
//!   deterministic test reads, so a failure printed by one run can be
//!   replayed exactly by the next.
//!
//! [`World`]: crate::World
//! [`World::with_seed`]: crate::World::with_seed
//! [`WorldResult::schedule_trace`]: crate::WorldResult
//! [`RankReport`]: crate::RankReport

use std::fmt::Write as _;

use crate::fabric::Ctx;
use crate::rank::Rank;
use crate::verify::CollectiveOp;
use crate::world::World;

/// Environment variable consulted by [`seed_from_env`].
pub const SEED_ENV: &str = "PMM_SEED";

/// Environment variable consulted by [`schedule_from_env`]: a full
/// [`Schedule`] in its `Display` syntax (`seed:N` or `prefix:0,2,1`),
/// taking precedence over [`SEED_ENV`].
pub const SCHEDULE_ENV: &str = "PMM_SCHEDULE";

/// A fabric resource read or written by one scheduled execution segment
/// (the slice of a rank's run between two scheduler picks). Two segments
/// whose resource footprints are disjoint commute: swapping their order
/// cannot change any rank's observations — the independence relation
/// DPOR-style exploration ([`pmm-explore`]) prunes with.
///
/// [`pmm-explore`]: https://docs.rs/pmm-explore
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// One member's mailbox queue on one communicator context (posts,
    /// pops, and failed emptiness checks all touch it).
    Mailbox {
        /// Communicator context of the mailbox.
        ctx: Ctx,
        /// Owner's member index within the communicator.
        index: usize,
    },
    /// A split rendezvous cell (deposits and result reads).
    SplitCell {
        /// Parent communicator context.
        ctx: Ctx,
        /// Per-parent split sequence number.
        seq: u64,
    },
    /// The zero-cost world barrier (arrivals and generation checks).
    Barrier,
    /// A communicator context's collective-matching ledger
    /// (registrations from `collective_begin`).
    Ledger {
        /// Communicator context of the ledger.
        ctx: Ctx,
    },
}

/// One deterministic-scheduler pick, first-class: the runnable set the
/// scheduler chose from, the rank it handed the baton to, and the fabric
/// resources the chosen rank's segment touched before the next pick.
/// [`WorldResult::choice_points`] returns the full stream for a
/// deterministic run; replaying a *prefix* of chosen ranks (see
/// [`Schedule::Prefix`]) steers a re-run down the same branch and then
/// completes canonically — the substrate for schedule-space exploration.
///
/// [`WorldResult::choice_points`]: crate::WorldResult
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChoicePoint {
    /// Runnable ranks at the pick, ascending.
    pub ready: Vec<usize>,
    /// The rank picked.
    pub chosen: usize,
    /// Resources touched by the chosen rank's segment (deduplicated,
    /// in first-touch order).
    pub touched: Vec<Resource>,
}

/// How the deterministic scheduler resolves its pick points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Schedule {
    /// Break ties with a SplitMix64 stream seeded with the value — the
    /// classic [`World::with_seed`] mode.
    ///
    /// [`World::with_seed`]: crate::World::with_seed
    Seeded(u64),
    /// Follow the recorded choice prefix (one chosen rank per pick); once
    /// the prefix is exhausted, complete canonically by always picking
    /// the smallest runnable rank. A prefix of ranks actually chosen by
    /// a prior run replays that run's branch exactly; the empty prefix
    /// is the fully-canonical schedule.
    Prefix(Vec<usize>),
}

impl Schedule {
    /// The canonical repro hint for runs under this schedule.
    pub fn repro(&self) -> Repro {
        match self {
            Schedule::Seeded(s) => Repro::Seed(*s),
            Schedule::Prefix(p) => Repro::Prefix(p.clone()),
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Schedule::Seeded(s) => write!(f, "seed:{s}"),
            Schedule::Prefix(p) => {
                write!(f, "prefix:")?;
                for (i, r) in p.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::str::FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Schedule, String> {
        let t = s.trim();
        let parse_u64 = |v: &str| -> Result<u64, String> {
            let v = v.trim();
            match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            }
            .map_err(|_| format!("{v:?} is not a u64 (decimal or 0x-prefixed hex)"))
        };
        if let Some(v) = t.strip_prefix("seed:") {
            return Ok(Schedule::Seeded(parse_u64(v)?));
        }
        if let Some(v) = t.strip_prefix("prefix:") {
            let v = v.trim();
            if v.is_empty() {
                return Ok(Schedule::Prefix(Vec::new()));
            }
            let ranks: Result<Vec<usize>, String> = v
                .split(',')
                .map(|r| r.trim().parse().map_err(|_| format!("{r:?} is not a rank id (usize)")))
                .collect();
            return Ok(Schedule::Prefix(ranks?));
        }
        Ok(Schedule::Seeded(parse_u64(t)?))
    }
}

/// The canonical replay recipe for one run — *the* single place failure
/// paths get their repro hint from, whether the run was seeded, was
/// steered by a choice prefix, or ran free. Every schedule-sensitive
/// failure message in this workspace renders one of these (via
/// [`Repro::hint`] for the one-line recipe or [`Repro::note`] for the
/// bracketed context suffix) instead of hand-formatting env vars.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Repro {
    /// The run was not deterministic; there is nothing to replay.
    Unseeded,
    /// Replay by seed: `PMM_SEED=<seed>`.
    Seed(u64),
    /// Replay by choice prefix: `PMM_SCHEDULE=prefix:<r0,r1,...>`.
    Prefix(Vec<usize>),
}

impl Repro {
    /// The bare environment-variable assignment that replays this
    /// schedule (`PMM_SEED=7`, `PMM_SCHEDULE=prefix:0,2,1`), or `None`
    /// when the run was not deterministic. The single source of truth
    /// every repro-printing failure path formats from.
    pub fn env(&self) -> Option<String> {
        match self {
            Repro::Unseeded => None,
            Repro::Seed(seed) => Some(format!("{SEED_ENV}={seed}")),
            Repro::Prefix(p) => Some(format!("{SCHEDULE_ENV}={}", Schedule::Prefix(p.clone()))),
        }
    }

    /// One-line replay recipe in env-var form.
    pub fn hint(&self) -> String {
        match self.env() {
            None => "use World::with_seed(..) to make this run replayable".to_string(),
            Some(env) => format!("re-run with {env} to replay this schedule"),
        }
    }

    /// The bracketed context note world-level failure messages append:
    /// what kind of schedule ran, plus the replay recipe.
    pub fn note(&self) -> String {
        match self {
            Repro::Unseeded => format!("nondeterministic schedule (no seed); {}", self.hint()),
            Repro::Seed(seed) => format!("schedule seed {seed}; {}", self.hint()),
            Repro::Prefix(p) => {
                format!("deterministic schedule prefix ({} choices); {}", p.len(), self.hint())
            }
        }
    }
}

impl std::fmt::Display for Repro {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hint())
    }
}

/// Read the full schedule from the `PMM_SCHEDULE` environment variable
/// (`seed:N`, `prefix:0,2,1`, or a bare integer meaning a seed), falling
/// back to `PMM_SEED`, falling back to `default`. The schedule analogue
/// of [`seed_from_env`] for tools that also accept choice prefixes.
pub fn schedule_from_env(default: Schedule) -> Schedule {
    match std::env::var(SCHEDULE_ENV) {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|e| panic!("{SCHEDULE_ENV}={s:?} is not a valid schedule: {e}")),
        Err(_) => match std::env::var(SEED_ENV) {
            Ok(_) => Schedule::Seeded(seed_from_env(0)),
            Err(_) => default,
        },
    }
}

/// The blocking point a rank yielded the scheduler baton at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockPoint {
    /// Blocked in a directed mailbox receive.
    Recv {
        /// Communicator context of the receive.
        ctx: Ctx,
        /// This rank's mailbox index within the communicator.
        index: usize,
    },
    /// Blocked in a communicator-split rendezvous.
    Split {
        /// Parent communicator context.
        ctx: Ctx,
        /// Per-parent split sequence number.
        seq: u64,
    },
    /// Blocked in the zero-cost world barrier.
    Barrier {
        /// Barrier generation the rank entered on.
        generation: u64,
    },
}

/// One event of a deterministic schedule, in global order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// The scheduler handed the baton to `rank`.
    Pick {
        /// World rank now running.
        rank: usize,
    },
    /// `rank` released the baton at a blocking point.
    Block {
        /// World rank that blocked.
        rank: usize,
        /// Where it blocked.
        point: BlockPoint,
    },
    /// A message was posted (and the sender yielded the baton).
    Post {
        /// Sender's world rank.
        from_world: usize,
        /// Communicator context the message travels on.
        ctx: Ctx,
        /// Receiver's world rank.
        to_world: usize,
        /// Message size in words.
        words: u64,
    },
    /// A rank entered a collective (hook at every collective entry point).
    Collective {
        /// World rank entering.
        rank: usize,
        /// Communicator context of the collective.
        ctx: Ctx,
        /// Operation kind.
        op: CollectiveOp,
        /// Element count the rank brought.
        elems: u64,
    },
    /// `rank`'s program finished (normally or by panic).
    Done {
        /// World rank that finished.
        rank: usize,
    },
}

impl std::fmt::Display for SchedEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedEvent::Pick { rank } => write!(f, "pick r{rank}"),
            SchedEvent::Block { rank, point } => match point {
                BlockPoint::Recv { ctx, index } => {
                    write!(f, "block r{rank} recv ctx{ctx} idx{index}")
                }
                BlockPoint::Split { ctx, seq } => {
                    write!(f, "block r{rank} split ctx{ctx} seq{seq}")
                }
                BlockPoint::Barrier { generation } => {
                    write!(f, "block r{rank} barrier gen{generation}")
                }
            },
            SchedEvent::Post { from_world, ctx, to_world, words } => {
                write!(f, "post r{from_world}->r{to_world} ctx{ctx} w{words}")
            }
            SchedEvent::Collective { rank, ctx, op, elems } => {
                write!(f, "coll r{rank} ctx{ctx} {op}[{elems}]")
            }
            SchedEvent::Done { rank } => write!(f, "done r{rank}"),
        }
    }
}

/// The totally-ordered event log of one deterministic run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// The scheduler seed the run used.
    pub seed: u64,
    /// Events in global schedule order.
    pub events: Vec<SchedEvent>,
}

impl ScheduleTrace {
    /// Canonical text rendering: a seed header plus one line per event.
    /// Two runs of the same `(program, seed)` pair render to identical
    /// bytes — the determinism contract tests compare these strings.
    pub fn render(&self) -> String {
        let mut out =
            format!("# schedule seed {:#018x} ({} events)\n", self.seed, self.events.len());
        for e in &self.events {
            let _ = writeln!(out, "{e}");
        }
        out
    }

    /// Index of the first event where `self` and `other` differ, or the
    /// shorter length on a prefix match, or `None` when identical.
    pub fn first_divergence(&self, other: &ScheduleTrace) -> Option<usize> {
        let n = self.events.len().min(other.events.len());
        (0..n)
            .find(|&i| self.events[i] != other.events[i])
            .or((self.events.len() != other.events.len()).then_some(n))
    }

    /// Golden-trace replay assertion: panic with the first divergence
    /// (and a seed repro command) unless `replay` reproduced this trace
    /// event for event.
    #[track_caller]
    pub fn assert_matches(&self, replay: &ScheduleTrace) {
        assert_eq!(
            self.seed,
            replay.seed,
            "golden-trace replay compared runs with different seeds; {}",
            repro_hint(self.seed)
        );
        if let Some(i) = self.first_divergence(replay) {
            let show = |t: &ScheduleTrace| {
                t.events.get(i).map_or("<end of trace>".to_string(), |e| e.to_string())
            };
            panic!(
                "schedule replay diverged from the golden trace at event {i}:\n  \
                 golden: {}\n  replay: {}\n\
                 golden has {} events, replay has {}; {}",
                show(self),
                show(replay),
                self.events.len(),
                replay.events.len(),
                repro_hint(self.seed)
            );
        }
    }
}

/// One-line repro command for a failing seed — printed in every
/// deterministic-mode failure message. Shorthand for
/// [`Repro::Seed`]`(seed).hint()`.
pub fn repro_hint(seed: u64) -> String {
    Repro::Seed(seed).hint()
}

/// Read the schedule seed from the `PMM_SEED` environment variable
/// (decimal, or hex with an `0x` prefix), falling back to `default`.
/// Deterministic tests use this so a failure report's seed can be pinned
/// on the next run without editing code.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var(SEED_ENV) {
        Err(_) => default,
        Ok(s) => {
            let t = s.trim();
            let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => t.parse(),
            };
            parsed.unwrap_or_else(|_| {
                panic!("{SEED_ENV}={s:?} is not a u64 (decimal or 0x-prefixed hex)")
            })
        }
    }
}

/// A schedule-dependent result found by [`fuzz_schedules`]: the program
/// produced different values or accounting under two seeds.
#[derive(Debug)]
pub struct ScheduleDivergence {
    /// The first seed run (the baseline every other seed is diffed against).
    pub baseline_seed: u64,
    /// The seed whose run diverged from the baseline.
    pub failing_seed: u64,
    /// Human-readable description of the first difference.
    pub detail: String,
}

impl std::fmt::Display for ScheduleDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule-dependent result: seed {} disagrees with baseline seed {}: {}\n\
             [{} vs {}]",
            self.failing_seed,
            self.baseline_seed,
            self.detail,
            repro_hint(self.baseline_seed),
            repro_hint(self.failing_seed)
        )
    }
}

impl std::error::Error for ScheduleDivergence {}

/// Schedule fuzzer: run `program` on (a clone of) `world` once per seed
/// and diff the final per-rank values, meters, clocks, and memory peaks
/// against the first seed's run. A correct program's *results* must not
/// depend on the schedule even though its event trace does; any
/// divergence is returned with the failing seed and a repro command.
pub fn fuzz_schedules<T, F>(
    world: &World,
    seeds: &[u64],
    program: F,
) -> Result<(), ScheduleDivergence>
where
    T: Send + PartialEq + std::fmt::Debug,
    F: Fn(&mut Rank) -> T + Send + Sync,
{
    assert!(!seeds.is_empty(), "fuzz_schedules needs at least one seed");
    let mut baseline: Option<(u64, crate::world::WorldResult<T>)> = None;
    for &seed in seeds {
        let out = world.clone().with_seed(seed).run(&program);
        let Some((seed0, base)) = &baseline else {
            baseline = Some((seed, out));
            continue;
        };
        let fail = |detail: String| ScheduleDivergence {
            baseline_seed: *seed0,
            failing_seed: seed,
            detail,
        };
        for r in 0..out.values.len() {
            if out.values[r] != base.values[r] {
                return Err(fail(format!(
                    "rank {r} value {:?} vs baseline {:?}",
                    out.values[r], base.values[r]
                )));
            }
            let (a, b) = (&out.reports[r], &base.reports[r]);
            if a.meter != b.meter {
                return Err(fail(format!(
                    "rank {r} meter [{}] vs baseline [{}]",
                    a.meter, b.meter
                )));
            }
            if a.time != b.time {
                return Err(fail(format!("rank {r} clock {} vs baseline {}", a.time, b.time)));
            }
            if a.peak_mem_words != b.peak_mem_words {
                return Err(fail(format!(
                    "rank {r} peak memory {} vs baseline {} words",
                    a.peak_mem_words, b.peak_mem_words
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seed: u64, events: Vec<SchedEvent>) -> ScheduleTrace {
        ScheduleTrace { seed, events }
    }

    #[test]
    fn render_is_one_line_per_event_with_seed_header() {
        let t = trace(
            7,
            vec![
                SchedEvent::Pick { rank: 0 },
                SchedEvent::Post { from_world: 0, ctx: 2, to_world: 3, words: 16 },
                SchedEvent::Block { rank: 1, point: BlockPoint::Recv { ctx: 0, index: 1 } },
                SchedEvent::Collective { rank: 2, ctx: 1, op: CollectiveOp::AllGather, elems: 5 },
                SchedEvent::Done { rank: 0 },
            ],
        );
        let s = t.render();
        assert!(s.starts_with("# schedule seed 0x0000000000000007 (5 events)\n"), "{s}");
        assert!(s.contains("pick r0\n"), "{s}");
        assert!(s.contains("post r0->r3 ctx2 w16\n"), "{s}");
        assert!(s.contains("block r1 recv ctx0 idx1\n"), "{s}");
        assert!(s.contains("coll r2 ctx1 all_gather[5]\n"), "{s}");
        assert!(s.contains("done r0\n"), "{s}");
    }

    #[test]
    fn first_divergence_finds_edits_and_length_changes() {
        let a = trace(1, vec![SchedEvent::Pick { rank: 0 }, SchedEvent::Done { rank: 0 }]);
        assert_eq!(a.first_divergence(&a), None);
        let edited = trace(1, vec![SchedEvent::Pick { rank: 1 }, SchedEvent::Done { rank: 0 }]);
        assert_eq!(a.first_divergence(&edited), Some(0));
        let truncated = trace(1, vec![SchedEvent::Pick { rank: 0 }]);
        assert_eq!(a.first_divergence(&truncated), Some(1));
    }

    #[test]
    fn assert_matches_panics_with_seed_and_divergence() {
        let golden = trace(9, vec![SchedEvent::Pick { rank: 0 }]);
        let replay = trace(9, vec![SchedEvent::Pick { rank: 2 }]);
        let err = std::panic::catch_unwind(|| golden.assert_matches(&replay))
            .expect_err("diverging replay must panic");
        let msg = err.downcast_ref::<String>().expect("panic message is a String");
        assert!(msg.contains("event 0"), "{msg}");
        assert!(msg.contains("PMM_SEED=9"), "{msg}");
    }

    #[test]
    fn schedule_display_parse_round_trips() {
        for sched in [
            Schedule::Seeded(0),
            Schedule::Seeded(0xDEAD_BEEF),
            Schedule::Prefix(vec![]),
            Schedule::Prefix(vec![3]),
            Schedule::Prefix(vec![0, 2, 1, 1]),
        ] {
            let rendered = sched.to_string();
            let parsed: Schedule = rendered.parse().unwrap_or_else(|e| panic!("{rendered}: {e}"));
            assert_eq!(parsed, sched, "{rendered}");
        }
    }

    #[test]
    fn schedule_parses_bare_and_hex_seeds() {
        assert_eq!("42".parse::<Schedule>().unwrap(), Schedule::Seeded(42));
        assert_eq!("seed:0x2a".parse::<Schedule>().unwrap(), Schedule::Seeded(42));
        assert_eq!("prefix: 1, 2 ,3".parse::<Schedule>().unwrap(), Schedule::Prefix(vec![1, 2, 3]));
        assert!("prefix:1,x".parse::<Schedule>().is_err());
        assert!("seed:zebra".parse::<Schedule>().is_err());
    }

    #[test]
    fn repro_hints_name_the_env_var_form() {
        assert!(Repro::Seed(7).hint().contains("PMM_SEED=7"));
        let p = Repro::Prefix(vec![0, 2, 1]);
        assert!(p.hint().contains("PMM_SCHEDULE=prefix:0,2,1"), "{}", p.hint());
        assert!(Repro::Unseeded.hint().contains("with_seed"));
        assert!(Repro::Seed(9).note().contains("schedule seed 9"));
        assert!(Repro::Prefix(vec![1]).note().contains("1 choices"));
    }

    #[test]
    fn divergence_display_names_both_seeds() {
        let d = ScheduleDivergence {
            baseline_seed: 3,
            failing_seed: 11,
            detail: "rank 0 value 1 vs baseline 2".into(),
        };
        let s = d.to_string();
        assert!(s.contains("seed 11"), "{s}");
        assert!(s.contains("PMM_SEED=3"), "{s}");
        assert!(s.contains("PMM_SEED=11"), "{s}");
    }
}
