//! Deterministic-schedule event traces: recording, canonical rendering,
//! golden-trace replay assertions, and a schedule fuzzer.
//!
//! When a [`World`] is built with [`World::with_seed`], the fabric runs a
//! cooperative seeded scheduler (see `fabric.rs`): exactly one rank
//! executes at a time, the baton is handed over at every blocking point
//! (mailbox receive, split rendezvous, barrier) and at every send /
//! collective entry, and ties among runnable ranks are broken with a
//! seeded PRNG. Every scheduling decision and every fabric event is
//! appended to a totally-ordered log — the [`ScheduleTrace`] returned in
//! [`WorldResult::schedule_trace`] — so identical `(program, seed)` pairs
//! produce **byte-identical** traces ([`ScheduleTrace::render`]).
//!
//! On top of that this module provides:
//!
//! * [`ScheduleTrace::assert_matches`] — golden-trace replay: assert a
//!   re-run reproduced a recorded schedule, reporting the first
//!   divergence with seed and repro command on failure;
//! * [`fuzz_schedules`] — re-run one program under N seeds and diff the
//!   final values and [`RankReport`] accounting, catching
//!   schedule-dependent results;
//! * [`seed_from_env`] — the `PMM_SEED` environment knob every
//!   deterministic test reads, so a failure printed by one run can be
//!   replayed exactly by the next.
//!
//! [`World`]: crate::World
//! [`World::with_seed`]: crate::World::with_seed
//! [`WorldResult::schedule_trace`]: crate::WorldResult
//! [`RankReport`]: crate::RankReport

use std::fmt::Write as _;

use crate::fabric::Ctx;
use crate::rank::Rank;
use crate::verify::CollectiveOp;
use crate::world::World;

/// Environment variable consulted by [`seed_from_env`].
pub const SEED_ENV: &str = "PMM_SEED";

/// The blocking point a rank yielded the scheduler baton at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockPoint {
    /// Blocked in a directed mailbox receive.
    Recv {
        /// Communicator context of the receive.
        ctx: Ctx,
        /// This rank's mailbox index within the communicator.
        index: usize,
    },
    /// Blocked in a communicator-split rendezvous.
    Split {
        /// Parent communicator context.
        ctx: Ctx,
        /// Per-parent split sequence number.
        seq: u64,
    },
    /// Blocked in the zero-cost world barrier.
    Barrier {
        /// Barrier generation the rank entered on.
        generation: u64,
    },
}

/// One event of a deterministic schedule, in global order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// The scheduler handed the baton to `rank`.
    Pick {
        /// World rank now running.
        rank: usize,
    },
    /// `rank` released the baton at a blocking point.
    Block {
        /// World rank that blocked.
        rank: usize,
        /// Where it blocked.
        point: BlockPoint,
    },
    /// A message was posted (and the sender yielded the baton).
    Post {
        /// Sender's world rank.
        from_world: usize,
        /// Communicator context the message travels on.
        ctx: Ctx,
        /// Receiver's world rank.
        to_world: usize,
        /// Message size in words.
        words: u64,
    },
    /// A rank entered a collective (hook at every collective entry point).
    Collective {
        /// World rank entering.
        rank: usize,
        /// Communicator context of the collective.
        ctx: Ctx,
        /// Operation kind.
        op: CollectiveOp,
        /// Element count the rank brought.
        elems: u64,
    },
    /// `rank`'s program finished (normally or by panic).
    Done {
        /// World rank that finished.
        rank: usize,
    },
}

impl std::fmt::Display for SchedEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedEvent::Pick { rank } => write!(f, "pick r{rank}"),
            SchedEvent::Block { rank, point } => match point {
                BlockPoint::Recv { ctx, index } => {
                    write!(f, "block r{rank} recv ctx{ctx} idx{index}")
                }
                BlockPoint::Split { ctx, seq } => {
                    write!(f, "block r{rank} split ctx{ctx} seq{seq}")
                }
                BlockPoint::Barrier { generation } => {
                    write!(f, "block r{rank} barrier gen{generation}")
                }
            },
            SchedEvent::Post { from_world, ctx, to_world, words } => {
                write!(f, "post r{from_world}->r{to_world} ctx{ctx} w{words}")
            }
            SchedEvent::Collective { rank, ctx, op, elems } => {
                write!(f, "coll r{rank} ctx{ctx} {op}[{elems}]")
            }
            SchedEvent::Done { rank } => write!(f, "done r{rank}"),
        }
    }
}

/// The totally-ordered event log of one deterministic run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// The scheduler seed the run used.
    pub seed: u64,
    /// Events in global schedule order.
    pub events: Vec<SchedEvent>,
}

impl ScheduleTrace {
    /// Canonical text rendering: a seed header plus one line per event.
    /// Two runs of the same `(program, seed)` pair render to identical
    /// bytes — the determinism contract tests compare these strings.
    pub fn render(&self) -> String {
        let mut out =
            format!("# schedule seed {:#018x} ({} events)\n", self.seed, self.events.len());
        for e in &self.events {
            let _ = writeln!(out, "{e}");
        }
        out
    }

    /// Index of the first event where `self` and `other` differ, or the
    /// shorter length on a prefix match, or `None` when identical.
    pub fn first_divergence(&self, other: &ScheduleTrace) -> Option<usize> {
        let n = self.events.len().min(other.events.len());
        (0..n)
            .find(|&i| self.events[i] != other.events[i])
            .or((self.events.len() != other.events.len()).then_some(n))
    }

    /// Golden-trace replay assertion: panic with the first divergence
    /// (and a seed repro command) unless `replay` reproduced this trace
    /// event for event.
    #[track_caller]
    pub fn assert_matches(&self, replay: &ScheduleTrace) {
        assert_eq!(
            self.seed,
            replay.seed,
            "golden-trace replay compared runs with different seeds; {}",
            repro_hint(self.seed)
        );
        if let Some(i) = self.first_divergence(replay) {
            let show = |t: &ScheduleTrace| {
                t.events.get(i).map_or("<end of trace>".to_string(), |e| e.to_string())
            };
            panic!(
                "schedule replay diverged from the golden trace at event {i}:\n  \
                 golden: {}\n  replay: {}\n\
                 golden has {} events, replay has {}; {}",
                show(self),
                show(replay),
                self.events.len(),
                replay.events.len(),
                repro_hint(self.seed)
            );
        }
    }
}

/// One-line repro command for a failing seed — printed in every
/// deterministic-mode failure message.
pub fn repro_hint(seed: u64) -> String {
    format!("re-run with {SEED_ENV}={seed} to replay this schedule")
}

/// Read the schedule seed from the `PMM_SEED` environment variable
/// (decimal, or hex with an `0x` prefix), falling back to `default`.
/// Deterministic tests use this so a failure report's seed can be pinned
/// on the next run without editing code.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var(SEED_ENV) {
        Err(_) => default,
        Ok(s) => {
            let t = s.trim();
            let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => t.parse(),
            };
            parsed.unwrap_or_else(|_| {
                panic!("{SEED_ENV}={s:?} is not a u64 (decimal or 0x-prefixed hex)")
            })
        }
    }
}

/// A schedule-dependent result found by [`fuzz_schedules`]: the program
/// produced different values or accounting under two seeds.
#[derive(Debug)]
pub struct ScheduleDivergence {
    /// The first seed run (the baseline every other seed is diffed against).
    pub baseline_seed: u64,
    /// The seed whose run diverged from the baseline.
    pub failing_seed: u64,
    /// Human-readable description of the first difference.
    pub detail: String,
}

impl std::fmt::Display for ScheduleDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule-dependent result: seed {} disagrees with baseline seed {}: {}\n\
             [{} vs {}]",
            self.failing_seed,
            self.baseline_seed,
            self.detail,
            repro_hint(self.baseline_seed),
            repro_hint(self.failing_seed)
        )
    }
}

impl std::error::Error for ScheduleDivergence {}

/// Schedule fuzzer: run `program` on (a clone of) `world` once per seed
/// and diff the final per-rank values, meters, clocks, and memory peaks
/// against the first seed's run. A correct program's *results* must not
/// depend on the schedule even though its event trace does; any
/// divergence is returned with the failing seed and a repro command.
pub fn fuzz_schedules<T, F>(
    world: &World,
    seeds: &[u64],
    program: F,
) -> Result<(), ScheduleDivergence>
where
    T: Send + PartialEq + std::fmt::Debug,
    F: Fn(&mut Rank) -> T + Send + Sync,
{
    assert!(!seeds.is_empty(), "fuzz_schedules needs at least one seed");
    let mut baseline: Option<(u64, crate::world::WorldResult<T>)> = None;
    for &seed in seeds {
        let out = world.clone().with_seed(seed).run(&program);
        let Some((seed0, base)) = &baseline else {
            baseline = Some((seed, out));
            continue;
        };
        let fail = |detail: String| ScheduleDivergence {
            baseline_seed: *seed0,
            failing_seed: seed,
            detail,
        };
        for r in 0..out.values.len() {
            if out.values[r] != base.values[r] {
                return Err(fail(format!(
                    "rank {r} value {:?} vs baseline {:?}",
                    out.values[r], base.values[r]
                )));
            }
            let (a, b) = (&out.reports[r], &base.reports[r]);
            if a.meter != b.meter {
                return Err(fail(format!(
                    "rank {r} meter [{}] vs baseline [{}]",
                    a.meter, b.meter
                )));
            }
            if a.time != b.time {
                return Err(fail(format!("rank {r} clock {} vs baseline {}", a.time, b.time)));
            }
            if a.peak_mem_words != b.peak_mem_words {
                return Err(fail(format!(
                    "rank {r} peak memory {} vs baseline {} words",
                    a.peak_mem_words, b.peak_mem_words
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seed: u64, events: Vec<SchedEvent>) -> ScheduleTrace {
        ScheduleTrace { seed, events }
    }

    #[test]
    fn render_is_one_line_per_event_with_seed_header() {
        let t = trace(
            7,
            vec![
                SchedEvent::Pick { rank: 0 },
                SchedEvent::Post { from_world: 0, ctx: 2, to_world: 3, words: 16 },
                SchedEvent::Block { rank: 1, point: BlockPoint::Recv { ctx: 0, index: 1 } },
                SchedEvent::Collective { rank: 2, ctx: 1, op: CollectiveOp::AllGather, elems: 5 },
                SchedEvent::Done { rank: 0 },
            ],
        );
        let s = t.render();
        assert!(s.starts_with("# schedule seed 0x0000000000000007 (5 events)\n"), "{s}");
        assert!(s.contains("pick r0\n"), "{s}");
        assert!(s.contains("post r0->r3 ctx2 w16\n"), "{s}");
        assert!(s.contains("block r1 recv ctx0 idx1\n"), "{s}");
        assert!(s.contains("coll r2 ctx1 all_gather[5]\n"), "{s}");
        assert!(s.contains("done r0\n"), "{s}");
    }

    #[test]
    fn first_divergence_finds_edits_and_length_changes() {
        let a = trace(1, vec![SchedEvent::Pick { rank: 0 }, SchedEvent::Done { rank: 0 }]);
        assert_eq!(a.first_divergence(&a), None);
        let edited = trace(1, vec![SchedEvent::Pick { rank: 1 }, SchedEvent::Done { rank: 0 }]);
        assert_eq!(a.first_divergence(&edited), Some(0));
        let truncated = trace(1, vec![SchedEvent::Pick { rank: 0 }]);
        assert_eq!(a.first_divergence(&truncated), Some(1));
    }

    #[test]
    fn assert_matches_panics_with_seed_and_divergence() {
        let golden = trace(9, vec![SchedEvent::Pick { rank: 0 }]);
        let replay = trace(9, vec![SchedEvent::Pick { rank: 2 }]);
        let err = std::panic::catch_unwind(|| golden.assert_matches(&replay))
            .expect_err("diverging replay must panic");
        let msg = err.downcast_ref::<String>().expect("panic message is a String");
        assert!(msg.contains("event 0"), "{msg}");
        assert!(msg.contains("PMM_SEED=9"), "{msg}");
    }

    #[test]
    fn divergence_display_names_both_seeds() {
        let d = ScheduleDivergence {
            baseline_seed: 3,
            failing_seed: 11,
            detail: "rank 0 value 1 vs baseline 2".into(),
        };
        let s = d.to_string();
        assert!(s.contains("seed 11"), "{s}");
        assert!(s.contains("PMM_SEED=3"), "{s}");
        assert!(s.contains("PMM_SEED=11"), "{s}");
    }
}
