//! The communication fabric shared by all ranks of a [`World`].
//!
//! The fabric owns, for every communicator context, one mailbox per
//! member (a FIFO queue guarded by a mutex + condvar). Directed receive
//! (`recv(from)`) is implemented by the receiving rank stashing
//! out-of-order messages — messages from one sender to one receiver stay
//! FIFO because they travel through a single queue and a FIFO stash.
//!
//! The fabric also hosts the rendezvous state for **communicator splits**
//! (the MPI `comm_split` equivalent): a split is a collective, so all
//! members of the parent communicator deposit their `(color, key)` and the
//! last one to arrive partitions the members into groups, allocates one
//! fresh context per group, and wakes everyone.
//!
//! Every blocking point (mailbox receive, split rendezvous, the world
//! barrier) is instrumented for the [`verify`](crate::verify) layer: the
//! blocking rank registers what it waits for, waits with a short timeout
//! so it can observe a verifier abort, and is torn down with an
//! [`AbortPanic`](crate::verify::AbortPanic) when the world is aborted.
//! [`Fabric::watchdog_scan`] implements the deadlock detector that runs
//! over those registrations.
//!
//! Lock ordering (to keep the fabric itself deadlock-free):
//! mailbox map → mailbox queue → verify slot; splits map → split state →
//! (state dropped) → splits map; barrier state → verify slot. The
//! watchdog never holds a verify slot while taking a fabric lock — it
//! snapshots the slots first.
//!
//! [`World`]: crate::world::World

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

use crate::verify::{lock_unpoisoned, SlotView, VerifyState, WaitInfo, WaitKind};

/// Identifier of a communicator context. Every communicator created during
/// a run has a distinct context, so traffic on different communicators can
/// never be confused.
pub type Ctx = u64;

/// Context id of the world communicator (created by [`Fabric::new`]).
pub(crate) const WORLD_CTX: Ctx = 0;

/// How often a blocked primitive re-checks the abort flag. Waits are
/// condvar-notified, so this only bounds the wake-up delay if a
/// notification is missed — it is not a busy-wait interval.
const ABORT_POLL: Duration = Duration::from_millis(100);

fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender's index *within the communicator* the message was sent on.
    pub from: usize,
    /// Sender's clock when the send was posted (used for critical-path
    /// accounting on the receiving side).
    pub sent_at: f64,
    /// The data; its length is the metered word count.
    pub payload: Vec<f64>,
    /// Sender's vector clock at send time (happens-before audit; see
    /// `crate::verify`).
    pub(crate) vclock: Option<Arc<[u64]>>,
}

struct Mailbox {
    q: Mutex<VecDeque<Message>>,
    cv: Condvar,
}

/// Result of a communicator split for a single color.
#[derive(Debug, Clone)]
pub(crate) struct SplitGroup {
    pub ctx: Ctx,
    /// World ranks of the members, ordered by `(key, parent index)`.
    pub members: Vec<usize>,
}

struct SplitState {
    /// `(color, key, world_rank)` per parent index; `None` until deposited.
    entries: Vec<Option<(i64, i64, usize)>>,
    arrived: usize,
    consumed: usize,
    /// color -> group; populated by the last rank to arrive.
    result: Option<Arc<HashMap<i64, SplitGroup>>>,
}

struct SplitCell {
    state: Mutex<SplitState>,
    cv: Condvar,
}

struct BarrierState {
    /// Which world ranks have arrived in the current generation.
    arrived: Vec<bool>,
    count: usize,
    generation: u64,
}

struct BarrierCell {
    st: Mutex<BarrierState>,
    cv: Condvar,
}

/// The shared fabric. One per [`World`](crate::world::World); ranks hold it
/// behind an `Arc`.
pub struct Fabric {
    next_ctx: AtomicU64,
    mailboxes: RwLock<HashMap<(Ctx, usize), Arc<Mailbox>>>,
    splits: Mutex<HashMap<(Ctx, u64), Arc<SplitCell>>>,
    /// Zero-cost world barrier, for callers that need to delimit phases
    /// without perturbing the metered costs.
    barrier: BarrierCell,
    /// Communication-correctness state (wait registry, collective ledger,
    /// abort flag).
    pub(crate) verify: VerifyState,
}

impl Fabric {
    pub(crate) fn new(world_size: usize) -> Fabric {
        Fabric {
            next_ctx: AtomicU64::new(1),
            mailboxes: RwLock::new(HashMap::new()),
            splits: Mutex::new(HashMap::new()),
            barrier: BarrierCell {
                st: Mutex::new(BarrierState {
                    arrived: vec![false; world_size],
                    count: 0,
                    generation: 0,
                }),
                cv: Condvar::new(),
            },
            verify: VerifyState::new(world_size),
        }
    }

    fn alloc_ctx(&self) -> Ctx {
        self.next_ctx.fetch_add(1, Ordering::Relaxed)
    }

    fn mailbox(&self, ctx: Ctx, index: usize) -> Arc<Mailbox> {
        {
            let map = read_unpoisoned(&self.mailboxes);
            if let Some(mb) = map.get(&(ctx, index)) {
                return mb.clone();
            }
        }
        let mut map = write_unpoisoned(&self.mailboxes);
        map.entry((ctx, index))
            .or_insert_with(|| {
                Arc::new(Mailbox { q: Mutex::new(VecDeque::new()), cv: Condvar::new() })
            })
            .clone()
    }

    /// Post `msg` to member `to` of context `ctx`. Never blocks (mailboxes
    /// are unbounded).
    pub(crate) fn post(&self, ctx: Ctx, to: usize, msg: Message) {
        let mb = self.mailbox(ctx, to);
        lock_unpoisoned(&mb.q).push_back(msg);
        mb.cv.notify_all();
    }

    /// Blockingly take the next message from member `index`'s mailbox on
    /// context `ctx` (in arrival order; directed matching is done by the
    /// rank's stash). `from_world` is the world rank of the sender the
    /// caller is ultimately waiting for (deadlock-report metadata).
    pub(crate) fn take_any(
        &self,
        ctx: Ctx,
        index: usize,
        me_world: usize,
        from_world: usize,
        site: &'static Location<'static>,
    ) -> Message {
        let mb = self.mailbox(ctx, index);
        let mut q = lock_unpoisoned(&mb.q);
        if let Some(m) = q.pop_front() {
            return m;
        }
        self.verify.set_wait(
            me_world,
            WaitInfo {
                kind: WaitKind::Recv { from_world, ctx_index: index },
                ctx,
                waiting_on: vec![from_world],
                site,
            },
        );
        loop {
            if self.verify.is_aborted() {
                drop(q);
                self.verify.abort_panic(me_world);
            }
            if let Some(m) = q.pop_front() {
                self.verify.clear_wait(me_world);
                return m;
            }
            q = mb.cv.wait_timeout(q, ABORT_POLL).unwrap_or_else(PoisonError::into_inner).0;
        }
    }

    /// Zero-cost synchronization of all world ranks (not metered; test and
    /// phase-delimiting use only).
    pub(crate) fn hard_sync(&self, me_world: usize, site: &'static Location<'static>) {
        let world_size = self.verify.world_size();
        if world_size <= 1 {
            return;
        }
        let mut st = lock_unpoisoned(&self.barrier.st);
        let entered_gen = st.generation;
        st.arrived[me_world] = true;
        st.count += 1;
        if st.count == world_size {
            st.count = 0;
            st.arrived.iter_mut().for_each(|a| *a = false);
            st.generation += 1;
            self.barrier.cv.notify_all();
            return;
        }
        let waiting_on: Vec<usize> =
            st.arrived.iter().enumerate().filter_map(|(r, &a)| (!a).then_some(r)).collect();
        self.verify.set_wait(
            me_world,
            WaitInfo {
                kind: WaitKind::Barrier { generation: entered_gen },
                ctx: WORLD_CTX,
                waiting_on,
                site,
            },
        );
        while st.generation == entered_gen {
            if self.verify.is_aborted() {
                drop(st);
                self.verify.abort_panic(me_world);
            }
            st = self
                .barrier
                .cv
                .wait_timeout(st, ABORT_POLL)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        self.verify.clear_wait(me_world);
    }

    /// Collective communicator split. Called by every member of the parent
    /// context; `seq` is the caller's per-parent split sequence number
    /// (all members must call splits in the same order). `parent_members`
    /// are the parent communicator's world ranks in communicator order.
    ///
    /// `color < 0` means "no new communicator for me" (MPI_UNDEFINED).
    /// Returns the group for `color`, or `None` for negative colors.
    #[allow(clippy::too_many_arguments)] // a rendezvous genuinely needs all of these
    pub(crate) fn split(
        &self,
        parent_ctx: Ctx,
        parent_members: &[usize],
        seq: u64,
        my_parent_index: usize,
        my_world_rank: usize,
        color: i64,
        key: i64,
        site: &'static Location<'static>,
    ) -> Option<SplitGroup> {
        let parent_size = parent_members.len();
        let cell = {
            let mut splits = lock_unpoisoned(&self.splits);
            splits
                .entry((parent_ctx, seq))
                .or_insert_with(|| {
                    Arc::new(SplitCell {
                        state: Mutex::new(SplitState {
                            entries: vec![None; parent_size],
                            arrived: 0,
                            consumed: 0,
                            result: None,
                        }),
                        cv: Condvar::new(),
                    })
                })
                .clone()
        };

        let mut st = lock_unpoisoned(&cell.state);
        if st.entries[my_parent_index].is_some() {
            drop(st);
            self.abort(format!(
                "pmm-verify: world rank {my_world_rank} deposited twice into split #{seq} of \
                 ctx {parent_ctx} at {site} — members issued splits in different orders"
            ));
            self.verify.abort_panic(my_world_rank);
        }
        st.entries[my_parent_index] = Some((color, key, my_world_rank));
        st.arrived += 1;
        if st.arrived == parent_size {
            // Last to arrive: compute all groups.
            let mut by_color: HashMap<i64, Vec<(i64, usize, usize)>> = HashMap::new();
            for (parent_idx, e) in st.entries.iter().enumerate() {
                let (c, k, w) = e.unwrap_or_else(|| {
                    panic!("split #{seq} on ctx {parent_ctx}: entry {parent_idx} missing after full rendezvous")
                });
                if c >= 0 {
                    by_color.entry(c).or_default().push((k, parent_idx, w));
                }
            }
            let mut groups = HashMap::new();
            let mut colors: Vec<i64> = by_color.keys().copied().collect();
            colors.sort_unstable(); // deterministic ctx assignment
            for c in colors {
                let mut v = by_color.remove(&c).unwrap_or_else(|| {
                    panic!("split #{seq} on ctx {parent_ctx}: color {c} vanished while grouping")
                });
                v.sort_unstable(); // by (key, parent index)
                let members = v.into_iter().map(|(_, _, w)| w).collect();
                groups.insert(c, SplitGroup { ctx: self.alloc_ctx(), members });
            }
            st.result = Some(Arc::new(groups));
            cell.cv.notify_all();
        } else {
            let waiting_on: Vec<usize> = parent_members
                .iter()
                .enumerate()
                .filter_map(|(i, &w)| st.entries[i].is_none().then_some(w))
                .collect();
            self.verify.set_wait(
                my_world_rank,
                WaitInfo { kind: WaitKind::Split { seq }, ctx: parent_ctx, waiting_on, site },
            );
            while st.result.is_none() {
                if self.verify.is_aborted() {
                    drop(st);
                    self.verify.abort_panic(my_world_rank);
                }
                st = cell.cv.wait_timeout(st, ABORT_POLL).unwrap_or_else(PoisonError::into_inner).0;
            }
            self.verify.clear_wait(my_world_rank);
        }
        let result = st
            .result
            .as_ref()
            .unwrap_or_else(|| {
                panic!("split #{seq} on ctx {parent_ctx}: woke without a result — fabric bug")
            })
            .clone();
        st.consumed += 1;
        let everyone_done = st.consumed == parent_size;
        drop(st); // splits-map lock is taken next; never hold state across it
        if everyone_done {
            // Everyone has read the result; free the rendezvous slot so
            // long runs don't accumulate split state.
            lock_unpoisoned(&self.splits).remove(&(parent_ctx, seq));
        }

        if color < 0 {
            None
        } else {
            Some(
                result
                    .get(&color)
                    .unwrap_or_else(|| {
                        panic!(
                            "split #{seq} on ctx {parent_ctx}: world rank {my_world_rank}'s \
                             color {color} missing from the computed groups — fabric bug"
                        )
                    })
                    .clone(),
            )
        }
    }

    /// Abort the world: store `report`, set the abort flag, and wake every
    /// blocked primitive so ranks tear themselves down promptly. First
    /// abort wins; later calls are no-ops.
    pub(crate) fn abort(&self, report: String) {
        if !self.verify.try_set_aborted(report) {
            return;
        }
        let mailboxes: Vec<Arc<Mailbox>> =
            read_unpoisoned(&self.mailboxes).values().cloned().collect();
        for mb in mailboxes {
            mb.cv.notify_all();
        }
        let cells: Vec<Arc<SplitCell>> = lock_unpoisoned(&self.splits).values().cloned().collect();
        for cell in cells {
            cell.cv.notify_all();
        }
        self.barrier.cv.notify_all();
    }

    /// Count of messages posted but never taken, per mailbox (strict-drain
    /// audit).
    pub(crate) fn residual_messages(&self) -> Vec<(Ctx, usize, usize)> {
        let map = read_unpoisoned(&self.mailboxes);
        let mut out: Vec<(Ctx, usize, usize)> = map
            .iter()
            .filter_map(|(&(ctx, index), mb)| {
                let n = lock_unpoisoned(&mb.q).len();
                (n > 0).then_some((ctx, index, n))
            })
            .collect();
        out.sort_unstable();
        out
    }

    // ----- deadlock watchdog ------------------------------------------------

    /// One watchdog pass over the wait registry. Returns a deadlock report
    /// when the same non-empty set of ranks is blocked with no possible
    /// progress for two consecutive scans (`prev` carries the candidate
    /// set between scans as `(rank, wait-generation)` pairs).
    ///
    /// "Possible progress" is computed as a fixpoint: running ranks can
    /// progress; a blocked rank whose wait already has its wake-up
    /// condition satisfied (message queued, split result computed, barrier
    /// generation advanced) can progress; and a blocked rank waiting on
    /// any rank that can progress might still be served. Only ranks
    /// outside that closure are deadlocked — so the detector never flags a
    /// slow-but-live schedule.
    pub(crate) fn watchdog_scan(&self, prev: &mut Option<Vec<(usize, u64)>>) -> Option<String> {
        if self.verify.is_aborted() {
            return None;
        }
        let views = self.verify.snapshot();
        let n = views.len();
        let mut progressable = vec![false; n];
        let mut any_blocked = false;
        for (r, v) in views.iter().enumerate() {
            match &v.wait {
                None => progressable[r] = !v.done,
                Some(_) => any_blocked = true,
            }
        }
        if !any_blocked {
            *prev = None;
            return None;
        }
        // Wake-up hints: blocked ranks whose wait condition is already met.
        for (r, v) in views.iter().enumerate() {
            let Some(w) = &v.wait else { continue };
            let hinted = match &w.kind {
                WaitKind::Recv { ctx_index, .. } => {
                    let mb = read_unpoisoned(&self.mailboxes).get(&(w.ctx, *ctx_index)).cloned();
                    mb.is_some_and(|mb| !lock_unpoisoned(&mb.q).is_empty())
                }
                WaitKind::Split { seq } => {
                    let cell = lock_unpoisoned(&self.splits).get(&(w.ctx, *seq)).cloned();
                    cell.is_some_and(|c| lock_unpoisoned(&c.state).result.is_some())
                }
                WaitKind::Barrier { generation } => {
                    lock_unpoisoned(&self.barrier.st).generation > *generation
                }
            };
            if hinted {
                progressable[r] = true;
            }
        }
        // Propagate progress potential along wait-for edges.
        loop {
            let mut changed = false;
            for (r, v) in views.iter().enumerate() {
                if progressable[r] {
                    continue;
                }
                let Some(w) = &v.wait else { continue };
                if w.waiting_on.iter().any(|&o| o < n && progressable[o]) {
                    progressable[r] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let deadlocked: Vec<(usize, u64)> = views
            .iter()
            .enumerate()
            .filter(|&(r, v)| v.wait.is_some() && !progressable[r])
            .map(|(r, v)| (r, v.gen))
            .collect();
        if deadlocked.is_empty() {
            *prev = None;
            return None;
        }
        if prev.as_ref() != Some(&deadlocked) {
            // New candidate set (or a rank re-blocked, bumping its
            // generation): require one more stable scan before aborting.
            *prev = Some(deadlocked);
            return None;
        }
        let stuck: Vec<usize> = deadlocked.iter().map(|&(r, _)| r).collect();
        Some(self.deadlock_report(&views, &stuck))
    }

    fn deadlock_report(&self, views: &[SlotView], stuck: &[usize]) -> String {
        let mut report = format!(
            "pmm-verify: deadlock detected — {} rank(s) blocked with no possible progress\n",
            stuck.len()
        );
        for &r in stuck {
            if let Some(w) = &views[r].wait {
                report.push_str(&format!(
                    "  rank {r}: blocked in {} on ctx {} at {}, waiting on ranks {:?}\n",
                    w.kind, w.ctx, w.site, w.waiting_on
                ));
            }
        }
        let stuck_set: HashSet<usize> = stuck.iter().copied().collect();
        if let Some(cycle) = wait_cycle(views, &stuck_set) {
            let path: Vec<String> = cycle.iter().map(|r| format!("rank {r}")).collect();
            report.push_str(&format!("wait-for cycle: {}\n", path.join(" -> ")));
        }
        let pending = self.verify.all_pending_collectives();
        if !pending.is_empty() {
            report.push_str("partially-entered collectives:\n");
            for line in pending {
                report.push_str(&line);
                report.push('\n');
            }
        }
        report
    }
}

/// Walk wait-for edges inside the stuck set from its smallest member and
/// return the first cycle found, closed (first element repeated at the
/// end).
fn wait_cycle(views: &[SlotView], stuck: &HashSet<usize>) -> Option<Vec<usize>> {
    let start = *stuck.iter().min()?;
    let mut path: Vec<usize> = vec![start];
    let mut cur = start;
    loop {
        let w = views[cur].wait.as_ref()?;
        let next = *w.waiting_on.iter().find(|o| stuck.contains(o))?;
        if let Some(pos) = path.iter().position(|&r| r == next) {
            let mut cycle = path[pos..].to_vec();
            cycle.push(next);
            return Some(cycle);
        }
        path.push(next);
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn here() -> &'static Location<'static> {
        Location::caller()
    }

    fn msg(from: usize, sent_at: f64, payload: Vec<f64>) -> Message {
        Message { from, sent_at, payload, vclock: None }
    }

    #[test]
    fn post_and_take_roundtrip() {
        let fabric = Fabric::new(1);
        fabric.post(WORLD_CTX, 0, msg(3, 1.5, vec![1.0, 2.0]));
        let m = fabric.take_any(WORLD_CTX, 0, 0, 0, here());
        assert_eq!(m.from, 3);
        assert_eq!(m.sent_at, 1.5);
        assert_eq!(m.payload, vec![1.0, 2.0]);
    }

    #[test]
    fn messages_between_contexts_are_isolated() {
        let fabric = Fabric::new(1);
        fabric.post(7, 0, msg(0, 0.0, vec![7.0]));
        fabric.post(8, 0, msg(0, 0.0, vec![8.0]));
        assert_eq!(fabric.take_any(8, 0, 0, 0, here()).payload, vec![8.0]);
        assert_eq!(fabric.take_any(7, 0, 0, 0, here()).payload, vec![7.0]);
    }

    #[test]
    fn split_partitions_by_color_and_orders_by_key() {
        // 4 "ranks" split into color = rank % 2, key = -rank (reverse order).
        let fabric = Arc::new(Fabric::new(4));
        let members = [0usize, 1, 2, 3];
        let mut handles = Vec::new();
        for r in 0..4usize {
            let f = fabric.clone();
            handles.push(thread::spawn(move || {
                f.split(WORLD_CTX, &members, 0, r, r, (r % 2) as i64, -(r as i64), here())
            }));
        }
        let groups: Vec<_> = handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect();
        // ranks 0 and 2 share color 0; members sorted by key (descending rank)
        assert_eq!(groups[0].members, vec![2, 0]);
        assert_eq!(groups[2].members, vec![2, 0]);
        assert_eq!(groups[1].members, vec![3, 1]);
        assert_eq!(groups[3].members, vec![3, 1]);
        // distinct colors got distinct contexts
        assert_ne!(groups[0].ctx, groups[1].ctx);
        assert_eq!(groups[0].ctx, groups[2].ctx);
    }

    #[test]
    fn split_with_negative_color_yields_none() {
        let fabric = Arc::new(Fabric::new(2));
        let f2 = fabric.clone();
        let h = thread::spawn(move || f2.split(WORLD_CTX, &[0, 1], 0, 1, 1, -1, 0, here()));
        let g0 = fabric.split(WORLD_CTX, &[0, 1], 0, 0, 0, 0, 0, here());
        let g1 = h.join().unwrap();
        assert!(g1.is_none());
        assert_eq!(g0.unwrap().members, vec![0]);
    }

    #[test]
    fn split_state_is_cleaned_up() {
        let fabric = Arc::new(Fabric::new(2));
        let f2 = fabric.clone();
        let h = thread::spawn(move || f2.split(WORLD_CTX, &[0, 1], 5, 1, 1, 0, 0, here()));
        fabric.split(WORLD_CTX, &[0, 1], 5, 0, 0, 0, 0, here());
        h.join().unwrap();
        assert!(lock_unpoisoned(&fabric.splits).is_empty());
    }

    #[test]
    fn watchdog_scan_flags_mutual_recv_after_two_stable_scans() {
        // Two ranks each blocked receiving from the other, nothing queued.
        let fabric = Fabric::new(2);
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        fabric.verify.set_wait(
            1,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 0, ctx_index: 1 },
                ctx: WORLD_CTX,
                waiting_on: vec![0],
                site: here(),
            },
        );
        let mut prev = None;
        assert!(fabric.watchdog_scan(&mut prev).is_none(), "first scan only arms the candidate");
        let report = fabric.watchdog_scan(&mut prev).expect("second stable scan must confirm");
        assert!(report.contains("deadlock detected"), "{report}");
        assert!(report.contains("rank 0"), "{report}");
        assert!(report.contains("rank 1"), "{report}");
        assert!(report.contains("wait-for cycle"), "{report}");
    }

    #[test]
    fn watchdog_scan_spares_recv_with_queued_message() {
        // Rank 0 waits on rank 1, but a message is already queued for it:
        // rank 0 is progressable, and rank 1 (waiting on rank 0) inherits
        // that via the fixpoint.
        let fabric = Fabric::new(2);
        fabric.post(WORLD_CTX, 0, msg(1, 0.0, vec![1.0]));
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        fabric.verify.set_wait(
            1,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 0, ctx_index: 1 },
                ctx: WORLD_CTX,
                waiting_on: vec![0],
                site: here(),
            },
        );
        let mut prev = None;
        for _ in 0..3 {
            assert!(fabric.watchdog_scan(&mut prev).is_none());
        }
    }

    #[test]
    fn watchdog_scan_spares_blocked_ranks_while_any_rank_runs() {
        // Rank 0 blocked on rank 1; rank 1 is running (no wait) — no
        // deadlock, however many scans pass.
        let fabric = Fabric::new(2);
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        let mut prev = None;
        for _ in 0..3 {
            assert!(fabric.watchdog_scan(&mut prev).is_none());
        }
    }

    #[test]
    fn watchdog_scan_flags_recv_from_finished_rank() {
        // Rank 1 exited without sending; rank 0 still waits on it.
        let fabric = Fabric::new(2);
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        fabric.verify.mark_done(1);
        let mut prev = None;
        assert!(fabric.watchdog_scan(&mut prev).is_none());
        let report = fabric.watchdog_scan(&mut prev).expect("recv from exited rank is a deadlock");
        assert!(report.contains("rank 0"), "{report}");
        assert!(report.contains("waiting on ranks [1]"), "{report}");
    }

    #[test]
    fn watchdog_requires_stability_across_generations() {
        // The candidate set is armed, but the rank re-blocks (generation
        // bump) before the second scan: the confirmation must start over.
        let fabric = Fabric::new(1);
        let block = |f: &Fabric| {
            f.verify.set_wait(
                0,
                WaitInfo {
                    kind: WaitKind::Recv { from_world: 0, ctx_index: 0 },
                    ctx: WORLD_CTX,
                    waiting_on: vec![0],
                    site: here(),
                },
            )
        };
        block(&fabric);
        let mut prev = None;
        assert!(fabric.watchdog_scan(&mut prev).is_none());
        block(&fabric); // same wait, new generation
        assert!(fabric.watchdog_scan(&mut prev).is_none(), "generation changed: re-arm");
        let report = fabric.watchdog_scan(&mut prev);
        assert!(report.is_some(), "stable for two scans now");
    }

    #[test]
    fn abort_wakes_blocked_take_any() {
        let fabric = Arc::new(Fabric::new(2));
        let f2 = fabric.clone();
        let h = thread::spawn(move || {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                f2.take_any(WORLD_CTX, 0, 0, 1, here());
            }));
            caught.expect_err("take_any must panic out of an aborted world")
        });
        // Give the receiver a moment to block, then abort.
        thread::sleep(Duration::from_millis(20));
        fabric.abort("test abort".to_string());
        let payload = h.join().expect("receiver thread joins");
        let abort = payload
            .downcast_ref::<crate::verify::AbortPanic>()
            .expect("panic payload is AbortPanic");
        assert!(abort.0.contains("test abort"), "{}", abort.0);
    }

    #[test]
    fn residual_messages_reports_undrained_mailboxes() {
        let fabric = Fabric::new(2);
        fabric.post(WORLD_CTX, 1, msg(0, 0.0, vec![1.0]));
        fabric.post(WORLD_CTX, 1, msg(0, 0.0, vec![2.0]));
        fabric.post(3, 0, msg(1, 0.0, vec![3.0]));
        assert_eq!(fabric.residual_messages(), vec![(WORLD_CTX, 1, 2), (3, 0, 1)]);
        fabric.take_any(3, 0, 0, 1, here());
        assert_eq!(fabric.residual_messages(), vec![(WORLD_CTX, 1, 2)]);
    }
}
