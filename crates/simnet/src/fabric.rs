//! The communication fabric shared by all ranks of a [`World`].
//!
//! The fabric owns, for every communicator context, one unbounded channel
//! per member (the member's *mailbox*). Directed receive (`recv(from)`)
//! is implemented by the receiving rank stashing out-of-order messages —
//! messages from one sender to one receiver stay FIFO because they travel
//! through a single channel and a FIFO stash.
//!
//! The fabric also hosts the rendezvous state for **communicator splits**
//! (the MPI `comm_split` equivalent): a split is a collective, so all
//! members of the parent communicator deposit their `(color, key)` and the
//! last one to arrive partitions the members into groups, allocates one
//! fresh context per group, and wakes everyone.
//!
//! [`World`]: crate::world::World

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

/// Identifier of a communicator context. Every communicator created during
/// a run has a distinct context, so traffic on different communicators can
/// never be confused.
pub type Ctx = u64;

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender's index *within the communicator* the message was sent on.
    pub from: usize,
    /// Sender's clock when the send was posted (used for critical-path
    /// accounting on the receiving side).
    pub sent_at: f64,
    /// The data; its length is the metered word count.
    pub payload: Vec<f64>,
}

struct Mailbox {
    tx: Sender<Message>,
    rx: Receiver<Message>,
}

/// Result of a communicator split for a single color.
#[derive(Debug, Clone)]
pub(crate) struct SplitGroup {
    pub ctx: Ctx,
    /// World ranks of the members, ordered by `(key, parent index)`.
    pub members: Vec<usize>,
}

struct SplitState {
    /// `(color, key, world_rank)` per parent index; `None` until deposited.
    entries: Vec<Option<(i64, i64, usize)>>,
    arrived: usize,
    consumed: usize,
    /// color -> group; populated by the last rank to arrive.
    result: Option<Arc<HashMap<i64, SplitGroup>>>,
}

struct SplitCell {
    state: Mutex<SplitState>,
    cv: Condvar,
}

/// The shared fabric. One per [`World`](crate::world::World); ranks hold it
/// behind an `Arc`.
pub struct Fabric {
    next_ctx: AtomicU64,
    mailboxes: RwLock<HashMap<(Ctx, usize), Mailbox>>,
    splits: Mutex<HashMap<(Ctx, u64), Arc<SplitCell>>>,
    /// Zero-cost world barrier, for callers that need to delimit phases
    /// without perturbing the metered costs.
    sync_barrier: std::sync::Barrier,
}

/// Context id of the world communicator (created by [`Fabric::new`]).
pub(crate) const WORLD_CTX: Ctx = 0;

impl Fabric {
    pub(crate) fn new(world_size: usize) -> Fabric {
        Fabric {
            next_ctx: AtomicU64::new(1),
            mailboxes: RwLock::new(HashMap::new()),
            splits: Mutex::new(HashMap::new()),
            sync_barrier: std::sync::Barrier::new(world_size),
        }
    }

    fn alloc_ctx(&self) -> Ctx {
        self.next_ctx.fetch_add(1, Ordering::Relaxed)
    }

    fn mailbox<R>(&self, ctx: Ctx, index: usize, f: impl FnOnce(&Mailbox) -> R) -> R {
        {
            let map = self.mailboxes.read();
            if let Some(mb) = map.get(&(ctx, index)) {
                return f(mb);
            }
        }
        let mut map = self.mailboxes.write();
        let mb = map.entry((ctx, index)).or_insert_with(|| {
            let (tx, rx) = unbounded();
            Mailbox { tx, rx }
        });
        f(mb)
    }

    /// Post `msg` to member `to` of context `ctx`.
    pub(crate) fn post(&self, ctx: Ctx, to: usize, msg: Message) {
        self.mailbox(ctx, to, |mb| {
            // Unbounded channel: never blocks; can only fail if the
            // receiver end were dropped, which the fabric keeps alive.
            mb.tx.send(msg).expect("fabric mailbox closed");
        });
    }

    /// Blockingly take the next message from member `index`'s mailbox on
    /// context `ctx` (in arrival order; directed matching is done by the
    /// rank's stash).
    pub(crate) fn take_any(&self, ctx: Ctx, index: usize) -> Message {
        let rx = self.mailbox(ctx, index, |mb| mb.rx.clone());
        rx.recv().expect("fabric mailbox closed")
    }

    /// Zero-cost synchronization of all world ranks (not metered; test and
    /// phase-delimiting use only).
    pub(crate) fn hard_sync(&self) {
        self.sync_barrier.wait();
    }

    /// Collective communicator split. Called by every member of the parent
    /// context; `seq` is the caller's per-parent split sequence number
    /// (all members must call splits in the same order).
    ///
    /// `color < 0` means "no new communicator for me" (MPI_UNDEFINED).
    /// Returns the group for `color`, or `None` for negative colors.
    #[allow(clippy::too_many_arguments)] // a rendezvous genuinely needs all of these
    pub(crate) fn split(
        &self,
        parent_ctx: Ctx,
        parent_size: usize,
        seq: u64,
        my_parent_index: usize,
        my_world_rank: usize,
        color: i64,
        key: i64,
    ) -> Option<SplitGroup> {
        let cell = {
            let mut splits = self.splits.lock();
            splits
                .entry((parent_ctx, seq))
                .or_insert_with(|| {
                    Arc::new(SplitCell {
                        state: Mutex::new(SplitState {
                            entries: vec![None; parent_size],
                            arrived: 0,
                            consumed: 0,
                            result: None,
                        }),
                        cv: Condvar::new(),
                    })
                })
                .clone()
        };

        let result = {
            let mut st = cell.state.lock();
            assert!(
                st.entries[my_parent_index].is_none(),
                "rank deposited twice into the same split — mismatched split sequence"
            );
            st.entries[my_parent_index] = Some((color, key, my_world_rank));
            st.arrived += 1;
            if st.arrived == parent_size {
                // Last to arrive: compute all groups.
                let mut by_color: HashMap<i64, Vec<(i64, usize, usize)>> = HashMap::new();
                for (parent_idx, e) in st.entries.iter().enumerate() {
                    let (c, k, w) = e.expect("all entries deposited");
                    if c >= 0 {
                        by_color.entry(c).or_default().push((k, parent_idx, w));
                    }
                }
                let mut groups = HashMap::new();
                let mut colors: Vec<i64> = by_color.keys().copied().collect();
                colors.sort_unstable(); // deterministic ctx assignment
                for c in colors {
                    let mut v = by_color.remove(&c).expect("color present");
                    v.sort_unstable(); // by (key, parent index)
                    let members = v.into_iter().map(|(_, _, w)| w).collect();
                    groups.insert(c, SplitGroup { ctx: self.alloc_ctx(), members });
                }
                st.result = Some(Arc::new(groups));
                self.cv_notify(&cell);
            } else {
                while st.result.is_none() {
                    cell.cv.wait(&mut st);
                }
            }
            let res = st.result.as_ref().expect("split result present").clone();
            st.consumed += 1;
            if st.consumed == parent_size {
                // Everyone has read the result; free the rendezvous slot so
                // long runs don't accumulate split state.
                self.splits.lock().remove(&(parent_ctx, seq));
            }
            res
        };

        if color < 0 {
            None
        } else {
            Some(result.get(&color).expect("own color present in split result").clone())
        }
    }

    fn cv_notify(&self, cell: &SplitCell) {
        cell.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn post_and_take_roundtrip() {
        let fabric = Fabric::new(1);
        fabric.post(
            WORLD_CTX,
            0,
            Message { from: 3, sent_at: 1.5, payload: vec![1.0, 2.0] },
        );
        let m = fabric.take_any(WORLD_CTX, 0);
        assert_eq!(m.from, 3);
        assert_eq!(m.sent_at, 1.5);
        assert_eq!(m.payload, vec![1.0, 2.0]);
    }

    #[test]
    fn messages_between_contexts_are_isolated() {
        let fabric = Fabric::new(1);
        fabric.post(7, 0, Message { from: 0, sent_at: 0.0, payload: vec![7.0] });
        fabric.post(8, 0, Message { from: 0, sent_at: 0.0, payload: vec![8.0] });
        assert_eq!(fabric.take_any(8, 0).payload, vec![8.0]);
        assert_eq!(fabric.take_any(7, 0).payload, vec![7.0]);
    }

    #[test]
    fn split_partitions_by_color_and_orders_by_key() {
        // 4 "ranks" split into color = rank % 2, key = -rank (reverse order).
        let fabric = Arc::new(Fabric::new(4));
        let mut handles = Vec::new();
        for r in 0..4usize {
            let f = fabric.clone();
            handles.push(thread::spawn(move || {
                f.split(WORLD_CTX, 4, 0, r, r, (r % 2) as i64, -(r as i64))
            }));
        }
        let groups: Vec<_> = handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect();
        // ranks 0 and 2 share color 0; members sorted by key (descending rank)
        assert_eq!(groups[0].members, vec![2, 0]);
        assert_eq!(groups[2].members, vec![2, 0]);
        assert_eq!(groups[1].members, vec![3, 1]);
        assert_eq!(groups[3].members, vec![3, 1]);
        // distinct colors got distinct contexts
        assert_ne!(groups[0].ctx, groups[1].ctx);
        assert_eq!(groups[0].ctx, groups[2].ctx);
    }

    #[test]
    fn split_with_negative_color_yields_none() {
        let fabric = Arc::new(Fabric::new(2));
        let f2 = fabric.clone();
        let h = thread::spawn(move || f2.split(WORLD_CTX, 2, 0, 1, 1, -1, 0));
        let g0 = fabric.split(WORLD_CTX, 2, 0, 0, 0, 0, 0);
        let g1 = h.join().unwrap();
        assert!(g1.is_none());
        assert_eq!(g0.unwrap().members, vec![0]);
    }

    #[test]
    fn split_state_is_cleaned_up() {
        let fabric = Arc::new(Fabric::new(2));
        let f2 = fabric.clone();
        let h = thread::spawn(move || f2.split(WORLD_CTX, 2, 5, 1, 1, 0, 0));
        fabric.split(WORLD_CTX, 2, 5, 0, 0, 0, 0);
        h.join().unwrap();
        assert!(fabric.splits.lock().is_empty());
    }
}
