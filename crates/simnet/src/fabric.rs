//! The communication fabric shared by all ranks of a [`World`].
//!
//! The fabric owns, for every communicator context, one mailbox per
//! member (a FIFO queue guarded by a mutex + condvar). Directed receive
//! (`recv(from)`) is implemented by the receiving rank stashing
//! out-of-order messages — messages from one sender to one receiver stay
//! FIFO because they travel through a single queue and a FIFO stash.
//!
//! The fabric also hosts the rendezvous state for **communicator splits**
//! (the MPI `comm_split` equivalent): a split is a collective, so all
//! members of the parent communicator deposit their `(color, key)` and the
//! last one to arrive partitions the members into groups, allocates one
//! fresh context per group, and wakes everyone.
//!
//! Every blocking point (mailbox receive, split rendezvous, the world
//! barrier) is instrumented for the [`verify`](crate::verify) layer: the
//! blocking rank registers what it waits for, waits with a short timeout
//! so it can observe a verifier abort, and is torn down with an
//! `AbortPanic` when the world is aborted. `Fabric::watchdog_scan`
//! implements the deadlock detector that runs
//! over those registrations.
//!
//! Lock ordering (to keep the fabric itself deadlock-free):
//! mailbox map → mailbox queue → verify slot; splits map → split state →
//! (state dropped) → splits map; barrier state → verify slot. The
//! watchdog never holds a verify slot while taking a fabric lock — it
//! snapshots the slots first.
//!
//! [`World`]: crate::world::World

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;

use crate::fault::{FaultKick, FaultPlan, FaultState, MsgMeta};
use crate::trace::{BlockPoint, ChoicePoint, Repro, Resource, SchedEvent, Schedule, ScheduleTrace};
use crate::verify::{lock_unpoisoned, CollectiveOp, SlotView, VerifyState, WaitInfo, WaitKind};

/// Identifier of a communicator context. Every communicator created during
/// a run has a distinct context, so traffic on different communicators can
/// never be confused.
pub type Ctx = u64;

/// Context id of the world communicator (created by [`Fabric::new`]).
pub(crate) const WORLD_CTX: Ctx = 0;

/// How often a blocked primitive re-checks the abort flag. Waits are
/// condvar-notified, so this only bounds the wake-up delay if a
/// notification is missed — it is not a busy-wait interval.
const ABORT_POLL: Duration = Duration::from_millis(100);

fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender's index *within the communicator* the message was sent on.
    pub from: usize,
    /// Sender's clock when the send was posted (used for critical-path
    /// accounting on the receiving side).
    pub sent_at: f64,
    /// The data; its length is the metered word count.
    pub payload: Vec<f64>,
    /// Sender's vector clock at send time (happens-before audit; see
    /// `crate::verify`).
    pub(crate) vclock: Option<Arc<[u64]>>,
    /// Reliable-delivery metadata (sequence number + checksum); present
    /// iff the world runs with a fault plan.
    pub(crate) meta: Option<MsgMeta>,
}

struct Mailbox {
    q: Mutex<VecDeque<Message>>,
    cv: Condvar,
}

/// Result of a communicator split for a single color.
#[derive(Debug, Clone)]
pub(crate) struct SplitGroup {
    pub ctx: Ctx,
    /// World ranks of the members, ordered by `(key, parent index)`.
    pub members: Vec<usize>,
}

struct SplitState {
    /// `(color, key, world_rank)` per parent index; `None` until deposited.
    entries: Vec<Option<(i64, i64, usize)>>,
    /// Parent communicator's world ranks (so the fault layer can count
    /// which members are still alive).
    parent_members: Vec<usize>,
    arrived: usize,
    consumed: usize,
    /// color -> group; populated by the last live rank to arrive.
    result: Option<Arc<HashMap<i64, SplitGroup>>>,
}

struct SplitCell {
    state: Mutex<SplitState>,
    cv: Condvar,
}

struct BarrierState {
    /// Which world ranks have arrived in the current generation.
    arrived: Vec<bool>,
    count: usize,
    generation: u64,
}

struct BarrierCell {
    st: Mutex<BarrierState>,
    cv: Condvar,
}

/// SplitMix64 step — the scheduler's tie-breaking PRNG, also the mixer
/// behind every fault-injection decision (see [`crate::fault`]). Tiny,
/// seedable, and fully deterministic, which is all either client needs.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A rank's state in the deterministic scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankStatus {
    /// Thread not yet started; nobody runs until all ranks attach.
    NotAttached,
    /// Runnable (or currently running, when it also holds the baton).
    Ready,
    /// Parked at a blocking point whose condition was unmet when checked.
    Blocked,
    /// Program finished (normally or by unwinding).
    Done,
}

struct SchedInner {
    /// SplitMix64 state, seeded from the schedule seed (untouched in
    /// prefix-replay mode).
    rng: u64,
    /// Next index into the prefix when the schedule is
    /// [`Schedule::Prefix`]; counts picks either way.
    cursor: usize,
    status: Vec<RankStatus>,
    attached: usize,
    /// The rank holding the execution baton, if any.
    current: Option<usize>,
    /// Totally-ordered event log (appended under this mutex).
    events: Vec<SchedEvent>,
    /// First-class pick stream: one entry per scheduler pick, carrying
    /// the runnable set, the chosen rank, and (filled in as the segment
    /// executes) the fabric resources the segment touched.
    choices: Vec<ChoicePoint>,
}

/// Cooperative deterministic scheduler: present iff the world was built
/// with [`World::with_seed`](crate::World::with_seed) or
/// [`World::with_schedule`](crate::World::with_schedule). Exactly one
/// rank runs at a time; the baton changes hands at every blocking point
/// and at every send / collective entry. Ties among runnable ranks are
/// resolved by the [`Schedule`]: a [`splitmix64`] draw when seeded, or
/// by following a recorded choice prefix (then always picking the
/// smallest runnable rank — the *canonical completion*) when replaying.
/// All scheduling decisions and fabric events are appended to `events`
/// under one mutex, so the log is totally ordered and identical
/// `(program, schedule)` pairs replay byte-identically.
struct DetState {
    schedule: Schedule,
    st: Mutex<SchedInner>,
    cv: Condvar,
}

/// What [`Fabric::sched_pick_locked`] decided.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PickOutcome {
    /// The baton was handed to a runnable rank.
    Picked,
    /// Nobody is runnable, but nobody is blocked either (everyone done
    /// or still attaching) — nothing to do.
    Idle,
    /// Provable deadlock: nobody runnable, nobody attaching, at least
    /// one rank blocked.
    Deadlock,
    /// Prefix replay named a rank that is not runnable at this pick —
    /// the prefix does not correspond to a reachable branch of this
    /// program's schedule tree.
    Diverged {
        /// The rank the prefix demanded.
        wanted: usize,
        /// Zero-based pick index at which it diverged.
        at: usize,
    },
}

/// The shared fabric. One per [`World`](crate::world::World); ranks hold it
/// behind an `Arc`.
pub struct Fabric {
    next_ctx: AtomicU64,
    mailboxes: RwLock<HashMap<(Ctx, usize), Arc<Mailbox>>>,
    splits: Mutex<HashMap<(Ctx, u64), Arc<SplitCell>>>,
    /// Zero-cost world barrier, for callers that need to delimit phases
    /// without perturbing the metered costs.
    barrier: BarrierCell,
    /// Communication-correctness state (wait registry, collective ledger,
    /// abort flag).
    pub(crate) verify: VerifyState,
    /// Deterministic scheduler; `None` in free-running (default) mode.
    det: Option<DetState>,
    /// Fault-injection state; `None` when the world has no fault plan
    /// (the default), in which case every fault hook is a no-op and the
    /// fabric behaves byte-identically to the pre-fault-layer code.
    fault: Option<FaultState>,
}

impl Fabric {
    pub(crate) fn new(world_size: usize) -> Fabric {
        Fabric {
            next_ctx: AtomicU64::new(1),
            mailboxes: RwLock::new(HashMap::new()),
            splits: Mutex::new(HashMap::new()),
            barrier: BarrierCell {
                st: Mutex::new(BarrierState {
                    arrived: vec![false; world_size],
                    count: 0,
                    generation: 0,
                }),
                cv: Condvar::new(),
            },
            verify: VerifyState::new(world_size),
            det: None,
            fault: None,
        }
    }

    /// Attach a fault plan (validated) with its resolved decision seed.
    /// Like [`Fabric::enable_det`], must run before any rank starts.
    pub(crate) fn enable_faults(&mut self, plan: FaultPlan, seed: u64) {
        plan.validate();
        self.fault = Some(FaultState::new(plan, seed, self.verify.world_size()));
    }

    /// The attached fault state, if any.
    pub(crate) fn fault(&self) -> Option<&FaultState> {
        self.fault.as_ref()
    }

    /// Current fault epoch (0 when no plan is attached or nobody died).
    pub(crate) fn fault_epoch(&self) -> u64 {
        self.fault.as_ref().map_or(0, FaultState::epoch)
    }

    /// World ranks killed so far (empty without a plan).
    pub(crate) fn dead_ranks(&self) -> Vec<usize> {
        self.fault.as_ref().map_or_else(Vec::new, FaultState::dead_ranks)
    }

    fn is_dead_rank(&self, world_rank: usize) -> bool {
        self.fault.as_ref().is_some_and(|f| f.is_dead(world_rank))
    }

    /// Record the death of `world_rank` and propagate it: note it for the
    /// failure report, bump the fault epoch, count the corpse as arrived
    /// in the world barrier, complete any split rendezvous that was only
    /// waiting on dead ranks, and wake every blocked primitive so
    /// survivors re-check their conditions (and observe the new epoch).
    pub(crate) fn mark_rank_dead(&self, world_rank: usize, note: String) {
        let Some(fault) = &self.fault else { return };
        if !fault.mark_dead(world_rank) {
            return;
        }
        self.verify.note_rank_failure(note);
        {
            let mut st = lock_unpoisoned(&self.barrier.st);
            self.barrier_sweep_dead_locked(&mut st);
        }
        let cells: Vec<Arc<SplitCell>> = lock_unpoisoned(&self.splits).values().cloned().collect();
        for cell in cells {
            let mut st = lock_unpoisoned(&cell.state);
            self.split_try_complete(&mut st);
        }
        self.wake_all_primitives();
        self.sched_unblock_all();
    }

    /// Mark every dead, not-yet-arrived rank as arrived in the current
    /// barrier generation; release the barrier if that completes it.
    /// No-op without a fault plan.
    fn barrier_sweep_dead_locked(&self, st: &mut BarrierState) {
        let Some(fault) = &self.fault else { return };
        let n = st.arrived.len();
        for r in 0..n {
            if !st.arrived[r] && fault.is_dead(r) {
                st.arrived[r] = true;
                st.count += 1;
            }
        }
        if st.count == n && n > 0 {
            st.count = 0;
            st.arrived.iter_mut().for_each(|a| *a = false);
            st.generation += 1;
            self.barrier.cv.notify_all();
        }
    }

    /// Notify every fabric condvar (blocked receives, split rendezvous,
    /// the barrier, the scheduler baton) so parked ranks re-check state.
    fn wake_all_primitives(&self) {
        let mailboxes: Vec<Arc<Mailbox>> =
            read_unpoisoned(&self.mailboxes).values().cloned().collect();
        for mb in mailboxes {
            mb.cv.notify_all();
        }
        let cells: Vec<Arc<SplitCell>> = lock_unpoisoned(&self.splits).values().cloned().collect();
        for cell in cells {
            cell.cv.notify_all();
        }
        self.barrier.cv.notify_all();
        if let Some(det) = &self.det {
            det.cv.notify_all();
        }
    }

    /// Whether a rank inside a failure-catching scope (watching from
    /// `watch`) should be kicked out of a blocking wait because the fault
    /// epoch moved under it.
    fn fault_kicked(&self, fault_watch: Option<u64>) -> bool {
        fault_watch.is_some_and(|watch| self.fault_epoch() > watch)
    }

    /// Switch this fabric into deterministic scheduling mode under a
    /// [`Schedule`]. Must be called before any rank thread starts (the
    /// world does this between constructing the fabric and spawning
    /// ranks).
    pub(crate) fn enable_schedule(&mut self, schedule: Schedule) {
        let n = self.verify.world_size();
        let rng = match &schedule {
            Schedule::Seeded(seed) => *seed,
            Schedule::Prefix(_) => 0,
        };
        self.det = Some(DetState {
            schedule,
            st: Mutex::new(SchedInner {
                rng,
                cursor: 0,
                status: vec![RankStatus::NotAttached; n],
                attached: 0,
                current: None,
                events: Vec::new(),
                choices: Vec::new(),
            }),
            cv: Condvar::new(),
        });
    }

    /// The canonical replay recipe for this fabric's schedule, if
    /// deterministic mode is on. In prefix mode the recipe names the
    /// choices *actually made so far* (not just the configured prefix),
    /// so a failure deep in the canonical completion still replays.
    pub(crate) fn sched_repro(&self) -> Option<Repro> {
        let det = self.det.as_ref()?;
        let st = lock_unpoisoned(&det.st);
        Some(Self::sched_repro_locked(det, &st))
    }

    fn sched_repro_locked(det: &DetState, st: &SchedInner) -> Repro {
        match &det.schedule {
            Schedule::Seeded(seed) => Repro::Seed(*seed),
            Schedule::Prefix(_) => Repro::Prefix(st.choices.iter().map(|c| c.chosen).collect()),
        }
    }

    /// Extract the recorded schedule trace (deterministic mode only).
    /// Prefix-replay runs report seed 0 in the trace header; their
    /// identity is the choice prefix, not a seed.
    pub(crate) fn take_sched_trace(&self) -> Option<ScheduleTrace> {
        let det = self.det.as_ref()?;
        let mut st = lock_unpoisoned(&det.st);
        let seed = match &det.schedule {
            Schedule::Seeded(seed) => *seed,
            Schedule::Prefix(_) => 0,
        };
        Some(ScheduleTrace { seed, events: std::mem::take(&mut st.events) })
    }

    /// Extract the recorded [`ChoicePoint`] stream (deterministic mode
    /// only).
    pub(crate) fn take_choice_points(&self) -> Option<Vec<ChoicePoint>> {
        let det = self.det.as_ref()?;
        let mut st = lock_unpoisoned(&det.st);
        Some(std::mem::take(&mut st.choices))
    }

    /// Record that the currently-running segment touched `res` — the
    /// resource-footprint hook behind every mailbox post/pop, split
    /// deposit, barrier arrival, and collective registration. Appends to
    /// the latest [`ChoicePoint`] (deduplicated). No-op in free-running
    /// mode. Callers may hold a primitive lock: the established lock
    /// order is primitive → scheduler, never the reverse.
    pub(crate) fn det_touch(&self, res: Resource) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        if let Some(cp) = st.choices.last_mut() {
            if !cp.touched.contains(&res) {
                cp.touched.push(res);
            }
        }
    }

    // ----- deterministic scheduler ------------------------------------------

    /// Rank start barrier: register this rank with the scheduler and wait
    /// for the baton. The last rank to attach triggers the first pick, so
    /// no program code runs before every rank is registered. No-op in
    /// free-running mode.
    pub(crate) fn sched_attach(&self, r: usize) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        st.status[r] = RankStatus::Ready;
        st.attached += 1;
        if st.attached == st.status.len() {
            self.sched_pick_and_wait(det, st, r);
        } else {
            self.sched_wait_for_baton(det, st, r);
        }
    }

    /// Release the baton at a blocking point whose condition is unmet;
    /// returns once this rank is picked again (the caller then re-checks
    /// its condition and re-blocks if still unmet). Detects deadlock
    /// synchronously: if no rank is runnable while some rank is blocked,
    /// every blocked rank has re-checked its condition since the last
    /// progress event (each progress event re-readies all blocked ranks),
    /// so no wake-up can ever come — abort with a deadlock report.
    fn sched_block(&self, r: usize, point: BlockPoint) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        st.status[r] = RankStatus::Blocked;
        st.events.push(SchedEvent::Block { rank: r, point });
        // The failed condition check *read* the blocking resource: a
        // reordering against whoever writes it would change what this
        // segment observed, so it belongs to the footprint.
        let res = match point {
            BlockPoint::Recv { ctx, index } => Resource::Mailbox { ctx, index },
            BlockPoint::Split { ctx, seq } => Resource::SplitCell { ctx, seq },
            BlockPoint::Barrier { .. } => Resource::Barrier,
        };
        if let Some(cp) = st.choices.last_mut() {
            if !cp.touched.contains(&res) {
                cp.touched.push(res);
            }
        }
        if st.current == Some(r) {
            st.current = None;
        }
        self.sched_pick_and_wait(det, st, r);
    }

    /// Re-ready every blocked rank after a progress event (message post,
    /// split result, barrier release). The caller keeps the baton; the
    /// re-readied ranks re-check their conditions when next picked.
    fn sched_unblock_all(&self) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        for s in st.status.iter_mut() {
            if *s == RankStatus::Blocked {
                *s = RankStatus::Ready;
            }
        }
    }

    /// Record a message post in the schedule trace and yield the baton
    /// (the sender stays runnable and may be re-picked immediately).
    pub(crate) fn sched_post_event(
        &self,
        from_world: usize,
        ctx: Ctx,
        to_world: usize,
        words: u64,
    ) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        st.events.push(SchedEvent::Post { from_world, ctx, to_world, words });
        self.sched_pick_and_wait(det, st, from_world);
    }

    /// Record a collective entry in the schedule trace and yield the
    /// baton, exactly like [`Fabric::sched_post_event`]. The ledger
    /// registration that precedes this call is part of the segment's
    /// footprint.
    pub(crate) fn sched_collective_event(
        &self,
        rank: usize,
        ctx: Ctx,
        op: CollectiveOp,
        elems: u64,
    ) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        st.events.push(SchedEvent::Collective { rank, ctx, op, elems });
        let res = Resource::Ledger { ctx };
        if let Some(cp) = st.choices.last_mut() {
            if !cp.touched.contains(&res) {
                cp.touched.push(res);
            }
        }
        self.sched_pick_and_wait(det, st, rank);
    }

    /// Retire this rank from the scheduler (called from the world's rank
    /// teardown guard, so it also runs when the program unwinds). If the
    /// departing rank held the baton and everyone left is blocked, that
    /// is a deadlock — abort so the blocked ranks tear down instead of
    /// waiting on a rank that no longer exists.
    pub(crate) fn sched_finish(&self, r: usize) {
        let Some(det) = &self.det else { return };
        let mut st = lock_unpoisoned(&det.st);
        st.status[r] = RankStatus::Done;
        st.events.push(SchedEvent::Done { rank: r });
        if st.current == Some(r) {
            st.current = None;
            if self.verify.is_aborted() {
                det.cv.notify_all();
                return;
            }
            match Self::sched_pick_locked(det, &mut st) {
                PickOutcome::Picked | PickOutcome::Idle => {}
                // No abort_panic on the failure arms: this may run inside
                // a Drop while the rank is already unwinding. The blocked
                // ranks observe the abort flag in their baton waits and
                // tear themselves down.
                PickOutcome::Deadlock => {
                    let stuck: Vec<usize> = st
                        .status
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &s)| (s == RankStatus::Blocked).then_some(i))
                        .collect();
                    let repro = Self::sched_repro_locked(det, &st);
                    drop(st);
                    let views = self.verify.snapshot();
                    let mut report = self.deadlock_report(&views, &stuck);
                    report.push_str(&format!("deterministic schedule — {}\n", repro.hint()));
                    self.abort(report);
                }
                PickOutcome::Diverged { wanted, at } => {
                    let report = Self::diverged_report(det, &st, wanted, at);
                    drop(st);
                    self.abort(report);
                }
            }
        }
    }

    /// Hand the baton to the next runnable rank — drawn from the seeded
    /// PRNG, or dictated by the prefix (then the smallest runnable rank,
    /// the canonical completion). Records the pick as a [`ChoicePoint`].
    fn sched_pick_locked(det: &DetState, st: &mut SchedInner) -> PickOutcome {
        // `ready` is ascending by construction, so the pick below is a
        // deterministic function of (status vector, schedule state).
        let ready: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter_map(|(r, &s)| (s == RankStatus::Ready).then_some(r))
            .collect();
        if ready.is_empty() {
            st.current = None;
            let any_blocked = st.status.contains(&RankStatus::Blocked);
            let any_unattached = st.status.contains(&RankStatus::NotAttached);
            return if !any_blocked || any_unattached {
                PickOutcome::Idle
            } else {
                PickOutcome::Deadlock
            };
        }
        let r = match &det.schedule {
            Schedule::Seeded(_) => ready[(splitmix64(&mut st.rng) % ready.len() as u64) as usize],
            Schedule::Prefix(prefix) => match prefix.get(st.cursor) {
                Some(&want) if ready.contains(&want) => want,
                Some(&want) => return PickOutcome::Diverged { wanted: want, at: st.cursor },
                None => ready[0],
            },
        };
        st.cursor += 1;
        st.choices.push(ChoicePoint { ready, chosen: r, touched: Vec::new() });
        st.current = Some(r);
        st.events.push(SchedEvent::Pick { rank: r });
        det.cv.notify_all();
        PickOutcome::Picked
    }

    /// Build the abort report for a [`PickOutcome::Diverged`] prefix.
    fn diverged_report(det: &DetState, st: &SchedInner, wanted: usize, at: usize) -> String {
        let repro = Self::sched_repro_locked(det, st);
        format!(
            "pmm-simnet: schedule prefix diverged at choice #{at}: the prefix demands rank \
             {wanted}, which is not runnable there — the prefix does not name a reachable \
             branch of this program's schedule tree\n\
             choices made before the divergence: {}\n",
            repro.hint()
        )
    }

    /// Shared tail of every live pick site: pick, then either wait for
    /// the baton or — on a provable deadlock / prefix divergence — abort
    /// the world and tear the calling rank down with an `AbortPanic`.
    fn sched_pick_and_wait(&self, det: &DetState, mut st: MutexGuard<'_, SchedInner>, r: usize) {
        match Self::sched_pick_locked(det, &mut st) {
            PickOutcome::Picked | PickOutcome::Idle => self.sched_wait_for_baton(det, st, r),
            PickOutcome::Deadlock => {
                let stuck: Vec<usize> = st
                    .status
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &s)| (s == RankStatus::Blocked).then_some(i))
                    .collect();
                let repro = Self::sched_repro_locked(det, &st);
                drop(st);
                let views = self.verify.snapshot();
                let mut report = self.deadlock_report(&views, &stuck);
                report.push_str(&format!("deterministic schedule — {}\n", repro.hint()));
                self.abort(report);
                self.verify.abort_panic(r);
            }
            PickOutcome::Diverged { wanted, at } => {
                let report = Self::diverged_report(det, &st, wanted, at);
                drop(st);
                self.abort(report);
                self.verify.abort_panic(r);
            }
        }
    }

    /// Park until the scheduler hands this rank the baton (or the world
    /// aborts). The timeout only bounds abort-observation latency —
    /// hand-offs are condvar-notified.
    fn sched_wait_for_baton(&self, det: &DetState, mut st: MutexGuard<'_, SchedInner>, r: usize) {
        loop {
            if self.verify.is_aborted() {
                drop(st);
                self.verify.abort_panic(r);
            }
            if st.current == Some(r) {
                st.status[r] = RankStatus::Ready;
                return;
            }
            st = det.cv.wait_timeout(st, ABORT_POLL).unwrap_or_else(PoisonError::into_inner).0;
        }
    }

    fn alloc_ctx(&self) -> Ctx {
        self.next_ctx.fetch_add(1, Ordering::Relaxed)
    }

    fn mailbox(&self, ctx: Ctx, index: usize) -> Arc<Mailbox> {
        {
            let map = read_unpoisoned(&self.mailboxes);
            if let Some(mb) = map.get(&(ctx, index)) {
                return mb.clone();
            }
        }
        let mut map = write_unpoisoned(&self.mailboxes);
        map.entry((ctx, index))
            .or_insert_with(|| {
                Arc::new(Mailbox { q: Mutex::new(VecDeque::new()), cv: Condvar::new() })
            })
            .clone()
    }

    /// Post `msg` to member `to` of context `ctx`. Never blocks (mailboxes
    /// are unbounded).
    pub(crate) fn post(&self, ctx: Ctx, to: usize, msg: Message) {
        let mb = self.mailbox(ctx, to);
        lock_unpoisoned(&mb.q).push_back(msg);
        mb.cv.notify_all();
        self.det_touch(Resource::Mailbox { ctx, index: to });
        // A delivery is a progress event: re-ready blocked ranks so the
        // deterministic scheduler lets them re-check their conditions.
        self.sched_unblock_all();
    }

    /// Blockingly take the next message from member `index`'s mailbox on
    /// context `ctx` (in arrival order; directed matching is done by the
    /// rank's stash). `from_world` is the world rank of the sender the
    /// caller is ultimately waiting for (deadlock-report metadata).
    ///
    /// `fault_watch` is the caller's fault-epoch watermark when it is
    /// inside a failure-catching scope: if a rank dies while we wait
    /// (epoch moves past the watermark) the wait returns `None` — after
    /// draining anything already queued — so the caller can surface a
    /// typed failure instead of hanging on a corpse.
    pub(crate) fn take_any(
        &self,
        ctx: Ctx,
        index: usize,
        me_world: usize,
        from_world: usize,
        site: &'static Location<'static>,
        fault_watch: Option<u64>,
    ) -> Option<Message> {
        let mb = self.mailbox(ctx, index);
        let mut q = lock_unpoisoned(&mb.q);
        if let Some(m) = q.pop_front() {
            self.det_touch(Resource::Mailbox { ctx, index });
            return Some(m);
        }
        if self.fault_kicked(fault_watch) {
            return None;
        }
        self.verify.set_wait(
            me_world,
            WaitInfo {
                kind: WaitKind::Recv { from_world, ctx_index: index },
                ctx,
                waiting_on: vec![from_world],
                site,
            },
        );
        if self.det.is_some() {
            // Deterministic mode: yield the baton instead of sleeping on
            // the mailbox condvar; re-check after every re-pick.
            loop {
                drop(q);
                self.sched_block(me_world, BlockPoint::Recv { ctx, index });
                q = lock_unpoisoned(&mb.q);
                if let Some(m) = q.pop_front() {
                    self.det_touch(Resource::Mailbox { ctx, index });
                    self.verify.clear_wait(me_world);
                    return Some(m);
                }
                if self.fault_kicked(fault_watch) {
                    self.verify.clear_wait(me_world);
                    return None;
                }
            }
        }
        loop {
            if self.verify.is_aborted() {
                drop(q);
                self.verify.abort_panic(me_world);
            }
            if let Some(m) = q.pop_front() {
                self.verify.clear_wait(me_world);
                return Some(m);
            }
            if self.fault_kicked(fault_watch) {
                self.verify.clear_wait(me_world);
                return None;
            }
            q = mb.cv.wait_timeout(q, ABORT_POLL).unwrap_or_else(PoisonError::into_inner).0;
        }
    }

    /// Zero-cost synchronization of all world ranks (not metered; test and
    /// phase-delimiting use only).
    pub(crate) fn hard_sync(&self, me_world: usize, site: &'static Location<'static>) {
        let world_size = self.verify.world_size();
        if world_size <= 1 || self.is_dead_rank(me_world) {
            return;
        }
        let mut st = lock_unpoisoned(&self.barrier.st);
        // Dead ranks can never arrive; count them so survivors are not
        // stuck waiting for a corpse (no-op without a fault plan).
        self.barrier_sweep_dead_locked(&mut st);
        let entered_gen = st.generation;
        st.arrived[me_world] = true;
        st.count += 1;
        self.det_touch(Resource::Barrier);
        if st.count == world_size {
            st.count = 0;
            st.arrived.iter_mut().for_each(|a| *a = false);
            st.generation += 1;
            self.barrier.cv.notify_all();
            self.sched_unblock_all();
            return;
        }
        let waiting_on: Vec<usize> =
            st.arrived.iter().enumerate().filter_map(|(r, &a)| (!a).then_some(r)).collect();
        self.verify.set_wait(
            me_world,
            WaitInfo {
                kind: WaitKind::Barrier { generation: entered_gen },
                ctx: WORLD_CTX,
                waiting_on,
                site,
            },
        );
        if self.det.is_some() {
            while st.generation == entered_gen {
                drop(st);
                self.sched_block(me_world, BlockPoint::Barrier { generation: entered_gen });
                st = lock_unpoisoned(&self.barrier.st);
            }
            self.verify.clear_wait(me_world);
            return;
        }
        while st.generation == entered_gen {
            if self.verify.is_aborted() {
                drop(st);
                self.verify.abort_panic(me_world);
            }
            st = self
                .barrier
                .cv
                .wait_timeout(st, ABORT_POLL)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        self.verify.clear_wait(me_world);
    }

    /// Complete a split rendezvous if every still-alive parent member has
    /// deposited (with at least one deposit): partition the deposited
    /// entries into groups and allocate their contexts. Without a fault
    /// plan "every alive member" is "every member", which is exactly the
    /// pre-fault-layer completion rule. Notifies waiters on completion.
    fn split_try_complete(&self, st: &mut SplitState) {
        if st.result.is_some() {
            return;
        }
        let all_live_arrived = st
            .parent_members
            .iter()
            .enumerate()
            .all(|(i, &w)| st.entries[i].is_some() || self.is_dead_rank(w));
        if st.arrived == 0 || !all_live_arrived {
            return;
        }
        let mut by_color: HashMap<i64, Vec<(i64, usize, usize)>> = HashMap::new();
        for (parent_idx, e) in st.entries.iter().enumerate() {
            // Entries of dead members stay `None` and simply do not join
            // any group — the survivors' groups shrink around them.
            let Some((c, k, w)) = *e else { continue };
            if c >= 0 {
                by_color.entry(c).or_default().push((k, parent_idx, w));
            }
        }
        let mut groups = HashMap::new();
        let mut colors: Vec<i64> = by_color.keys().copied().collect();
        colors.sort_unstable(); // deterministic ctx assignment
        for c in colors {
            let mut v = by_color.remove(&c).unwrap_or_else(|| {
                panic!("split rendezvous: color {c} vanished while grouping — fabric bug")
            });
            v.sort_unstable(); // by (key, parent index)
            let members = v.into_iter().map(|(_, _, w)| w).collect();
            groups.insert(c, SplitGroup { ctx: self.alloc_ctx(), members });
        }
        st.result = Some(Arc::new(groups));
    }

    /// Collective communicator split. Called by every member of the parent
    /// context; `seq` is the caller's per-parent split sequence number
    /// (all members must call splits in the same order). `parent_members`
    /// are the parent communicator's world ranks in communicator order.
    ///
    /// `color < 0` means "no new communicator for me" (MPI_UNDEFINED).
    /// Returns the group for `color`, or `None` for negative colors.
    /// `fault_watch` works as in [`Fabric::take_any`]: `Err(FaultKick)`
    /// means a rank died mid-rendezvous while the caller was inside a
    /// failure-catching scope.
    #[allow(clippy::too_many_arguments)] // a rendezvous genuinely needs all of these
    pub(crate) fn split(
        &self,
        parent_ctx: Ctx,
        parent_members: &[usize],
        seq: u64,
        my_parent_index: usize,
        my_world_rank: usize,
        color: i64,
        key: i64,
        site: &'static Location<'static>,
        fault_watch: Option<u64>,
    ) -> Result<Option<SplitGroup>, FaultKick> {
        let cell = {
            let mut splits = lock_unpoisoned(&self.splits);
            splits
                .entry((parent_ctx, seq))
                .or_insert_with(|| {
                    Arc::new(SplitCell {
                        state: Mutex::new(SplitState {
                            entries: vec![None; parent_members.len()],
                            parent_members: parent_members.to_vec(),
                            arrived: 0,
                            consumed: 0,
                            result: None,
                        }),
                        cv: Condvar::new(),
                    })
                })
                .clone()
        };

        let mut st = lock_unpoisoned(&cell.state);
        if st.entries[my_parent_index].is_some() {
            drop(st);
            self.abort(format!(
                "pmm-verify: world rank {my_world_rank} deposited twice into split #{seq} of \
                 ctx {parent_ctx} at {site} — members issued splits in different orders"
            ));
            self.verify.abort_panic(my_world_rank);
        }
        st.entries[my_parent_index] = Some((color, key, my_world_rank));
        st.arrived += 1;
        self.det_touch(Resource::SplitCell { ctx: parent_ctx, seq });
        self.split_try_complete(&mut st);
        if st.result.is_some() {
            cell.cv.notify_all();
            self.sched_unblock_all();
        } else {
            let waiting_on: Vec<usize> = parent_members
                .iter()
                .enumerate()
                .filter_map(|(i, &w)| st.entries[i].is_none().then_some(w))
                .collect();
            self.verify.set_wait(
                my_world_rank,
                WaitInfo { kind: WaitKind::Split { seq }, ctx: parent_ctx, waiting_on, site },
            );
            if self.det.is_some() {
                while st.result.is_none() {
                    if self.fault_kicked(fault_watch) {
                        self.verify.clear_wait(my_world_rank);
                        return Err(FaultKick);
                    }
                    drop(st);
                    self.sched_block(my_world_rank, BlockPoint::Split { ctx: parent_ctx, seq });
                    st = lock_unpoisoned(&cell.state);
                }
            } else {
                while st.result.is_none() {
                    if self.verify.is_aborted() {
                        drop(st);
                        self.verify.abort_panic(my_world_rank);
                    }
                    if self.fault_kicked(fault_watch) {
                        self.verify.clear_wait(my_world_rank);
                        return Err(FaultKick);
                    }
                    st = cell
                        .cv
                        .wait_timeout(st, ABORT_POLL)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
            self.verify.clear_wait(my_world_rank);
        }
        let result = st
            .result
            .as_ref()
            .unwrap_or_else(|| {
                panic!("split #{seq} on ctx {parent_ctx}: woke without a result — fabric bug")
            })
            .clone();
        st.consumed += 1;
        // Once the result is set no further deposits are accepted, so
        // `arrived` is frozen and "everyone who deposited has read it" is
        // the cleanup condition (equal to the old `== parent size` rule in
        // fault-free worlds). A member kicked out mid-wait never consumes;
        // its cell is left behind, which only an injected death can cause.
        let everyone_done = st.consumed == st.arrived;
        drop(st); // splits-map lock is taken next; never hold state across it
        if everyone_done {
            // Everyone has read the result; free the rendezvous slot so
            // long runs don't accumulate split state.
            lock_unpoisoned(&self.splits).remove(&(parent_ctx, seq));
        }

        if color < 0 {
            Ok(None)
        } else {
            Ok(Some(
                result
                    .get(&color)
                    .unwrap_or_else(|| {
                        panic!(
                            "split #{seq} on ctx {parent_ctx}: world rank {my_world_rank}'s \
                             color {color} missing from the computed groups — fabric bug"
                        )
                    })
                    .clone(),
            ))
        }
    }

    /// Abort the world: store `report`, set the abort flag, and wake every
    /// blocked primitive so ranks tear themselves down promptly. First
    /// abort wins; later calls are no-ops.
    pub(crate) fn abort(&self, report: String) {
        if !self.verify.try_set_aborted(report) {
            return;
        }
        self.wake_all_primitives();
    }

    /// Count of messages posted but never taken, per mailbox (strict-drain
    /// audit).
    pub(crate) fn residual_messages(&self) -> Vec<(Ctx, usize, usize)> {
        let map = read_unpoisoned(&self.mailboxes);
        let mut out: Vec<(Ctx, usize, usize)> = map
            .iter()
            .filter_map(|(&(ctx, index), mb)| {
                let n = lock_unpoisoned(&mb.q).len();
                (n > 0).then_some((ctx, index, n))
            })
            .collect();
        out.sort_unstable();
        out
    }

    // ----- deadlock watchdog ------------------------------------------------

    /// One watchdog pass over the wait registry. Returns a deadlock report
    /// when the same non-empty set of ranks is blocked with no possible
    /// progress for two consecutive scans (`prev` carries the candidate
    /// set between scans as `(rank, wait-generation)` pairs).
    ///
    /// "Possible progress" is computed as a fixpoint: running ranks can
    /// progress; a blocked rank whose wait already has its wake-up
    /// condition satisfied (message queued, split result computed, barrier
    /// generation advanced) can progress; and a blocked rank waiting on
    /// any rank that can progress might still be served. Only ranks
    /// outside that closure are deadlocked — so the detector never flags a
    /// slow-but-live schedule.
    pub(crate) fn watchdog_scan(&self, prev: &mut Option<Vec<(usize, u64)>>) -> Option<String> {
        if self.verify.is_aborted() {
            return None;
        }
        let views = self.verify.snapshot();
        let n = views.len();
        let mut progressable = vec![false; n];
        let mut any_blocked = false;
        for (r, v) in views.iter().enumerate() {
            match &v.wait {
                None => progressable[r] = !v.done,
                Some(_) => any_blocked = true,
            }
        }
        if !any_blocked {
            *prev = None;
            return None;
        }
        // Wake-up hints: blocked ranks whose wait condition is already met.
        for (r, v) in views.iter().enumerate() {
            let Some(w) = &v.wait else { continue };
            let hinted = match &w.kind {
                WaitKind::Recv { ctx_index, .. } => {
                    let mb = read_unpoisoned(&self.mailboxes).get(&(w.ctx, *ctx_index)).cloned();
                    mb.is_some_and(|mb| !lock_unpoisoned(&mb.q).is_empty())
                }
                WaitKind::Split { seq } => {
                    let cell = lock_unpoisoned(&self.splits).get(&(w.ctx, *seq)).cloned();
                    cell.is_some_and(|c| lock_unpoisoned(&c.state).result.is_some())
                }
                WaitKind::Barrier { generation } => {
                    lock_unpoisoned(&self.barrier.st).generation > *generation
                }
            };
            if hinted {
                progressable[r] = true;
            }
        }
        // Propagate progress potential along wait-for edges.
        loop {
            let mut changed = false;
            for (r, v) in views.iter().enumerate() {
                if progressable[r] {
                    continue;
                }
                let Some(w) = &v.wait else { continue };
                if w.waiting_on.iter().any(|&o| o < n && progressable[o]) {
                    progressable[r] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let deadlocked: Vec<(usize, u64)> = views
            .iter()
            .enumerate()
            .filter(|&(r, v)| v.wait.is_some() && !progressable[r])
            .map(|(r, v)| (r, v.gen))
            .collect();
        if deadlocked.is_empty() {
            *prev = None;
            return None;
        }
        if prev.as_ref() != Some(&deadlocked) {
            // New candidate set (or a rank re-blocked, bumping its
            // generation): require one more stable scan before aborting.
            *prev = Some(deadlocked);
            return None;
        }
        let stuck: Vec<usize> = deadlocked.iter().map(|&(r, _)| r).collect();
        Some(self.deadlock_report(&views, &stuck))
    }

    fn deadlock_report(&self, views: &[SlotView], stuck: &[usize]) -> String {
        // When the fault plan killed a rank, blocked survivors are the
        // *consequence* of that injected failure, not a communication bug:
        // report the rank failure (naming the plan entry and replay seed)
        // and never the word "deadlock" or a wait-for cycle.
        let failures = self.verify.rank_failures();
        let mut report = if failures.is_empty() {
            format!(
                "pmm-verify: deadlock detected — {} rank(s) blocked with no possible progress\n",
                stuck.len()
            )
        } else {
            let mut r = format!(
                "pmm-verify: rank failure — {} rank(s) killed by the fault plan; {} surviving \
                 rank(s) blocked on communication that can never complete\n",
                failures.len(),
                stuck.len()
            );
            for line in &failures {
                r.push_str("  ");
                r.push_str(line);
                r.push('\n');
            }
            r
        };
        for &r in stuck {
            if let Some(w) = &views[r].wait {
                report.push_str(&format!(
                    "  rank {r}: blocked in {} on ctx {} at {}, waiting on ranks {:?}\n",
                    w.kind, w.ctx, w.site, w.waiting_on
                ));
            }
        }
        if failures.is_empty() {
            let stuck_set: HashSet<usize> = stuck.iter().copied().collect();
            if let Some(cycle) = wait_cycle(views, &stuck_set) {
                let path: Vec<String> = cycle.iter().map(|r| format!("rank {r}")).collect();
                report.push_str(&format!("wait-for cycle: {}\n", path.join(" -> ")));
            }
        }
        let pending = self.verify.all_pending_collectives();
        if !pending.is_empty() {
            report.push_str("partially-entered collectives:\n");
            for line in pending {
                report.push_str(&line);
                report.push('\n');
            }
        }
        report
    }
}

/// Walk wait-for edges inside the stuck set from its smallest member and
/// return the first cycle found, closed (first element repeated at the
/// end).
fn wait_cycle(views: &[SlotView], stuck: &HashSet<usize>) -> Option<Vec<usize>> {
    let start = *stuck.iter().min()?;
    let mut path: Vec<usize> = vec![start];
    let mut cur = start;
    loop {
        let w = views[cur].wait.as_ref()?;
        let next = *w.waiting_on.iter().find(|o| stuck.contains(o))?;
        if let Some(pos) = path.iter().position(|&r| r == next) {
            let mut cycle = path[pos..].to_vec();
            cycle.push(next);
            return Some(cycle);
        }
        path.push(next);
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn here() -> &'static Location<'static> {
        Location::caller()
    }

    fn msg(from: usize, sent_at: f64, payload: Vec<f64>) -> Message {
        Message { from, sent_at, payload, vclock: None, meta: None }
    }

    #[test]
    fn post_and_take_roundtrip() {
        let fabric = Fabric::new(1);
        fabric.post(WORLD_CTX, 0, msg(3, 1.5, vec![1.0, 2.0]));
        let m = fabric.take_any(WORLD_CTX, 0, 0, 0, here(), None).unwrap();
        assert_eq!(m.from, 3);
        assert_eq!(m.sent_at, 1.5);
        assert_eq!(m.payload, vec![1.0, 2.0]);
    }

    #[test]
    fn messages_between_contexts_are_isolated() {
        let fabric = Fabric::new(1);
        fabric.post(7, 0, msg(0, 0.0, vec![7.0]));
        fabric.post(8, 0, msg(0, 0.0, vec![8.0]));
        assert_eq!(fabric.take_any(8, 0, 0, 0, here(), None).unwrap().payload, vec![8.0]);
        assert_eq!(fabric.take_any(7, 0, 0, 0, here(), None).unwrap().payload, vec![7.0]);
    }

    #[test]
    fn split_partitions_by_color_and_orders_by_key() {
        // 4 "ranks" split into color = rank % 2, key = -rank (reverse order).
        let fabric = Arc::new(Fabric::new(4));
        let members = [0usize, 1, 2, 3];
        let mut handles = Vec::new();
        for r in 0..4usize {
            let f = fabric.clone();
            handles.push(thread::spawn(move || {
                f.split(WORLD_CTX, &members, 0, r, r, (r % 2) as i64, -(r as i64), here(), None)
            }));
        }
        let groups: Vec<_> =
            handles.into_iter().map(|h| h.join().unwrap().unwrap().unwrap()).collect();
        // ranks 0 and 2 share color 0; members sorted by key (descending rank)
        assert_eq!(groups[0].members, vec![2, 0]);
        assert_eq!(groups[2].members, vec![2, 0]);
        assert_eq!(groups[1].members, vec![3, 1]);
        assert_eq!(groups[3].members, vec![3, 1]);
        // distinct colors got distinct contexts
        assert_ne!(groups[0].ctx, groups[1].ctx);
        assert_eq!(groups[0].ctx, groups[2].ctx);
    }

    #[test]
    fn split_with_negative_color_yields_none() {
        let fabric = Arc::new(Fabric::new(2));
        let f2 = fabric.clone();
        let h = thread::spawn(move || f2.split(WORLD_CTX, &[0, 1], 0, 1, 1, -1, 0, here(), None));
        let g0 = fabric.split(WORLD_CTX, &[0, 1], 0, 0, 0, 0, 0, here(), None).unwrap();
        let g1 = h.join().unwrap().unwrap();
        assert!(g1.is_none());
        assert_eq!(g0.unwrap().members, vec![0]);
    }

    #[test]
    fn split_state_is_cleaned_up() {
        let fabric = Arc::new(Fabric::new(2));
        let f2 = fabric.clone();
        let h = thread::spawn(move || f2.split(WORLD_CTX, &[0, 1], 5, 1, 1, 0, 0, here(), None));
        fabric.split(WORLD_CTX, &[0, 1], 5, 0, 0, 0, 0, here(), None).unwrap();
        h.join().unwrap().unwrap();
        assert!(lock_unpoisoned(&fabric.splits).is_empty());
    }

    #[test]
    fn watchdog_scan_flags_mutual_recv_after_two_stable_scans() {
        // Two ranks each blocked receiving from the other, nothing queued.
        let fabric = Fabric::new(2);
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        fabric.verify.set_wait(
            1,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 0, ctx_index: 1 },
                ctx: WORLD_CTX,
                waiting_on: vec![0],
                site: here(),
            },
        );
        let mut prev = None;
        assert!(fabric.watchdog_scan(&mut prev).is_none(), "first scan only arms the candidate");
        let report = fabric.watchdog_scan(&mut prev).expect("second stable scan must confirm");
        assert!(report.contains("deadlock detected"), "{report}");
        assert!(report.contains("rank 0"), "{report}");
        assert!(report.contains("rank 1"), "{report}");
        assert!(report.contains("wait-for cycle"), "{report}");
    }

    #[test]
    fn watchdog_scan_spares_recv_with_queued_message() {
        // Rank 0 waits on rank 1, but a message is already queued for it:
        // rank 0 is progressable, and rank 1 (waiting on rank 0) inherits
        // that via the fixpoint.
        let fabric = Fabric::new(2);
        fabric.post(WORLD_CTX, 0, msg(1, 0.0, vec![1.0]));
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        fabric.verify.set_wait(
            1,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 0, ctx_index: 1 },
                ctx: WORLD_CTX,
                waiting_on: vec![0],
                site: here(),
            },
        );
        let mut prev = None;
        for _ in 0..3 {
            assert!(fabric.watchdog_scan(&mut prev).is_none());
        }
    }

    #[test]
    fn watchdog_scan_spares_blocked_ranks_while_any_rank_runs() {
        // Rank 0 blocked on rank 1; rank 1 is running (no wait) — no
        // deadlock, however many scans pass.
        let fabric = Fabric::new(2);
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        let mut prev = None;
        for _ in 0..3 {
            assert!(fabric.watchdog_scan(&mut prev).is_none());
        }
    }

    #[test]
    fn watchdog_scan_flags_recv_from_finished_rank() {
        // Rank 1 exited without sending; rank 0 still waits on it.
        let fabric = Fabric::new(2);
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        fabric.verify.mark_done(1);
        let mut prev = None;
        assert!(fabric.watchdog_scan(&mut prev).is_none());
        let report = fabric.watchdog_scan(&mut prev).expect("recv from exited rank is a deadlock");
        assert!(report.contains("rank 0"), "{report}");
        assert!(report.contains("waiting on ranks [1]"), "{report}");
    }

    #[test]
    fn watchdog_requires_stability_across_generations() {
        // The candidate set is armed, but the rank re-blocks (generation
        // bump) before the second scan: the confirmation must start over.
        let fabric = Fabric::new(1);
        let block = |f: &Fabric| {
            f.verify.set_wait(
                0,
                WaitInfo {
                    kind: WaitKind::Recv { from_world: 0, ctx_index: 0 },
                    ctx: WORLD_CTX,
                    waiting_on: vec![0],
                    site: here(),
                },
            )
        };
        block(&fabric);
        let mut prev = None;
        assert!(fabric.watchdog_scan(&mut prev).is_none());
        block(&fabric); // same wait, new generation
        assert!(fabric.watchdog_scan(&mut prev).is_none(), "generation changed: re-arm");
        let report = fabric.watchdog_scan(&mut prev);
        assert!(report.is_some(), "stable for two scans now");
    }

    #[test]
    fn abort_wakes_blocked_take_any() {
        let fabric = Arc::new(Fabric::new(2));
        let f2 = fabric.clone();
        let h = thread::spawn(move || {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                f2.take_any(WORLD_CTX, 0, 0, 1, here(), None);
            }));
            caught.expect_err("take_any must panic out of an aborted world")
        });
        // Give the receiver a moment to block, then abort.
        thread::sleep(Duration::from_millis(20));
        fabric.abort("test abort".to_string());
        let payload = h.join().expect("receiver thread joins");
        let abort = payload
            .downcast_ref::<crate::verify::AbortPanic>()
            .expect("panic payload is AbortPanic");
        assert!(abort.0.contains("test abort"), "{}", abort.0);
    }

    #[test]
    fn residual_messages_reports_undrained_mailboxes() {
        let fabric = Fabric::new(2);
        fabric.post(WORLD_CTX, 1, msg(0, 0.0, vec![1.0]));
        fabric.post(WORLD_CTX, 1, msg(0, 0.0, vec![2.0]));
        fabric.post(3, 0, msg(1, 0.0, vec![3.0]));
        assert_eq!(fabric.residual_messages(), vec![(WORLD_CTX, 1, 2), (3, 0, 1)]);
        fabric.take_any(3, 0, 0, 1, here(), None);
        assert_eq!(fabric.residual_messages(), vec![(WORLD_CTX, 1, 2)]);
    }

    #[test]
    fn dead_rank_completes_pending_split_with_survivors_only() {
        // Three ranks; rank 2 dies after ranks 0 and 1 have deposited.
        let mut fabric = Fabric::new(3);
        fabric.enable_faults(FaultPlan::none(), 0);
        let fabric = Arc::new(fabric);
        let members = [0usize, 1, 2];
        let mut handles = Vec::new();
        for r in 0..2usize {
            let f = fabric.clone();
            handles.push(thread::spawn(move || {
                f.split(WORLD_CTX, &members, 0, r, r, 0, r as i64, here(), None)
            }));
        }
        thread::sleep(Duration::from_millis(20));
        fabric.mark_rank_dead(2, "rank 2 killed by fault-plan entry kill=2@1".to_string());
        for h in handles {
            let group = h.join().unwrap().unwrap().unwrap();
            assert_eq!(group.members, vec![0, 1], "dead member must be excluded");
        }
    }

    #[test]
    fn fault_kick_interrupts_blocked_take_any() {
        let mut fabric = Fabric::new(2);
        fabric.enable_faults(FaultPlan::none(), 0);
        let fabric = Arc::new(fabric);
        let f2 = fabric.clone();
        let watch = Some(fabric.fault_epoch());
        let h = thread::spawn(move || f2.take_any(WORLD_CTX, 0, 0, 1, here(), watch));
        thread::sleep(Duration::from_millis(20));
        fabric.mark_rank_dead(1, "rank 1 killed by fault-plan entry kill=1@1".to_string());
        assert!(h.join().unwrap().is_none(), "wait must be kicked, not served");
    }

    #[test]
    fn deadlock_report_with_rank_failure_names_the_kill_not_a_cycle() {
        let fabric = Fabric::new(2);
        fabric.verify.note_rank_failure(
            "rank 1 killed by fault-plan entry kill=1@3 (replay: PMM_SEED=7)".to_string(),
        );
        fabric.verify.set_wait(
            0,
            WaitInfo {
                kind: WaitKind::Recv { from_world: 1, ctx_index: 0 },
                ctx: WORLD_CTX,
                waiting_on: vec![1],
                site: here(),
            },
        );
        fabric.verify.mark_done(1);
        let mut prev = None;
        assert!(fabric.watchdog_scan(&mut prev).is_none());
        let report = fabric.watchdog_scan(&mut prev).expect("stuck survivor is reported");
        assert!(report.contains("rank failure"), "{report}");
        assert!(report.contains("kill=1@3"), "{report}");
        assert!(report.contains("PMM_SEED=7"), "{report}");
        assert!(!report.contains("deadlock detected"), "{report}");
        assert!(!report.contains("wait-for cycle"), "{report}");
    }
}
